//! Micro-benchmarks of the simulation kernels: gate application on
//! statevectors and density matrices, the fast CX/RZ paths, transpilation,
//! and the distribution statistics the convergence checker consumes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qoncord_circuit::coupling::CouplingMap;
use qoncord_circuit::transpile::transpile;
use qoncord_sim::density::DensityMatrix;
use qoncord_sim::dist::ProbDist;
use qoncord_sim::gates;
use qoncord_sim::statevector::StateVector;
use qoncord_vqa::graph::Graph;
use qoncord_vqa::qaoa;

fn bench_statevector_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for n in [7usize, 10, 14] {
        group.bench_function(format!("apply_2q_generic/{n}q"), |b| {
            let mut sv = StateVector::zero_state(n);
            let u = gates::cx();
            b.iter(|| sv.apply_2q(&u, 0, n - 1));
        });
        group.bench_function(format!("apply_cx_fast/{n}q"), |b| {
            let mut sv = StateVector::zero_state(n);
            b.iter(|| sv.apply_cx_fast(0, n - 1));
        });
        group.bench_function(format!("apply_rz_fast/{n}q"), |b| {
            let mut sv = StateVector::zero_state(n);
            b.iter(|| sv.apply_rz_fast(0.3, n / 2));
        });
    }
    group.finish();
}

fn bench_density_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("density");
    for n in [5usize, 7, 8] {
        group.bench_function(format!("apply_2q_generic/{n}q"), |b| {
            let mut rho = DensityMatrix::zero_state(n);
            let u = gates::cx();
            b.iter(|| rho.apply_2q(&u, 0, n - 1));
        });
        group.bench_function(format!("apply_cx_fast/{n}q"), |b| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| rho.apply_cx_fast(0, n - 1));
        });
        group.bench_function(format!("depolarizing_2q/{n}q"), |b| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| rho.apply_depolarizing_2q(0.01, 0, n - 1));
        });
    }
    group.finish();
}

fn bench_transpile(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile");
    let graph = Graph::paper_graph_7();
    for layers in [1usize, 3] {
        let circuit = qaoa::build_circuit(&graph, layers);
        group.bench_function(format!("qaoa7_to_falcon/{layers}layers"), |b| {
            b.iter_batched(
                CouplingMap::falcon_27,
                |map| transpile(&circuit, &map),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_distribution_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist");
    let dist = ProbDist::uniform(10);
    let other = ProbDist::point_mass(10, 1).mix(&ProbDist::uniform(10), 0.5);
    group.bench_function("shannon_entropy/10q", |b| b.iter(|| dist.shannon_entropy()));
    group.bench_function("hellinger_fidelity/10q", |b| {
        b.iter(|| dist.hellinger_fidelity(&other))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_statevector_gates, bench_density_gates, bench_transpile, bench_distribution_stats
}
criterion_main!(benches);
