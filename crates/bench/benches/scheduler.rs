//! End-to-end benchmarks of the scheduler stack: one noisy QAOA evaluation,
//! one SPSA step, restart clustering, and the Fig. 12 queue simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use qoncord_cloud::device::hypothetical_fleet;
use qoncord_cloud::policy::Policy;
use qoncord_cloud::sim::simulate;
use qoncord_cloud::workload::{generate_workload, WorkloadConfig};
use qoncord_core::cluster::{select_restarts, SelectionPolicy};
use qoncord_device::catalog;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_vqa::evaluator::{CostEvaluator, QaoaEvaluator};
use qoncord_vqa::optimizer::{Optimizer, Spsa};
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_noisy_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluation");
    group.sample_size(10);
    let problem = MaxCut::new(Graph::paper_graph_7());
    for layers in [1usize, 3] {
        let backend = SimulatedBackend::from_calibration(catalog::ibmq_toronto());
        let mut eval = QaoaEvaluator::new(&problem, layers, backend, 0);
        let params = vec![0.3; 2 * layers];
        group.bench_function(format!("qaoa7_density/{layers}layers"), |b| {
            b.iter(|| eval.evaluate(&params));
        });
    }
    group.finish();
}

fn bench_spsa_step(c: &mut Criterion) {
    let problem = MaxCut::new(Graph::paper_graph_7());
    let backend = SimulatedBackend::from_calibration(catalog::ibmq_toronto());
    let mut eval = QaoaEvaluator::new(&problem, 1, backend, 0);
    let mut spsa = Spsa::default();
    let mut rng = StdRng::seed_from_u64(1);
    let mut params = vec![0.4, 0.2];
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    group.bench_function("spsa_step_noisy_qaoa7", |b| {
        b.iter(|| {
            let mut objective = |p: &[f64]| eval.evaluate(p).expectation;
            spsa.step(&mut params, &mut objective, &mut rng)
        });
    });
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let values: Vec<f64> = (0..200)
        .map(|i| {
            if i % 3 == 0 {
                -6.8 + 0.01 * i as f64 % 0.2
            } else {
                -4.0
            }
        })
        .collect();
    c.bench_function("cluster/select_restarts_200", |b| {
        b.iter(|| select_restarts(&values, SelectionPolicy::TopCluster));
    });
}

fn bench_queue_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cloud");
    group.sample_size(10);
    let jobs = generate_workload(&WorkloadConfig {
        n_jobs: 1000,
        vqa_ratio: 0.5,
        ..WorkloadConfig::default()
    });
    let fleet = hypothetical_fleet(10, 0.3, 0.9);
    for policy in [Policy::LeastBusy, Policy::Qoncord] {
        group.bench_function(format!("simulate_1000_jobs/{policy}"), |b| {
            b.iter(|| simulate(policy, &jobs, &fleet, 7));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_noisy_evaluation,
    bench_spsa_step,
    bench_clustering,
    bench_queue_sim
);
criterion_main!(benches);
