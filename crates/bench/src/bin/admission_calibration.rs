//! Admission-calibration sweep: replay the paper's Sec. V-F workload trace
//! through three admission controllers on the same arrivals — an admit-all
//! oracle, the static-margin Reject controller, and the calibrated
//! controller (learned per-tier/per-class margins over decay-aware
//! feasibility projections). Reports SLA attainment, denials, false
//! rejections (denials the oracle shows would have met their deadline),
//! and mean |estimate error|, and writes the calibrated run's
//! error-vs-time learning curve to CSV — the closed-loop story behind
//! `AdmissionMode::Calibrated`.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_cloud::workload::{generate_workload, WorkloadConfig};
use qoncord_core::executor::QaoaFactory;
use qoncord_core::scheduler::QoncordConfig;
use qoncord_orchestrator::{
    replay_workload, two_lf_one_hf_fleet, AdmissionConfig, AdmissionMode, CalibrationConfig,
    Orchestrator, OrchestratorConfig, OrchestratorReport, ReplayConfig, TenantJob,
};
use qoncord_vqa::graph::Graph;
use qoncord_vqa::maxcut::MaxCut;

/// Folded into the trace seed so the default `--seed` produces a balanced
/// interactive/session mix at the quick scale.
const TRACE_SALT: u64 = 0xCA1B;

fn engine_config(label: &str) -> OrchestratorConfig {
    let admission = match label {
        "AdmitAll" => AdmissionConfig::default(),
        "StaticReject" => AdmissionConfig::with_mode(AdmissionMode::Reject),
        "Calibrated" => AdmissionConfig::calibrated(),
        other => unreachable!("unknown engine {other}"),
    };
    OrchestratorConfig {
        admission,
        calibration: CalibrationConfig {
            min_samples: 3,
            ..CalibrationConfig::default()
        },
        ..OrchestratorConfig::default()
    }
}

/// Denied jobs whose oracle (admit-all) completion met the deadline they
/// were denied for.
fn false_rejections(report: &OrchestratorReport, oracle: &OrchestratorReport) -> usize {
    report
        .jobs
        .iter()
        .filter(|j| {
            j.status.is_denied()
                && oracle.jobs[j.id]
                    .telemetry
                    .sla_met()
                    // Deadline-free oracle probes: met if they completed.
                    .unwrap_or(oracle.jobs[j.id].status.is_completed())
        })
        .count()
}

fn main() {
    let args = ExperimentArgs::parse();
    let n_jobs = args.scale(12, 48);
    let specs = generate_workload(&WorkloadConfig {
        n_jobs,
        vqa_ratio: 0.6,
        mean_interarrival: 0.4,
        seed: args.seed ^ TRACE_SALT,
        ..WorkloadConfig::default()
    });
    let replay = ReplayConfig {
        tenants: 4,
        training: QoncordConfig {
            exploration_max_iterations: args.scale(8, 20),
            finetune_max_iterations: args.scale(10, 30),
            seed: args.seed,
            ..QoncordConfig::default()
        },
        session_restarts: args.restarts(2, 4),
        interactive_priority: 2,
        // Every 4th job replays deadline-free: an unbiased estimate-error
        // probe the rejecting controllers cannot silence.
        deadline_free_stride: Some(4),
    };
    let jobs = || -> Vec<TenantJob> {
        replay_workload(&specs, &replay, |_| {
            Box::new(QaoaFactory {
                problem: MaxCut::new(Graph::paper_graph_7()),
                layers: 1,
            })
        })
    };

    let oracle = Orchestrator::new(engine_config("AdmitAll"), two_lf_one_hf_fleet()).run(&jobs());
    let mut rows = Vec::new();
    let mut summary_csv = Vec::new();
    let mut calibrated_report = None;
    for engine in ["AdmitAll", "StaticReject", "Calibrated"] {
        let report = Orchestrator::new(engine_config(engine), two_lf_one_hf_fleet()).run(&jobs());
        let sla = report.sla_attainment().unwrap_or(1.0);
        let false_rej = false_rejections(&report, &oracle);
        let mean_err = report.mean_abs_estimate_error().unwrap_or(0.0);
        let row = vec![
            engine.to_string(),
            fmt(sla, 3),
            report.denied().to_string(),
            false_rej.to_string(),
            fmt(mean_err, 3),
            report.calibration.len().to_string(),
        ];
        rows.push(row.clone());
        summary_csv.push(row);
        if engine == "Calibrated" {
            calibrated_report = Some(report);
        }
    }
    println!(
        "Admission calibration on a replayed {n_jobs}-job trace ({} interactive / {} sessions, {} deadline-free probes)\n",
        specs.iter().filter(|s| !s.is_vqa).count(),
        specs.iter().filter(|s| s.is_vqa).count(),
        specs.iter().filter(|s| s.id % 4 == 0).count(),
    );
    print_table(
        &[
            "Engine",
            "SLA attainment",
            "denied",
            "false rejections",
            "mean |err| (s)",
            "outcomes fed",
        ],
        &rows,
    );
    println!("\n(Calibrated should hold attainment at or above StaticReject with no more false rejections)");
    write_csv(
        "admission_calibration.csv",
        &[
            "engine",
            "sla_attainment",
            "denied",
            "false_rejections",
            "mean_abs_error",
            "outcomes_fed",
        ],
        &summary_csv,
    );

    // The calibrated run's learning curve: estimate error and margin in
    // force per ingested outcome, over virtual time.
    let calibrated = calibrated_report.expect("calibrated engine ran");
    let curve: Vec<Vec<String>> = calibrated
        .calibration
        .iter()
        .map(|s| {
            vec![
                fmt(s.time, 4),
                s.key.tier.to_string(),
                format!("{:?}", s.key.class),
                s.error.map_or(String::new(), |e| fmt(e, 4)),
                fmt(s.margin, 4),
                s.samples.to_string(),
            ]
        })
        .collect();
    write_csv(
        "admission_calibration_curve.csv",
        &["time", "tier", "class", "error", "margin", "samples"],
        &curve,
    );
}
