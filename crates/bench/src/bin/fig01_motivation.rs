//! Fig. 1 — the motivating timeline: a 3-restart VQA task executed (a) on
//! single devices, where ibmq_kolkata wins on quality but queues behind 3x
//! more pending jobs, and (b) under Qoncord, which explores on the low-load
//! ibmq_toronto, terminates weak restarts, and fine-tunes on ibmq_kolkata
//! (the paper reports a 2.14x faster time-to-solution).

use qoncord_bench::{fmt, print_table, ExperimentArgs};
use qoncord_core::cluster::SelectionPolicy;
use qoncord_core::executor::QaoaFactory;
use qoncord_core::scheduler::{run_single_device, QoncordConfig, QoncordScheduler};
use qoncord_device::catalog;
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};

/// Effective wait per circuit execution, seconds. The HF device queues 3x
/// deeper in jobs (Fig. 1's premise), and per-job waits compound: Table I
/// shows order-of-magnitude wait gaps between low- and high-fidelity
/// machines, so a conservative 10x effective gap is used here.
const LF_QUEUE_DELAY_S: f64 = 0.3;
const HF_QUEUE_DELAY_S: f64 = 3.0;

fn main() {
    let args = ExperimentArgs::parse();
    let restarts = args.restarts(3, 3);
    let iterations = args.scale(30, 100);
    let problem = MaxCut::new(Graph::paper_graph_7());
    let factory = QaoaFactory {
        problem: problem.clone(),
        layers: 1,
    };
    let lf = catalog::ibmq_toronto();
    let hf = catalog::ibmq_kolkata();
    // Baseline (a): every restart end-to-end on each single device.
    let lf_report = run_single_device(&lf, &factory, restarts, iterations, args.seed);
    let hf_report = run_single_device(&hf, &factory, restarts, iterations, args.seed);
    // Qoncord (b).
    // Fig. 1(b) terminates the weakest of the three restarts after cheap
    // exploration; with only three restarts the cluster test lacks samples,
    // so the explicit top-2 policy reproduces the figure's schedule.
    let config = QoncordConfig {
        exploration_max_iterations: iterations / 2,
        finetune_max_iterations: iterations / 2,
        min_fidelity: 0.0,
        selection: SelectionPolicy::TopK(2),
        seed: args.seed,
        ..QoncordConfig::default()
    };
    let q_report = QoncordScheduler::new(config)
        .run(&[lf.clone(), hf.clone()], &factory, restarts)
        .expect("two viable devices");
    // Wall-clock model: every circuit execution pays the device's queue delay.
    let lf_time = lf_report.total_executions() as f64 * LF_QUEUE_DELAY_S;
    let hf_time = hf_report.total_executions() as f64 * HF_QUEUE_DELAY_S;
    let q_time: f64 = q_report
        .devices
        .iter()
        .map(|d| {
            let delay = if d.device == "ibmq_toronto" {
                LF_QUEUE_DELAY_S
            } else {
                HF_QUEUE_DELAY_S
            };
            d.executions as f64 * delay
        })
        .sum();
    let rows = vec![
        vec![
            "LF only (ibmq_toronto)".to_string(),
            fmt(lf_report.best_approximation_ratio(), 3),
            lf_report.total_executions().to_string(),
            fmt(lf_time, 0),
            fmt(1.0, 2),
        ],
        vec![
            "HF only (ibmq_kolkata)".to_string(),
            fmt(hf_report.best_approximation_ratio(), 3),
            hf_report.total_executions().to_string(),
            fmt(hf_time, 0),
            fmt(1.0, 2),
        ],
        vec![
            "Qoncord".to_string(),
            fmt(q_report.best_approximation_ratio(), 3),
            q_report.total_executions().to_string(),
            fmt(q_time, 0),
            fmt(hf_time / q_time, 2),
        ],
    ];
    println!("Fig. 1: motivation — single-device baselines vs Qoncord ({restarts} restarts)\n");
    print_table(
        &[
            "Mode",
            "best approx ratio",
            "executions",
            "makespan (s)",
            "speedup vs HF",
        ],
        &rows,
    );
    println!(
        "\nQoncord terminated {} of {} restarts after cheap exploration;",
        q_report.terminated_restarts(),
        restarts
    );
    println!("paper reports 2.14x faster than HF-only at matched quality.");
}
