//! Fig. 3 — fidelity vs execution-latency trade-off of cumulative error
//! mitigation (none, +DD, +TREX, +Twirling, +ZNE) on a two-local ansatz.
//!
//! Substitution (DESIGN.md): the paper measures a 50-qubit ansatz on
//! ibm_kyoto; we run an 8-qubit two-local ansatz with each technique's
//! effect modelled as error/latency multipliers calibrated to the paper's
//! reported magnitudes (ZNE: 57-70 % error cut at 3x latency).

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_circuit::transpile::transpile;
use qoncord_device::catalog;
use qoncord_device::mitigation::MitigationStack;
use qoncord_device::noise_model::{NoiseModel, SimulatedBackend};
use qoncord_vqa::restart::random_initial_points;
use qoncord_vqa::uccsd::two_local_ansatz;

fn main() {
    let args = ExperimentArgs::parse();
    let n_qubits = 8;
    let reps = 2;
    let shots = 4000u64;
    let ansatz = two_local_ansatz(n_qubits, reps);
    let cal = catalog::ibmq_kolkata().renamed("ibm_kyoto_model");
    let transpiled = transpile(&ansatz, cal.coupling());
    let params = random_initial_points(ansatz.n_params(), 1, args.seed).remove(0);
    // Ideal expectation of the all-Z parity observable (the "expectation
    // value" axis of Fig. 3, normalized so ideal = 1).
    let parity = |z: usize| {
        if z.count_ones().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        }
    };
    let ideal_dist = SimulatedBackend::ideal(cal.clone()).run(&transpiled, &params, 0);
    let ideal_e = ideal_dist.expectation_fn(parity);
    let base_noise = NoiseModel::from_calibration(&cal);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for level in 0..=4 {
        let stack = MitigationStack::fig3_level(level);
        let noise = stack.apply(&base_noise);
        let backend = SimulatedBackend::from_calibration(cal.clone()).with_noise(noise);
        let dist = backend.run(&transpiled, &params, args.seed);
        let e = dist.expectation_fn(parity);
        let relative = if ideal_e.abs() > 1e-9 {
            e / ideal_e
        } else {
            1.0
        };
        let time_s = cal.execution_time_s(&transpiled.stats, shots) * stack.latency_multiplier();
        rows.push(vec![
            stack.label(),
            fmt(relative, 4),
            fmt((1.0 - relative).abs(), 4),
            fmt(time_s, 2),
        ]);
        csv.push(vec![stack.label(), fmt(relative, 6), fmt(time_s, 4)]);
    }
    println!(
        "Fig. 3: error mitigation trade-off ({}q two-local, {} shots)\n",
        n_qubits, shots
    );
    print_table(
        &["Mitigation", "E / E_ideal", "error", "exec time (s)"],
        &rows,
    );
    println!("\n(fidelity improves monotonically down the stack while latency grows; ZNE");
    println!(" buys the largest error cut at ~3x the execution time, as in the paper)");
    write_csv(
        "fig03_mitigation.csv",
        &["mitigation", "relative_expectation", "exec_time_s"],
        &csv,
    );
}
