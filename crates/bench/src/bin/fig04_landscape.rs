//! Fig. 4 — the (γ, β) optimization landscape of a 7-qubit 1-layer QAOA
//! under ibmq_toronto and ibmq_kolkata noise, with the SPSA optimizer path,
//! and the gradient-saturation observation: gradients flatten on the noisy
//! device as exploration ends, while the high-fidelity device keeps sharper
//! gradients for fine-tuning.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_circuit::transpile::transpile;
use qoncord_device::catalog;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_vqa::evaluator::QaoaEvaluator;
use qoncord_vqa::optimizer::Spsa;
use qoncord_vqa::qaoa;
use qoncord_vqa::restart::train;
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn main() {
    let args = ExperimentArgs::parse();
    let grid = args.scale(16, 32);
    let iterations = args.scale(40, 120);
    let problem = MaxCut::new(Graph::paper_graph_7());
    let circuit = qaoa::build_circuit(problem.graph(), 1);
    let mut csv = Vec::new();
    let mut summary = Vec::new();
    for cal in [catalog::ibmq_toronto(), catalog::ibmq_kolkata()] {
        let transpiled = transpile(&circuit, cal.coupling());
        let backend = SimulatedBackend::from_calibration(cal.clone());
        // Landscape grid.
        let mut grad_sum = 0.0;
        let mut cells = 0usize;
        let mut values = vec![vec![0.0; grid]; grid];
        for gi in 0..grid {
            for bi in 0..grid {
                let gamma = gi as f64 * PI / grid as f64;
                let beta = bi as f64 * PI / grid as f64;
                let dist = backend.run(&transpiled, &[gamma, beta], 0);
                let e = problem.expectation(&dist);
                values[gi][bi] = e;
                csv.push(vec![
                    cal.name().to_string(),
                    fmt(gamma, 4),
                    fmt(beta, 4),
                    fmt(e, 6),
                ]);
            }
        }
        // Mean finite-difference gradient magnitude over the grid: the
        // "gradient sharpness" the paper contrasts between devices.
        for gi in 0..grid - 1 {
            for bi in 0..grid - 1 {
                let dg = values[gi + 1][bi] - values[gi][bi];
                let db = values[gi][bi + 1] - values[gi][bi];
                grad_sum += (dg * dg + db * db).sqrt();
                cells += 1;
            }
        }
        // Optimizer path from a fixed start.
        let mut eval = QaoaEvaluator::new(&problem, 1, backend, args.seed);
        let mut spsa = Spsa::default();
        let mut rng = StdRng::seed_from_u64(args.seed);
        let result = train(
            &mut eval,
            &mut spsa,
            vec![2.4, 2.0],
            iterations,
            &mut rng,
            |_, _| false,
        );
        let final_e = result.trace.final_expectation().unwrap();
        summary.push(vec![
            cal.name().to_string(),
            fmt(grad_sum / cells as f64, 4),
            fmt(final_e, 3),
            fmt(problem.approximation_ratio(final_e), 3),
        ]);
    }
    println!("Fig. 4: landscape sharpness and optimizer outcome per device\n");
    print_table(
        &["Device", "mean |gradient|", "final E", "approx ratio"],
        &summary,
    );
    println!("\n(the higher-fidelity device preserves sharper gradients -> fine-tuning succeeds)");
    write_csv(
        "fig04_landscape.csv",
        &["device", "gamma", "beta", "expectation"],
        &csv,
    );
}
