//! Fig. 5 — three restarts from distinct initial points on the 7-qubit QAOA
//! landscape: only some converge to the global optimum (the paper's example
//! lands at expectation −6.89; the others stall at local optima).

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_device::catalog;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_vqa::evaluator::QaoaEvaluator;
use qoncord_vqa::optimizer::Spsa;
use qoncord_vqa::restart::{random_initial_points, train};
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExperimentArgs::parse();
    let iterations = args.scale(60, 150);
    let n_restarts = args.restarts(3, 3);
    let problem = MaxCut::new(Graph::paper_graph_7());
    println!(
        "Fig. 5: {} restarts on the 7q 2-layer QAOA landscape (ground energy {:.2})\n",
        n_restarts,
        problem.ground_energy()
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut finals = Vec::new();
    for (r, initial) in random_initial_points(4, n_restarts, args.seed)
        .into_iter()
        .enumerate()
    {
        let backend = SimulatedBackend::from_calibration(catalog::ibmq_kolkata());
        let mut eval = QaoaEvaluator::new(&problem, 2, backend, args.seed + r as u64);
        let mut spsa = Spsa::default();
        let mut rng = StdRng::seed_from_u64(args.seed ^ (r as u64) << 4);
        let result = train(
            &mut eval,
            &mut spsa,
            initial.clone(),
            iterations,
            &mut rng,
            |_, _| false,
        );
        for rec in &result.trace.records {
            csv.push(vec![
                r.to_string(),
                rec.iteration.to_string(),
                fmt(rec.expectation, 6),
            ]);
        }
        let final_e = result.trace.final_expectation().unwrap();
        finals.push(final_e);
        rows.push(vec![
            format!("restart {r}"),
            format!("({:.2}, {:.2}, ...)", initial[0], initial[1]),
            fmt(final_e, 3),
            fmt(problem.approximation_ratio(final_e), 3),
        ]);
    }
    print_table(
        &[
            "Restart",
            "initial point",
            "final expectation",
            "approx ratio",
        ],
        &rows,
    );
    let best = finals.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nspread across restarts: best {:.3}, worst {:.3} -> restarts are not equal",
        best, worst
    );
    write_csv(
        "fig05_restart_paths.csv",
        &["restart", "iteration", "expectation"],
        &csv,
    );
}
