//! Fig. 6 — scatter of intermediate (40 % of iterations) vs final
//! expectation values across restarts: good restarts cluster early, so
//! intermediate values predict final quality (the basis of Qoncord's
//! restart triage). `--ablate` compares cluster selection against top-k.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_core::cluster::{select_restarts, SelectionPolicy};
use qoncord_device::catalog;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_vqa::evaluator::QaoaEvaluator;
use qoncord_vqa::optimizer::Spsa;
use qoncord_vqa::restart::{random_initial_points, train};
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExperimentArgs::parse();
    let n_restarts = args.restarts(16, 40);
    let iterations = args.scale(40, 100);
    let problem = MaxCut::new(Graph::paper_graph_7());
    let mut intermediates = Vec::new();
    let mut finals = Vec::new();
    for (r, initial) in random_initial_points(2, n_restarts, args.seed)
        .into_iter()
        .enumerate()
    {
        let backend = SimulatedBackend::from_calibration(catalog::ibmq_toronto());
        let mut eval = QaoaEvaluator::new(&problem, 1, backend, args.seed + r as u64);
        let mut spsa = Spsa::default();
        let mut rng = StdRng::seed_from_u64(args.seed ^ (r as u64) << 3);
        let result = train(
            &mut eval,
            &mut spsa,
            initial,
            iterations,
            &mut rng,
            |_, _| false,
        );
        intermediates.push(result.trace.at_fraction(0.4).unwrap().expectation);
        finals.push(result.trace.final_expectation().unwrap());
    }
    // Pearson correlation between intermediate and final values.
    let n = n_restarts as f64;
    let (mi, mf) = (
        intermediates.iter().sum::<f64>() / n,
        finals.iter().sum::<f64>() / n,
    );
    let cov: f64 = intermediates
        .iter()
        .zip(&finals)
        .map(|(a, b)| (a - mi) * (b - mf))
        .sum();
    let (si, sf) = (
        intermediates
            .iter()
            .map(|a| (a - mi).powi(2))
            .sum::<f64>()
            .sqrt(),
        finals.iter().map(|b| (b - mf).powi(2)).sum::<f64>().sqrt(),
    );
    let pearson = cov / (si * sf + 1e-12);
    let selected = select_restarts(&intermediates, SelectionPolicy::TopCluster);
    // Quality of selection: mean final value of selected vs rejected.
    let sel_mean: f64 = selected.iter().map(|&i| finals[i]).sum::<f64>() / selected.len() as f64;
    let rejected: Vec<usize> = (0..n_restarts).filter(|i| !selected.contains(i)).collect();
    let rej_mean: f64 = if rejected.is_empty() {
        f64::NAN
    } else {
        rejected.iter().map(|&i| finals[i]).sum::<f64>() / rejected.len() as f64
    };
    println!("Fig. 6: intermediate (40%) vs final expectation across {n_restarts} restarts\n");
    let rows: Vec<Vec<String>> = (0..n_restarts)
        .map(|i| {
            vec![
                i.to_string(),
                fmt(intermediates[i], 3),
                fmt(finals[i], 3),
                if selected.contains(&i) {
                    "selected"
                } else {
                    "terminated"
                }
                .into(),
            ]
        })
        .collect();
    print_table(&["restart", "intermediate E", "final E", "triage"], &rows);
    println!("\nPearson(intermediate, final) = {pearson:.3} (strong positive = early values predict outcomes)");
    println!(
        "cluster triage keeps {}/{} restarts; mean final E selected {:.3} vs terminated {:.3}",
        selected.len(),
        n_restarts,
        sel_mean,
        rej_mean
    );
    if args.ablate {
        let k = selected.len().max(1);
        let topk = select_restarts(&intermediates, SelectionPolicy::TopK(k));
        let topk_mean: f64 = topk.iter().map(|&i| finals[i]).sum::<f64>() / k as f64;
        println!(
            "[ablation] top-{k} selection mean final E {:.3} vs cluster {:.3}",
            topk_mean, sel_mean
        );
    }
    write_csv(
        "fig06_clusters.csv",
        &["restart", "intermediate", "final", "selected"],
        &(0..n_restarts)
            .map(|i| {
                vec![
                    i.to_string(),
                    fmt(intermediates[i], 6),
                    fmt(finals[i], 6),
                    selected.contains(&i).to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
