//! Fig. 8 — optimization gain of a 7-qubit QAOA (1–3 layers) across six
//! device noise profiles, plus the P_correct heatmap and the 0.1
//! minimum-fidelity threshold (estimates below it give poor results).

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_device::catalog;
use qoncord_device::fidelity::{p_correct, MIN_FIDELITY_THRESHOLD};
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_vqa::evaluator::{CostEvaluator, QaoaEvaluator};
use qoncord_vqa::optimizer::Spsa;
use qoncord_vqa::restart::{random_initial_points, train};
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExperimentArgs::parse();
    let iterations = args.scale(30, 80);
    let restarts = args.restarts(2, 5);
    let problem = MaxCut::new(Graph::paper_graph_7());
    let devices = catalog::fig8_devices();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for cal in &devices {
        let mut row = vec![cal.name().to_string()];
        for layers in 1..=3usize {
            let backend = SimulatedBackend::from_calibration(cal.clone());
            let mut eval = QaoaEvaluator::new(&problem, layers, backend, args.seed);
            let fidelity = p_correct(cal, &eval.circuit_stats());
            // Optimization gain: best approximation ratio reached minus the
            // initial (random-parameter) ratio.
            let mut best_gain: f64 = 0.0;
            for (r, initial) in random_initial_points(2 * layers, restarts, args.seed)
                .into_iter()
                .enumerate()
            {
                let initial_ratio =
                    problem.approximation_ratio(eval.evaluate(&initial).expectation);
                let mut spsa = Spsa::default();
                let mut rng = StdRng::seed_from_u64(args.seed + r as u64);
                let result = train(
                    &mut eval,
                    &mut spsa,
                    initial,
                    iterations,
                    &mut rng,
                    |_, _| false,
                );
                let final_ratio =
                    problem.approximation_ratio(result.trace.best_expectation().unwrap_or(0.0));
                best_gain = best_gain.max(final_ratio - initial_ratio);
            }
            let below = if fidelity < MIN_FIDELITY_THRESHOLD {
                "*"
            } else {
                ""
            };
            row.push(format!("{:.2} (P={:.2}{below})", best_gain, fidelity));
            csv.push(vec![
                cal.name().to_string(),
                layers.to_string(),
                fmt(best_gain, 4),
                fmt(fidelity, 4),
            ]);
        }
        rows.push(row);
    }
    println!("Fig. 8: optimization gain and estimated fidelity (P) per device x layers");
    println!("(* marks device-task pairs below Qoncord's 0.1 fidelity threshold)\n");
    print_table(&["Device", "1 layer", "2 layers", "3 layers"], &rows);
    write_csv(
        "fig08_layer_sweep.csv",
        &["device", "layers", "optimization_gain", "p_correct"],
        &csv,
    );
}
