//! Fig. 9 — distribution of Hellinger fidelities of a 7-qubit 1-layer QAOA
//! under ibmq_kolkata noise across 100 random parameter sets, versus the
//! single P_correct estimate (which cannot capture the parameter-dependent
//! spread — the paper's argument for the adaptive convergence checker).

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_circuit::transpile::transpile;
use qoncord_device::catalog;
use qoncord_device::fidelity::p_correct;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_sim::dist::ProbDist;
use qoncord_vqa::qaoa;
use qoncord_vqa::restart::random_initial_points;
use qoncord_vqa::{graph::Graph, metrics};

fn main() {
    let args = ExperimentArgs::parse();
    let n_sets = args.scale(100, 100);
    let graph = Graph::paper_graph_7();
    let circuit = qaoa::build_circuit(&graph, 1);
    let cal = catalog::ibmq_kolkata();
    let transpiled = transpile(&circuit, cal.coupling());
    let noisy = SimulatedBackend::from_calibration(cal.clone());
    let ideal = SimulatedBackend::ideal(cal.clone());
    let mut fidelities = Vec::with_capacity(n_sets);
    for (i, params) in random_initial_points(2, n_sets, args.seed)
        .iter()
        .enumerate()
    {
        let clean = ideal.run(&transpiled, params, i as u64);
        let dirty = noisy.run(&transpiled, params, i as u64);
        fidelities.push(clean.hellinger_fidelity(&dirty));
    }
    let stats = metrics::BoxStats::from_samples(&fidelities);
    let estimate = p_correct(&cal, &transpiled.stats);
    println!("Fig. 9: Hellinger fidelity of a 7q 1-layer QAOA on ibmq_kolkata");
    println!("        across {n_sets} random parameter sets\n");
    // Text histogram over 10 buckets.
    let (lo, hi) = (stats.min, stats.max);
    let mut buckets = [0usize; 10];
    for &f in &fidelities {
        let b = (((f - lo) / (hi - lo + 1e-12)) * 10.0).floor() as usize;
        buckets[b.min(9)] += 1;
    }
    let rows: Vec<Vec<String>> = buckets
        .iter()
        .enumerate()
        .map(|(b, &count)| {
            let left = lo + (hi - lo) * b as f64 / 10.0;
            let right = lo + (hi - lo) * (b + 1) as f64 / 10.0;
            vec![
                format!("[{:.3}, {:.3})", left, right),
                count.to_string(),
                "#".repeat(count),
            ]
        })
        .collect();
    print_table(&["Hellinger fidelity", "count", ""], &rows);
    println!();
    println!(
        "spread: min {:.3}  mean {:.3}  max {:.3}   (paper: 0.56 - 0.99, mean 0.83)",
        stats.min, stats.mean, stats.max
    );
    println!(
        "P_correct estimate: {:.3} -- a single number cannot reflect the spread",
        estimate
    );
    let uniform = ProbDist::uniform(7);
    let _ = uniform;
    write_csv(
        "fig09_hellinger.csv",
        &["sample", "hellinger_fidelity"],
        &fidelities
            .iter()
            .enumerate()
            .map(|(i, f)| vec![i.to_string(), fmt(*f, 6)])
            .collect::<Vec<_>>(),
    );
}
