//! Fig. 10 — the Shannon-entropy arc: entropy vs expectation over training
//! on a noise-free reference, ibmq_kolkata, and ibmq_toronto. The noisy
//! device fails to resolve the falling edge of the arc; joint
//! expectation+entropy checking avoids terminating on a one-metric plateau.
//! `--ablate` quantifies how much earlier an expectation-only checker fires.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_core::convergence::{ConvergenceChecker, ConvergenceConfig, ConvergenceStatus};
use qoncord_device::catalog;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_vqa::evaluator::QaoaEvaluator;
use qoncord_vqa::optimizer::Spsa;
use qoncord_vqa::restart::train;
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExperimentArgs::parse();
    let iterations = args.scale(60, 150);
    let problem = MaxCut::new(Graph::paper_graph_7());
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    let backends = [
        (
            "noise-free",
            SimulatedBackend::ideal(catalog::ibmq_kolkata()),
        ),
        (
            "ibmq_kolkata",
            SimulatedBackend::from_calibration(catalog::ibmq_kolkata()),
        ),
        (
            "ibmq_toronto",
            SimulatedBackend::from_calibration(catalog::ibmq_toronto()),
        ),
    ];
    for (name, backend) in backends {
        let mut eval = QaoaEvaluator::new(&problem, 1, backend, args.seed);
        let mut spsa = Spsa::default();
        let mut rng = StdRng::seed_from_u64(args.seed);
        let result = train(
            &mut eval,
            &mut spsa,
            vec![2.4, 2.0],
            iterations,
            &mut rng,
            |_, _| false,
        );
        let (mut ent_min, mut ent_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for rec in &result.trace.records {
            ent_min = ent_min.min(rec.entropy);
            ent_max = ent_max.max(rec.entropy);
            csv.push(vec![
                name.to_string(),
                rec.iteration.to_string(),
                fmt(rec.expectation, 6),
                fmt(rec.entropy, 6),
            ]);
        }
        // Where would the joint vs expectation-only checkers terminate?
        let fire = |cfg: ConvergenceConfig| -> usize {
            let mut checker = ConvergenceChecker::new(cfg);
            for rec in &result.trace.records {
                if checker.observe_record(rec) == ConvergenceStatus::Saturated {
                    return rec.iteration;
                }
            }
            iterations
        };
        let joint_at = fire(ConvergenceConfig::strict());
        let exp_only_at = fire(ConvergenceConfig::strict().expectation_only());
        rows.push(vec![
            name.to_string(),
            fmt(result.trace.final_expectation().unwrap(), 3),
            format!("[{ent_min:.2}, {ent_max:.2}]"),
            joint_at.to_string(),
            exp_only_at.to_string(),
        ]);
    }
    println!("Fig. 10: entropy arc over training per device\n");
    print_table(
        &[
            "Device",
            "final E",
            "entropy range",
            "joint stop @",
            "E-only stop @",
        ],
        &rows,
    );
    println!("\n(expectation-only checking fires no later than joint checking; when it fires");
    println!(" earlier the run is cut while entropy still indicates optimization headroom)");
    if args.ablate {
        println!("[ablation] see the last two columns: joint vs expectation-only stop iterations");
    }
    write_csv(
        "fig10_entropy_arc.csv",
        &["device", "iteration", "expectation", "entropy"],
        &csv,
    );
}
