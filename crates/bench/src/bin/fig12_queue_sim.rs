//! Fig. 12 — fidelity-throughput frontier of the six scheduling policies on
//! a simulated cloud of 10 hypothetical devices (fidelities 0.3–0.9) under
//! a 1000-job workload with VQA ratios 0.1–0.9. Qoncord's points sit
//! closest to the ideal top-right corner.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_cloud::device::hypothetical_fleet;
use qoncord_cloud::policy::Policy;
use qoncord_cloud::sim::simulate;
use qoncord_cloud::workload::{generate_workload, WorkloadConfig};

fn main() {
    let args = ExperimentArgs::parse();
    let n_jobs = args.scale(300, 1000);
    let fleet = hypothetical_fleet(10, 0.3, 0.9);
    let best_fidelity = 0.9;
    let ratios = [0.1, 0.3, 0.5, 0.7, 0.9];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for policy in Policy::all() {
        for &ratio in &ratios {
            let jobs = generate_workload(&WorkloadConfig {
                n_jobs,
                vqa_ratio: ratio,
                seed: args.seed,
                ..WorkloadConfig::default()
            });
            let result = simulate(policy, &jobs, &fleet, args.seed);
            let throughput = result.throughput();
            let fidelity = result.mean_relative_fidelity(best_fidelity);
            rows.push(vec![
                policy.label().to_string(),
                fmt(ratio, 1),
                fmt(throughput, 2),
                fmt(fidelity, 3),
                fmt(result.mean_utilization(), 2),
                fmt(result.load_imbalance(), 2),
            ]);
            csv.push(vec![
                policy.label().to_string(),
                fmt(ratio, 1),
                fmt(throughput, 4),
                fmt(fidelity, 4),
                fmt(result.mean_utilization(), 4),
            ]);
        }
    }
    println!(
        "Fig. 12: fidelity-throughput analysis ({n_jobs} jobs, 10 devices, fidelity 0.3-0.9)\n"
    );
    print_table(
        &[
            "Policy",
            "VQA ratio",
            "throughput (circ/s)",
            "rel. fidelity",
            "mean util",
            "load CV",
        ],
        &rows,
    );
    println!("\n(Qoncord rows should dominate: fidelity near Best Fidelity at throughput near Least Busy)");
    write_csv(
        "fig12_queue_sim.csv",
        &[
            "policy",
            "vqa_ratio",
            "throughput",
            "relative_fidelity",
            "mean_utilization",
        ],
        &csv,
    );
}
