//! Figs. 13 & 14 — end-to-end multi-restart optimization of a 7-qubit
//! 3-layer QAOA: approximation-ratio distribution (Fig. 13) and per-device
//! circuit-execution overhead (Fig. 14) for LF-only, HF-only, and Qoncord.
//!
//! Paper shape: Qoncord matches the HF-only maximum, lifts the mean by
//! ≥ 20 %, terminates most restarts at triage (31 of 50), and leaves ~70 %
//! of its executions on the LF device. `--ablate` compares the relaxed/strict
//! convergence tiers against strict-everywhere and relaxed-everywhere.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_core::convergence::ConvergenceConfig;
use qoncord_core::executor::QaoaFactory;
use qoncord_core::scheduler::{run_single_device, QoncordConfig, QoncordReport, QoncordScheduler};
use qoncord_device::catalog;
use qoncord_vqa::metrics::BoxStats;
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};

fn ratios(report: &QoncordReport) -> Vec<f64> {
    report
        .restarts
        .iter()
        .map(|r| {
            qoncord_vqa::metrics::approximation_ratio(r.final_expectation, report.ground_energy)
        })
        .collect()
}

fn stats_row(label: &str, samples: &[f64], executions: &[(String, u64)]) -> Vec<String> {
    let s = BoxStats::from_samples(samples);
    let execs: String = executions
        .iter()
        .map(|(d, e)| format!("{d}: {e}"))
        .collect::<Vec<_>>()
        .join("  ");
    vec![
        label.to_string(),
        fmt(s.min, 3),
        fmt(s.median, 3),
        fmt(s.mean, 3),
        fmt(s.max, 3),
        execs,
    ]
}

fn main() {
    let args = ExperimentArgs::parse();
    let restarts = args.restarts(16, 50);
    let iterations = args.scale(36, 100);
    let layers = 3;
    let problem = MaxCut::new(Graph::paper_graph_7());
    let factory = QaoaFactory {
        problem: problem.clone(),
        layers,
    };
    let lf = catalog::ibmq_toronto();
    let hf = catalog::ibmq_kolkata();
    println!(
        "Figs. 13/14: 7q {layers}-layer QAOA, {restarts} restarts (ground {:.2})\n",
        problem.ground_energy()
    );
    let lf_report = run_single_device(&lf, &factory, restarts, iterations, args.seed);
    let hf_report = run_single_device(&hf, &factory, restarts, iterations, args.seed);
    let config = QoncordConfig {
        // The paper assesses restarts ~40% through training, so exploration
        // carries the larger share of the per-restart budget.
        exploration_max_iterations: iterations * 3 / 5,
        finetune_max_iterations: iterations * 2 / 5,
        // The paper itself runs Toronto at 3 layers despite its sub-0.1
        // estimate in Fig. 8, so the filter is disabled for this experiment.
        min_fidelity: 0.0,
        seed: args.seed,
        ..QoncordConfig::default()
    };
    let q_report = QoncordScheduler::new(config.clone())
        .run(&[lf.clone(), hf.clone()], &factory, restarts)
        .expect("devices viable");
    let execs = |r: &QoncordReport| -> Vec<(String, u64)> {
        r.devices
            .iter()
            .map(|d| (d.device.clone(), d.executions))
            .collect()
    };
    let mut rows = vec![
        stats_row("LF only", &ratios(&lf_report), &execs(&lf_report)),
        stats_row("HF only", &ratios(&hf_report), &execs(&hf_report)),
        stats_row("Qoncord", &q_report.survivor_ratios(), &execs(&q_report)),
    ];
    if args.ablate {
        for (label, relaxed, strict) in [
            (
                "Qoncord strict-everywhere",
                ConvergenceConfig::strict(),
                ConvergenceConfig::strict(),
            ),
            (
                "Qoncord relaxed-everywhere",
                ConvergenceConfig::relaxed(),
                ConvergenceConfig::relaxed(),
            ),
        ] {
            let cfg = QoncordConfig {
                relaxed,
                strict,
                ..config.clone()
            };
            let rep = QoncordScheduler::new(cfg)
                .run(&[lf.clone(), hf.clone()], &factory, restarts)
                .expect("devices viable");
            rows.push(stats_row(label, &rep.survivor_ratios(), &execs(&rep)));
        }
    }
    print_table(
        &[
            "Mode",
            "min",
            "median",
            "mean",
            "max",
            "executions per device",
        ],
        &rows,
    );
    let lf_share =
        q_report.devices[0].executions as f64 / q_report.total_executions().max(1) as f64;
    println!(
        "\nQoncord: {} of {restarts} restarts terminated at triage; LF executes {:.0}% of circuits",
        q_report.terminated_restarts(),
        lf_share * 100.0
    );
    println!("(paper: 31/50 terminated; LF share 70%; Qoncord mean >= 20% above single-device)");
    let mut csv = Vec::new();
    for (label, report) in [
        ("lf", &lf_report),
        ("hf", &hf_report),
        ("qoncord", &q_report),
    ] {
        for (i, ratio) in ratios(report).iter().enumerate() {
            csv.push(vec![label.to_string(), i.to_string(), fmt(*ratio, 6)]);
        }
    }
    write_csv(
        "fig13_ratios.csv",
        &["mode", "restart", "approx_ratio"],
        &csv,
    );
    let overhead: Vec<Vec<String>> = [
        ("lf", &lf_report),
        ("hf", &hf_report),
        ("qoncord", &q_report),
    ]
    .iter()
    .flat_map(|(label, r)| {
        r.devices.iter().map(move |d| {
            vec![
                label.to_string(),
                d.device.clone(),
                d.executions.to_string(),
            ]
        })
    })
    .collect();
    write_csv(
        "fig14_overhead.csv",
        &["mode", "device", "executions"],
        &overhead,
    );
}
