//! Figs. 15 & 16 — the three-device hierarchy: a 9-qubit 3-layer QAOA with
//! ibmq_toronto (LF), ibmq_kolkata (MF), and IonQ-Forte (HF). Qoncord walks
//! the ladder LF → MF → HF; the paper reports the highest max ratio, a mean
//! more than 8 % above any single device, and MF-only carrying the largest
//! execution overhead.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_core::executor::QaoaFactory;
use qoncord_core::scheduler::{run_single_device, QoncordConfig, QoncordReport, QoncordScheduler};
use qoncord_device::catalog;
use qoncord_vqa::metrics::BoxStats;
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};

fn ratio_stats(report: &QoncordReport, survivors_only: bool) -> BoxStats {
    let samples: Vec<f64> = if survivors_only {
        report.survivor_ratios()
    } else {
        report
            .restarts
            .iter()
            .map(|r| {
                qoncord_vqa::metrics::approximation_ratio(r.final_expectation, report.ground_energy)
            })
            .collect()
    };
    BoxStats::from_samples(&samples)
}

fn main() {
    let args = ExperimentArgs::parse();
    let restarts = args.restarts(8, 50);
    let iterations = args.scale(24, 80);
    let problem = MaxCut::new(Graph::paper_graph_9());
    let factory = QaoaFactory {
        problem: problem.clone(),
        layers: 3,
    };
    let lf = catalog::ibmq_toronto();
    let mf = catalog::ibmq_kolkata();
    let hf = catalog::ionq_forte();
    println!(
        "Figs. 15/16: 9q 3-layer QAOA, {restarts} restarts, toronto(LF)/kolkata(MF)/forte(HF)\n"
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, cal) in [("LF", &lf), ("MF", &mf), ("HF", &hf)] {
        let report = run_single_device(cal, &factory, restarts, iterations, args.seed);
        let stats = ratio_stats(&report, false);
        rows.push(vec![
            label.to_string(),
            fmt(stats.mean, 3),
            fmt(stats.max, 3),
            report.total_executions().to_string(),
        ]);
        csv.push(vec![
            label.to_string(),
            fmt(stats.mean, 6),
            fmt(stats.max, 6),
            report.total_executions().to_string(),
        ]);
    }
    // Budgets are ceilings, not targets: the relaxed/strict checkers stop
    // each phase adaptively, so the final rung may use the full budget the
    // single-device baselines get.
    let config = QoncordConfig {
        exploration_max_iterations: iterations / 2,
        finetune_max_iterations: iterations,
        min_fidelity: 0.0,
        seed: args.seed,
        ..QoncordConfig::default()
    };
    let q = QoncordScheduler::new(config)
        .run(&[lf, mf, hf], &factory, restarts)
        .expect("devices viable");
    let stats = ratio_stats(&q, true);
    let device_execs: String = q
        .devices
        .iter()
        .map(|d| format!("{}: {}", d.device, d.executions))
        .collect::<Vec<_>>()
        .join("  ");
    rows.push(vec![
        "Qoncord".to_string(),
        fmt(stats.mean, 3),
        fmt(stats.max, 3),
        q.total_executions().to_string(),
    ]);
    csv.push(vec![
        "Qoncord".to_string(),
        fmt(stats.mean, 6),
        fmt(stats.max, 6),
        q.total_executions().to_string(),
    ]);
    print_table(
        &["Mode", "mean ratio", "max ratio", "total executions"],
        &rows,
    );
    println!("\nQoncord per-device executions: {device_execs}");
    println!("(paper: Qoncord max is the highest; mean >8% above all single-device modes)");
    write_csv(
        "fig15_16_three_devices.csv",
        &["mode", "mean_ratio", "max_ratio", "executions"],
        &csv,
    );
}
