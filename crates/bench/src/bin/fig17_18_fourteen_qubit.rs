//! Figs. 17 & 18 — the 14-qubit 1-layer QAOA sensitivity study on three
//! hypothetical depolarizing device models (0.1 % / 0.5 % / 1 % two-qubit
//! and readout error), simulated with Monte-Carlo trajectories (the paper
//! used GPU density matrices; see DESIGN.md's substitution table).

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_core::executor::EvaluatorFactory;
use qoncord_core::scheduler::{run_single_device, QoncordConfig, QoncordReport, QoncordScheduler};
use qoncord_device::catalog::hypothetical_depolarizing;
use qoncord_device::noise_model::{BackendKind, SimulatedBackend};
use qoncord_vqa::evaluator::{CostEvaluator, QaoaEvaluator};
use qoncord_vqa::metrics::BoxStats;
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};

/// QAOA factory that pins the trajectory count (the Auto default of 48 is
/// sized for accuracy; the quick scale trades precision for wall-clock).
struct TrajectoryQaoaFactory {
    problem: MaxCut,
    layers: usize,
    n_trajectories: u32,
}

impl EvaluatorFactory for TrajectoryQaoaFactory {
    fn make(&self, backend: SimulatedBackend, seed: u64) -> Box<dyn CostEvaluator> {
        let backend = backend.with_kind(BackendKind::Trajectory {
            n_trajectories: self.n_trajectories,
        });
        Box::new(QaoaEvaluator::new(
            &self.problem,
            self.layers,
            backend,
            seed,
        ))
    }
}

fn ratio_stats(report: &QoncordReport, survivors_only: bool) -> BoxStats {
    let samples: Vec<f64> = if survivors_only {
        report.survivor_ratios()
    } else {
        report
            .restarts
            .iter()
            .map(|r| {
                qoncord_vqa::metrics::approximation_ratio(r.final_expectation, report.ground_energy)
            })
            .collect()
    };
    BoxStats::from_samples(&samples)
}

fn main() {
    let args = ExperimentArgs::parse();
    let restarts = args.restarts(4, 50);
    let iterations = args.scale(12, 60);
    let problem = MaxCut::new(Graph::paper_graph_14());
    let factory = TrajectoryQaoaFactory {
        problem: problem.clone(),
        layers: 1,
        n_trajectories: args.scale(8, 48) as u32,
    };
    let lf = hypothetical_depolarizing("hypo_lf_1.0pct", 14, 0.010, 0.010);
    let mf = hypothetical_depolarizing("hypo_mf_0.5pct", 14, 0.005, 0.005);
    let hf = hypothetical_depolarizing("hypo_hf_0.1pct", 14, 0.001, 0.001);
    println!(
        "Figs. 17/18: 14q 1-layer QAOA, {restarts} restarts, hypothetical depolarizing models\n"
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, cal) in [("LF (1.0%)", &lf), ("MF (0.5%)", &mf), ("HF (0.1%)", &hf)] {
        let report = run_single_device(cal, &factory, restarts, iterations, args.seed);
        let stats = ratio_stats(&report, false);
        rows.push(vec![
            label.to_string(),
            fmt(stats.mean, 3),
            fmt(stats.max, 3),
            report.total_executions().to_string(),
        ]);
        csv.push(vec![
            label.to_string(),
            fmt(stats.mean, 6),
            fmt(stats.max, 6),
            report.total_executions().to_string(),
        ]);
    }
    // Budgets are ceilings, not targets: the relaxed/strict checkers stop
    // each phase adaptively, so the final rung may use the full budget the
    // single-device baselines get.
    let config = QoncordConfig {
        exploration_max_iterations: iterations / 2,
        finetune_max_iterations: iterations,
        min_fidelity: 0.0,
        seed: args.seed,
        ..QoncordConfig::default()
    };
    let q = QoncordScheduler::new(config)
        .run(&[lf, mf, hf], &factory, restarts)
        .expect("devices viable");
    let stats = ratio_stats(&q, true);
    rows.push(vec![
        "Qoncord".to_string(),
        fmt(stats.mean, 3),
        fmt(stats.max, 3),
        q.total_executions().to_string(),
    ]);
    csv.push(vec![
        "Qoncord".to_string(),
        fmt(stats.mean, 6),
        fmt(stats.max, 6),
        q.total_executions().to_string(),
    ]);
    print_table(
        &["Mode", "mean ratio", "max ratio", "total executions"],
        &rows,
    );
    let device_execs: String = q
        .devices
        .iter()
        .map(|d| format!("{}: {}", d.device, d.executions))
        .collect::<Vec<_>>()
        .join("  ");
    println!("\nQoncord per-device executions: {device_execs}");
    println!("(paper: Qoncord outperforms single-device results at this scale too)");
    write_csv(
        "fig17_18_fourteen_qubit.csv",
        &["mode", "mean_ratio", "max_ratio", "executions"],
        &csv,
    );
}
