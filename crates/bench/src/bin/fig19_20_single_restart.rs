//! Figs. 19 & 20 — single-restart QAOA (no early termination) for 1–3
//! layers: Qoncord's approximation ratio tracks HF-only (≥14 % above
//! LF-only at 3 layers) while splitting executions across both devices and
//! lowering the peak per-device load.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_core::cluster::SelectionPolicy;
use qoncord_core::executor::QaoaFactory;
use qoncord_core::scheduler::{run_single_device, QoncordConfig, QoncordScheduler};
use qoncord_device::catalog;
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};

fn main() {
    let args = ExperimentArgs::parse();
    let iterations = args.scale(30, 100);
    let problem = MaxCut::new(Graph::paper_graph_7());
    let lf = catalog::ibmq_toronto();
    let hf = catalog::ibmq_kolkata();
    println!("Figs. 19/20: single-restart QAOA by layer count\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for layers in 1..=3usize {
        let factory = QaoaFactory {
            problem: problem.clone(),
            layers,
        };
        let lf_rep = run_single_device(&lf, &factory, 1, iterations, args.seed);
        let hf_rep = run_single_device(&hf, &factory, 1, iterations, args.seed);
        let config = QoncordConfig {
            exploration_max_iterations: iterations / 2,
            finetune_max_iterations: iterations / 2,
            min_fidelity: 0.0,
            selection: SelectionPolicy::All, // single restart: no triage
            seed: args.seed,
            ..QoncordConfig::default()
        };
        let q = QoncordScheduler::new(config)
            .run(&[lf.clone(), hf.clone()], &factory, 1)
            .expect("devices viable");
        let q_lf = q.devices[0].executions;
        let q_hf = q.devices[1].executions;
        rows.push(vec![
            layers.to_string(),
            fmt(lf_rep.best_approximation_ratio(), 3),
            fmt(hf_rep.best_approximation_ratio(), 3),
            fmt(q.best_approximation_ratio(), 3),
            lf_rep.total_executions().to_string(),
            hf_rep.total_executions().to_string(),
            format!("{} (LF {q_lf} + HF {q_hf})", q.total_executions()),
        ]);
        csv.push(vec![
            layers.to_string(),
            fmt(lf_rep.best_approximation_ratio(), 6),
            fmt(hf_rep.best_approximation_ratio(), 6),
            fmt(q.best_approximation_ratio(), 6),
            lf_rep.total_executions().to_string(),
            hf_rep.total_executions().to_string(),
            q_lf.to_string(),
            q_hf.to_string(),
        ]);
    }
    print_table(
        &[
            "Layers",
            "LF ratio",
            "HF ratio",
            "Qoncord ratio",
            "LF execs",
            "HF execs",
            "Qoncord execs",
        ],
        &rows,
    );
    println!("\n(paper: Qoncord ≈ HF-only quality, >14% above LF-only, with the peak");
    println!(" per-device load reduced because executions split across LF and HF)");
    write_csv(
        "fig19_20_single_restart.csv",
        &[
            "layers",
            "lf_ratio",
            "hf_ratio",
            "qoncord_ratio",
            "lf_execs",
            "hf_execs",
            "qoncord_lf_execs",
            "qoncord_hf_execs",
        ],
        &csv,
    );
}
