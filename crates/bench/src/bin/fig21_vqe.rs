//! Fig. 21 — VQE on the hydrogen molecule (4-qubit UCCSD ansatz): Qoncord
//! matches the HF-only ground-state energy within ~0.3 % with no extra
//! executions beyond the single-device baselines.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_core::cluster::SelectionPolicy;
use qoncord_core::executor::VqeFactory;
use qoncord_core::scheduler::{run_single_device, QoncordConfig, QoncordScheduler};
use qoncord_device::catalog;
use qoncord_vqa::{uccsd, vqe};

fn main() {
    let args = ExperimentArgs::parse();
    let iterations = args.scale(30, 100);
    let restarts = args.restarts(1, 1);
    let hamiltonian = vqe::h2_hamiltonian();
    let ansatz = uccsd::uccsd_h2_ansatz(vqe::h2_hartree_fock_state());
    let factory = VqeFactory {
        hamiltonian: hamiltonian.clone(),
        ansatz,
    };
    let lf = catalog::ibmq_toronto();
    let hf = catalog::ibmq_kolkata();
    let ground = vqe::h2_ground_energy();
    println!(
        "Fig. 21: 4q H2 UCCSD VQE (exact ground energy {:.5} Ha)\n",
        ground
    );
    let lf_rep = run_single_device(&lf, &factory, restarts, iterations, args.seed);
    let hf_rep = run_single_device(&hf, &factory, restarts, iterations, args.seed);
    let config = QoncordConfig {
        exploration_max_iterations: iterations / 2,
        finetune_max_iterations: iterations / 2,
        min_fidelity: 0.0,
        selection: SelectionPolicy::All,
        seed: args.seed,
        ..QoncordConfig::default()
    };
    let q = QoncordScheduler::new(config)
        .run(&[lf, hf], &factory, restarts)
        .expect("devices viable");
    let rows: Vec<Vec<String>> = [("LF only", &lf_rep), ("HF only", &hf_rep), ("Qoncord", &q)]
        .iter()
        .map(|(label, r)| {
            vec![
                label.to_string(),
                fmt(r.best_expectation(), 5),
                fmt(r.best_approximation_ratio(), 4),
                r.total_executions().to_string(),
            ]
        })
        .collect();
    print_table(
        &["Mode", "best energy (Ha)", "approx ratio", "executions"],
        &rows,
    );
    let hf_energy = hf_rep.best_expectation();
    let gap_pct = ((q.best_expectation() - hf_energy) / hf_energy.abs()).abs() * 100.0;
    println!("\nQoncord energy within {gap_pct:.2}% of HF-only (paper: within 0.3%)");
    let device_execs: String = q
        .devices
        .iter()
        .map(|d| format!("{}: {}", d.device, d.executions))
        .collect::<Vec<_>>()
        .join("  ");
    println!("Qoncord per-device executions: {device_execs}");
    write_csv(
        "fig21_vqe.csv",
        &["mode", "best_energy", "approx_ratio", "executions"],
        &rows,
    );
}
