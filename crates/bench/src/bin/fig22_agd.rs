//! Fig. 22 — case study against EQC-style asynchronous gradient descent:
//! one AGD epoch (parameters sharded across devices) needs more circuit
//! executions than synchronous optimization of all parameters and reaches a
//! lower approximation ratio.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_device::catalog;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_vqa::agd::agd_epoch;
use qoncord_vqa::evaluator::{CostEvaluator, QaoaEvaluator};
use qoncord_vqa::optimizer::{Optimizer, Spsa};
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExperimentArgs::parse();
    let iterations = args.scale(20, 60);
    let layers = 3;
    let problem = MaxCut::new(Graph::paper_graph_7());
    let initial = vec![0.8; 2 * layers];
    // Synchronous baseline: all parameters together on the HF device.
    let mut sync_eval = QaoaEvaluator::new(
        &problem,
        layers,
        SimulatedBackend::from_calibration(catalog::ibmq_kolkata()),
        args.seed,
    );
    let mut spsa = Spsa::default();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut params = initial.clone();
    let mut best = f64::INFINITY;
    for _ in 0..iterations {
        let mut objective = |p: &[f64]| sync_eval.evaluate(p).expectation;
        let out = spsa.step(&mut params, &mut objective, &mut rng);
        best = best.min(out.objective);
    }
    let sync_final = sync_eval.evaluate(&params).expectation;
    let sync_execs = sync_eval.executions();
    // One AGD epoch across LF + HF with the same per-block iteration count.
    let mut lf_eval = QaoaEvaluator::new(
        &problem,
        layers,
        SimulatedBackend::from_calibration(catalog::ibmq_toronto()),
        args.seed + 1,
    );
    let mut hf_eval = QaoaEvaluator::new(
        &problem,
        layers,
        SimulatedBackend::from_calibration(catalog::ibmq_kolkata()),
        args.seed + 2,
    );
    let mut evals: Vec<&mut dyn CostEvaluator> = vec![&mut lf_eval, &mut hf_eval];
    let agd = agd_epoch(&mut evals, &initial, iterations, args.seed);
    let agd_execs: u64 = agd.executions_per_device.iter().sum();
    let rows = vec![
        vec![
            "Synchronous (baseline)".to_string(),
            fmt(problem.approximation_ratio(sync_final), 3),
            sync_execs.to_string(),
        ],
        vec![
            "Async (EQC), 1 epoch".to_string(),
            fmt(problem.approximation_ratio(agd.expectation), 3),
            agd_execs.to_string(),
        ],
    ];
    println!("Fig. 22: asynchronous gradient descent vs synchronous optimization\n");
    print_table(&["Mode", "approx ratio", "circuit executions"], &rows);
    println!(
        "\nAGD costs {:.1}x the executions of the synchronous baseline at lower quality",
        agd_execs as f64 / sync_execs.max(1) as f64
    );
    println!("(paper: one AGD epoch exceeds the baseline's executions with a much lower ratio)");
    write_csv(
        "fig22_agd.csv",
        &["mode", "approx_ratio", "executions"],
        &rows,
    );
}
