//! Fleet-scale trajectory for the indexed scheduler core: sweeps tenant
//! count (10² → 10⁵) and fleet size (10 → 10³), measuring admission
//! decisions/sec and dispatches/sec through the indexed
//! [`FairShareQueue`], plus a head-to-head dispatch-throughput comparison
//! against the retained seed implementation
//! ([`ReferenceFairShareQueue`]'s linear scan) at a fixed queue depth.
//!
//! A second section sweeps the *engine's* shard-count axis: a lockstep
//! fleet of twin devices (every lease expires simultaneously, so each
//! virtual-time barrier carries a whole fleet of completions) run at 1, 2,
//! 4, … device-group shards, reporting the wall-clock speedup of the
//! sharded executor over the sequential engine on byte-identical results.
//!
//! Emits `BENCH_fleet_scale.json` in the working directory (the repo root
//! under `cargo run`) alongside the usual CSV + table; CI smoke-runs the
//! quick scale and fails if the JSON is missing its required keys.
//!
//! Run with `--paper` for the full sweep (the committed JSON's scale).

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_cloud::device::hypothetical_fleet;
use qoncord_cloud::fairshare::{FairShareQueue, QueueOpStats, QueuedRequest};
use qoncord_cloud::policy::{estimate_feasibility_decayed, Placement, QueueModel, UsageDecayModel};
use qoncord_cloud::reference::ReferenceFairShareQueue;
use qoncord_core::executor::QaoaFactory;
use qoncord_core::scheduler::QoncordConfig;
use qoncord_device::catalog;
use qoncord_orchestrator::{FleetDevice, Orchestrator, OrchestratorConfig, TenantJob};
use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// One sweep point's measurements.
struct Point {
    tenants: usize,
    devices: usize,
    queued_requests: usize,
    admissions_per_sec: f64,
    dispatches_per_sec: f64,
    makespan: f64,
    /// The queue's own operation counters over the drain — proof the run
    /// stayed on the indexed fast path (`index_rebuilds` tracks decay
    /// epochs, not pops).
    queue_ops: QueueOpStats,
}

fn request(id: usize, tenants: usize, rng: &mut StdRng) -> QueuedRequest {
    QueuedRequest {
        id,
        user: format!("t{}", id % tenants),
        requested_seconds: 0.5 + rng.random::<f64>() * 9.5,
        submitted_at: (id / 4) as f64,
    }
}

/// Loads `n` device-tagged requests over `tenants` tenants with randomized
/// balances, round-robin across `devices`.
fn load_queue(n: usize, tenants: usize, devices: usize, seed: u64) -> FairShareQueue {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = FairShareQueue::new();
    for t in 0..tenants {
        q.record_usage(&format!("t{t}"), rng.random::<f64>() * 1000.0)
            .expect("finite balance");
    }
    for id in 0..n {
        let r = request(id, tenants, &mut rng);
        q.push_for_device(r, id % devices).expect("unique ids");
    }
    q
}

/// Drains a queue via round-robin `pop_for_device`, charging usage per pop
/// and decaying every `n/16` pops — the dispatcher's hot loop in
/// miniature. Returns (elapsed seconds, makespan).
fn drain_indexed(q: &mut FairShareQueue, n: usize, devices: usize) -> (f64, f64) {
    let decay_every = (n / 16).max(1);
    let mut per_device = vec![0.0f64; devices];
    let mut pops = 0usize;
    let started = Instant::now();
    let mut d = 0;
    while !q.is_empty() {
        if let Some(r) = q.pop_for_device(d) {
            q.record_usage(&r.user, r.requested_seconds)
                .expect("finite seconds");
            per_device[d] += r.requested_seconds;
            pops += 1;
            if pops.is_multiple_of(decay_every) {
                q.decay_usage(0.9).expect("valid factor");
            }
        }
        d = (d + 1) % devices;
    }
    let elapsed = started.elapsed().as_secs_f64();
    (elapsed, per_device.iter().cloned().fold(0.0, f64::max))
}

/// The seed dispatcher's equivalent: round-robin `pop_where` linear scans
/// over the reference queue, with the device tags the seed orchestrator
/// kept on the side. Same usage charging and decay cadence.
fn drain_reference(
    q: &mut ReferenceFairShareQueue,
    tags: &HashMap<usize, usize>,
    n: usize,
    devices: usize,
) -> f64 {
    let decay_every = (n / 16).max(1);
    let mut pops = 0usize;
    let started = Instant::now();
    let mut d = 0;
    while !q.is_empty() {
        if let Some(r) = q.pop_where(|r| tags.get(&r.id) == Some(&d)) {
            q.record_usage(&r.user, r.requested_seconds)
                .expect("finite seconds");
            pops += 1;
            if pops.is_multiple_of(decay_every) {
                q.decay_usage(0.9).expect("valid factor");
            }
        }
        d = (d + 1) % devices;
    }
    started.elapsed().as_secs_f64()
}

/// Times `probes` decay-aware admission decisions against a loaded queue.
fn time_admissions(q: &FairShareQueue, tenants: usize, devices: usize, probes: usize) -> f64 {
    let fleet = hypothetical_fleet(devices, 0.3, 0.9);
    let secs = vec![1.0; devices];
    let decay = UsageDecayModel::every(50.0, 0.9);
    let started = Instant::now();
    for k in 0..probes {
        let placements = [Placement {
            device: k % devices,
            circuits: 10,
            quality_weight: 1.0,
        }];
        let probe = QueuedRequest {
            id: usize::MAX,
            user: format!("t{}", (k * 7) % tenants),
            requested_seconds: 8.0,
            submitted_at: 1000.0,
        };
        let est = estimate_feasibility_decayed(
            &placements,
            &fleet,
            &secs,
            0.0,
            QueueModel {
                queue: q,
                probe: &probe,
                probe_credit: (k % 3) as f64 * 10.0,
                decay,
            },
        );
        assert!(est.completion.is_finite());
    }
    started.elapsed().as_secs_f64()
}

fn sweep_point(tenants: usize, devices: usize, seed: u64) -> Point {
    // Two queued requests per tenant keeps queue depth proportional to
    // tenant count without dwarfing the device axis.
    let n = tenants * 2;
    let mut q = load_queue(n, tenants, devices, seed);
    // Admission cost scales with queue depth, so probe counts shrink as
    // the queue grows to keep each point's wall time bounded.
    let probes = (2_000_000 / n).max(20);
    let admission_secs = time_admissions(&q, tenants, devices, probes);
    let (dispatch_secs, makespan) = drain_indexed(&mut q, n, devices);
    Point {
        tenants,
        devices,
        queued_requests: n,
        admissions_per_sec: probes as f64 / admission_secs,
        dispatches_per_sec: n as f64 / dispatch_secs,
        makespan,
        queue_ops: q.stats(),
    }
}

/// Indexed-vs-reference dispatch throughput at a fixed queue depth.
fn reference_comparison(n: usize, devices: usize, seed: u64) -> (usize, usize, f64, f64) {
    let tenants = (n / 4).max(1);
    let mut indexed = load_queue(n, tenants, devices, seed);
    let (indexed_secs, _) = drain_indexed(&mut indexed, n, devices);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut reference = ReferenceFairShareQueue::new();
    let mut tags = HashMap::new();
    for t in 0..tenants {
        reference
            .record_usage(&format!("t{t}"), rng.random::<f64>() * 1000.0)
            .expect("finite balance");
    }
    for id in 0..n {
        let r = request(id, tenants, &mut rng);
        tags.insert(id, id % devices);
        reference.push(r);
    }
    let reference_secs = drain_reference(&mut reference, &tags, n, devices);
    (
        n,
        devices,
        n as f64 / indexed_secs,
        n as f64 / reference_secs,
    )
}

/// One engine run of the shard axis: wall seconds at `shards` device
/// groups, plus the makespan as a cross-run identity check.
struct ShardRun {
    shards: usize,
    wall_seconds: f64,
    makespan: f64,
}

/// A lockstep multi-tenant workload: `tenants` identical `qubits`-qubit
/// QAOA jobs over twin devices. Identical specs on twin hardware keep
/// every device's lease expiring at the same virtual instant, so each
/// barrier hands the sharded executor a whole fleet's worth of
/// simultaneous batch completions — the workload the shard axis is meant
/// to measure (profiled: >99% of the run's wall time is the hoisted
/// `execute_batch` compute).
fn engine_jobs(tenants: usize, qubits: usize) -> Vec<TenantJob> {
    let edges: Vec<(usize, usize, f64)> = (0..qubits).map(|i| (i, (i + 1) % qubits, 1.0)).collect();
    (0..tenants)
        .map(|i| {
            let factory = QaoaFactory {
                problem: MaxCut::new(Graph::new(qubits, &edges)),
                layers: 1,
            };
            let cfg = QoncordConfig {
                exploration_max_iterations: 4,
                finetune_max_iterations: 3,
                // The wide ring sits below the default fidelity floor on
                // the twin calibration; this bench measures executor
                // wall-clock, not result quality, so admit it anyway.
                min_fidelity: 0.0,
                seed: 0x5CA1E + i as u64,
                ..QoncordConfig::default()
            };
            TenantJob::new(i, format!("tenant-{i}"), 0.0, Box::new(factory))
                .with_restarts(1)
                .with_config(cfg)
        })
        .collect()
}

fn twin_fleet(devices: usize) -> Vec<FleetDevice> {
    (0..devices)
        .map(|i| FleetDevice::new(catalog::ibmq_toronto().renamed(format!("twin_{i}"))))
        .collect()
}

/// Times the lockstep workload once per shard count (first entry is the
/// sequential baseline) and asserts the runs agree on the makespan — the
/// cheap facet of the bit-identity the `sharded_engine` suite proves in
/// full. Wall-clock speedup is bounded by `min(shards, host cores)`: on a
/// single-core host the column reads ~1.0 even though the barrier compute
/// has been hoisted onto the worker pool (the determinism assertions still
/// exercise the full sharded path).
fn engine_sharding(
    tenants: usize,
    devices: usize,
    qubits: usize,
    shard_axis: &[usize],
) -> Vec<ShardRun> {
    let jobs = engine_jobs(tenants, qubits);
    let mut runs: Vec<ShardRun> = Vec::new();
    for &shards in shard_axis {
        let orchestrator = Orchestrator::new(
            OrchestratorConfig {
                shards,
                ..OrchestratorConfig::default()
            },
            twin_fleet(devices),
        );
        let started = Instant::now();
        let report = orchestrator.run(&jobs);
        let wall_seconds = started.elapsed().as_secs_f64();
        assert_eq!(report.completed(), tenants, "every lockstep job completes");
        if let Some(first) = runs.first() {
            assert_eq!(
                report.fleet.makespan.to_bits(),
                first.makespan.to_bits(),
                "shard count must not change results"
            );
        }
        runs.push(ShardRun {
            shards,
            wall_seconds,
            makespan: report.fleet.makespan,
        });
    }
    runs
}

fn main() {
    let args = ExperimentArgs::parse();
    let tenant_axis: &[usize] = if args.paper {
        &[100, 1_000, 10_000, 100_000]
    } else {
        &[100, 1_000]
    };
    let device_axis: &[usize] = if args.paper {
        &[10, 100, 1_000]
    } else {
        &[10, 100]
    };

    let mut points = Vec::new();
    for &tenants in tenant_axis {
        for &devices in device_axis {
            points.push(sweep_point(tenants, devices, args.seed));
        }
    }

    let cmp_n = args.scale(2_000, 10_000);
    let cmp_devices = args.scale(10, 100);
    let (cmp_requests, cmp_devs, indexed_rate, reference_rate) =
        reference_comparison(cmp_n, cmp_devices, args.seed);
    let speedup = indexed_rate / reference_rate;

    let engine_tenants = args.scale(8, 16);
    let engine_devices = args.scale(4, 8);
    let engine_qubits = args.scale(10, 12);
    let shard_axis: &[usize] = if args.paper {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4]
    };
    let shard_runs = engine_sharding(engine_tenants, engine_devices, engine_qubits, shard_axis);
    let engine_baseline = shard_runs[0].wall_seconds;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let headers = [
        "tenants",
        "devices",
        "queued",
        "admissions/s",
        "dispatches/s",
        "makespan",
        "rebuilds",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.tenants.to_string(),
                p.devices.to_string(),
                p.queued_requests.to_string(),
                fmt(p.admissions_per_sec, 0),
                fmt(p.dispatches_per_sec, 0),
                fmt(p.makespan, 1),
                p.queue_ops.index_rebuilds.to_string(),
            ]
        })
        .collect();
    print_table(&headers, &rows);
    println!(
        "\nreference comparison @ {cmp_requests} requests / {cmp_devs} devices: \
         indexed {indexed_rate:.0}/s vs reference {reference_rate:.0}/s \
         ({speedup:.1}x)"
    );
    write_csv("fleet_scale.csv", &headers, &rows);

    println!(
        "\nengine shard axis @ {engine_tenants} tenants / {engine_devices} twin devices, \
         {engine_qubits}-qubit jobs (lockstep barriers; speedup bounded by \
         min(shards, {host_cpus} host cores)):"
    );
    let shard_headers = ["shards", "wall s", "speedup"];
    let shard_rows: Vec<Vec<String>> = shard_runs
        .iter()
        .map(|r| {
            vec![
                r.shards.to_string(),
                fmt(r.wall_seconds, 3),
                fmt(engine_baseline / r.wall_seconds, 2),
            ]
        })
        .collect();
    print_table(&shard_headers, &shard_rows);

    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"fleet_scale\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if args.paper { "paper" } else { "quick" }
    ));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let ops = &p.queue_ops;
        json.push_str(&format!(
            "    {{\"tenants\": {}, \"devices\": {}, \"queued_requests\": {}, \
             \"admissions_per_sec\": {:.1}, \"dispatches_per_sec\": {:.1}, \
             \"makespan\": {:.2}, \
             \"queue_ops\": {{\"pushes\": {}, \"pops\": {}, \"cancels\": {}, \
             \"index_rebuilds\": {}, \"backlog_refreshes\": {}}}}}{}\n",
            p.tenants,
            p.devices,
            p.queued_requests,
            p.admissions_per_sec,
            p.dispatches_per_sec,
            p.makespan,
            ops.pushes,
            ops.pops,
            ops.cancels,
            ops.index_rebuilds,
            ops.backlog_refreshes,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"reference_comparison\": {{\"queued_requests\": {cmp_requests}, \
         \"devices\": {cmp_devs}, \"indexed_dispatches_per_sec\": {indexed_rate:.1}, \
         \"reference_dispatches_per_sec\": {reference_rate:.1}, \
         \"dispatch_speedup\": {speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"engine_sharding\": {{\"tenants\": {engine_tenants}, \
         \"devices\": {engine_devices}, \"qubits\": {engine_qubits}, \
         \"host_cpus\": {host_cpus}, \"runs\": [\n"
    ));
    for (i, r) in shard_runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"wall_seconds\": {:.4}, \"speedup\": {:.2}}}{}\n",
            r.shards,
            r.wall_seconds,
            engine_baseline / r.wall_seconds,
            if i + 1 < shard_runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]}\n");
    json.push_str("}\n");
    qoncord_bench::require_keys(
        &json,
        &[
            "experiment",
            "mode",
            "seed",
            "sweep",
            "tenants",
            "devices",
            "queued_requests",
            "admissions_per_sec",
            "dispatches_per_sec",
            "makespan",
            "queue_ops",
            "pushes",
            "pops",
            "cancels",
            "index_rebuilds",
            "backlog_refreshes",
            "reference_comparison",
            "dispatch_speedup",
            "engine_sharding",
            "host_cpus",
            "shards",
            "wall_seconds",
            "speedup",
        ],
    )
    .expect("BENCH_fleet_scale.json schema");
    std::fs::write("BENCH_fleet_scale.json", json).expect("write BENCH_fleet_scale.json");
    println!("wrote BENCH_fleet_scale.json");
}
