//! Headline claims — "similar solutions 17.4× faster" and "13.3% better
//! solutions for the same time budget" (abstract / Sec. VI).
//!
//! Both claims are cloud-level: the speedup comes from escaping the
//! high-fidelity device's queue, measured here as the mean VQA-job
//! turnaround under Best Fidelity vs Qoncord on the Fig. 12 fleet, and the
//! quality gain is Qoncord's mean relative fidelity vs the fastest
//! same-budget baseline (Least Busy).

use qoncord_bench::{fmt, print_table, ExperimentArgs};
use qoncord_cloud::device::hypothetical_fleet;
use qoncord_cloud::policy::Policy;
use qoncord_cloud::sim::simulate;
use qoncord_cloud::workload::{generate_workload, WorkloadConfig};

fn main() {
    let args = ExperimentArgs::parse();
    let n_jobs = args.scale(400, 1000);
    let fleet = hypothetical_fleet(10, 0.3, 0.9);
    let jobs = generate_workload(&WorkloadConfig {
        n_jobs,
        vqa_ratio: 0.7,
        seed: args.seed,
        ..WorkloadConfig::default()
    });
    let bf = simulate(Policy::BestFidelity, &jobs, &fleet, args.seed);
    let lb = simulate(Policy::LeastBusy, &jobs, &fleet, args.seed);
    let q = simulate(Policy::Qoncord, &jobs, &fleet, args.seed);
    // Time-to-similar-quality: mean turnaround of VQA jobs, Best Fidelity
    // (the quality-matched baseline) vs Qoncord.
    let vqa_turnaround = |r: &qoncord_cloud::sim::SimulationResult| -> f64 {
        let pairs: Vec<f64> = r
            .outcomes
            .iter()
            .zip(&jobs)
            .filter(|(_, j)| j.is_vqa)
            .map(|(o, j)| o.turnaround(j))
            .collect();
        pairs.iter().sum::<f64>() / pairs.len() as f64
    };
    let speedup = vqa_turnaround(&bf) / vqa_turnaround(&q);
    // Quality-at-budget: Qoncord vs the fastest baseline at the same budget.
    let quality_gain =
        (q.mean_relative_fidelity(0.9) / lb.mean_relative_fidelity(0.9) - 1.0) * 100.0;
    let rows = vec![
        vec![
            "Best Fidelity".to_string(),
            fmt(vqa_turnaround(&bf), 1),
            fmt(bf.mean_relative_fidelity(0.9), 3),
        ],
        vec![
            "Least Busy".to_string(),
            fmt(vqa_turnaround(&lb), 1),
            fmt(lb.mean_relative_fidelity(0.9), 3),
        ],
        vec![
            "Qoncord".to_string(),
            fmt(vqa_turnaround(&q), 1),
            fmt(q.mean_relative_fidelity(0.9), 3),
        ],
    ];
    println!("Headline claims ({n_jobs} jobs, VQA ratio 0.7)\n");
    print_table(
        &["Policy", "mean VQA turnaround (s)", "mean rel. fidelity"],
        &rows,
    );
    println!("\ntime-to-similar-quality speedup vs Best Fidelity: {speedup:.1}x (paper: 17.4x)");
    println!("quality gain vs same-budget Least Busy: {quality_gain:.1}% (paper: 13.3%)");
}
