//! Wall-clock cost attribution of the hot kernels, measured through the
//! [`qoncord_prof`] span profiler rather than criterion: each sweep point
//! (qubit count × circuit depth) drives the statevector gate kernels, a
//! ring-Hamiltonian Pauli expectation, QAOA transpilation, and a
//! fair-share queue churn under a fresh profiler, then pools the retained
//! span durations across repetitions with [`LogHistogram::merge`].
//!
//! Emits `BENCH_kernels.json` in the working directory (the repo root
//! under `cargo run`) alongside the usual CSV + table; the binary
//! self-checks the JSON's schema through [`qoncord_bench::require_keys`]
//! before writing, and CI re-checks the committed copy the same way.
//!
//! Run with `--paper` for the full sweep (the committed JSON's scale).

use qoncord_bench::{fmt, print_table, require_keys, write_csv, ExperimentArgs};
use qoncord_circuit::coupling::CouplingMap;
use qoncord_circuit::transpile::transpile;
use qoncord_cloud::fairshare::{FairShareQueue, QueuedRequest};
use qoncord_device::catalog;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_orchestrator::LogHistogram;
use qoncord_prof::Profiler;
use qoncord_sim::dist::ProbDist;
use qoncord_sim::gates;
use qoncord_sim::reference::ScopedReference;
use qoncord_sim::statevector::StateVector;
use qoncord_vqa::evaluator::{CostEvaluator, QaoaEvaluator};
use qoncord_vqa::graph::Graph;
use qoncord_vqa::maxcut::MaxCut;
use qoncord_vqa::pauli::{PauliString, PauliSum};
use qoncord_vqa::qaoa;
use std::time::Instant;

/// The kernel buckets a span label attributes to, by label prefix.
const BUCKETS: [(&str, &str); 4] = [
    ("statevector_apply", "sim::sv::"),
    ("pauli_expectation", "vqa::pauli::"),
    ("transpile", "circuit::"),
    ("queue_ops", "fairshare::"),
];

/// Pooled per-bucket measurements of one sweep point: a histogram of every
/// retained span's duration (nested spans each contribute a sample) and
/// the exact self-time total from the aggregated entries (no double
/// counting — a `circuit::transpile` span's time excludes its
/// `circuit::decompose` child).
struct Bucket {
    durations: LogHistogram,
    self_ns: u64,
}

/// A ring graph on `n` nodes, the sweep's stand-in for a QAOA instance.
fn ring_graph(n: usize) -> Graph {
    let edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
    Graph::new(n, &edges)
}

/// The ring graph's MaxCut-style observable: one ZZ term per edge.
fn ring_zz(n: usize) -> PauliSum {
    let terms: Vec<(f64, PauliString)> = (0..n)
        .map(|i| {
            let mut label = vec![b'I'; n];
            label[i] = b'Z';
            label[(i + 1) % n] = b'Z';
            let s = String::from_utf8(label).expect("ascii label");
            (1.0, PauliString::parse(&s).expect("valid label"))
        })
        .collect();
    PauliSum::new(terms)
}

/// One repetition of the profiled workload at a sweep point. Every kernel
/// below carries its own [`qoncord_prof::span`] instrumentation; this
/// function just exercises them under the installed profiler.
fn workload(qubits: usize, depth: usize) {
    // Statevector kernels: H / RZ / CX-chain layers.
    let h = gates::h();
    let mut sv = StateVector::zero_state(qubits);
    for layer in 0..depth {
        for q in 0..qubits {
            sv.apply_1q(&h, q);
            sv.apply_rz_fast(0.3 + layer as f64 * 0.01, q);
        }
        for q in 0..qubits - 1 {
            sv.apply_cx_fast(q, q + 1);
        }
    }

    // Pauli expectation sweep over the resulting distribution (every ZZ
    // term is diagonal, so the measured distribution is usable directly).
    let obs = ring_zz(qubits);
    let dist = ProbDist::new(sv.probabilities());
    let mut acc = 0.0f64;
    for _ in 0..depth {
        acc += obs
            .terms()
            .iter()
            .map(|(c, p)| c * p.expectation_from_dist(&dist))
            .sum::<f64>();
        acc += obs.qubit_wise_commuting_groups().len() as f64;
    }
    assert!(acc.is_finite());

    // Transpilation of a depth-layer QAOA circuit onto real topology.
    let circuit = qaoa::build_circuit(&ring_graph(qubits), depth.min(8));
    let transpiled = transpile(&circuit, &CouplingMap::falcon_27());
    assert!(!transpiled.circuit.gates().is_empty());

    // Fair-share queue churn: push then drain, with usage charging.
    let mut q = FairShareQueue::new();
    for t in 0..qubits {
        q.record_usage(&format!("t{t}"), (t * 37 % 100) as f64)
            .expect("finite balance");
    }
    let n_requests = 16 * depth;
    for id in 0..n_requests {
        q.push(QueuedRequest {
            id,
            user: format!("t{}", id % qubits),
            requested_seconds: 0.5 + (id * 7 % 100) as f64 * 0.1,
            submitted_at: (id / 4) as f64,
        })
        .expect("unique ids");
    }
    while let Some(r) = q.pop() {
        q.record_usage(&r.user, r.requested_seconds)
            .expect("finite seconds");
    }
}

/// Runs one repetition under a fresh profiler and folds its spans into the
/// point's pooled buckets.
fn profile_once(qubits: usize, depth: usize, buckets: &mut [(&'static str, Bucket)]) {
    let profiler = Profiler::new();
    {
        let _installed = profiler.install();
        workload(qubits, depth);
    }
    let perf = profiler.report();
    assert_eq!(perf.dropped_spans, 0, "sweep stays under the retention cap");
    // Per-repetition histograms, pooled into the point via merge — the
    // merge path is exactly what this binary exists to exercise.
    let mut rep: Vec<LogHistogram> = buckets.iter().map(|_| LogHistogram::new()).collect();
    for span in &perf.spans {
        let label = perf.entries[span.entry].label();
        if let Some(i) = BUCKETS.iter().position(|(_, p)| label.starts_with(p)) {
            rep[i].record(span.dur_ns as f64 * 1e-9);
        }
    }
    for ((_, bucket), hist) in buckets.iter_mut().zip(&rep) {
        bucket.durations.merge(hist);
    }
    for entry in &perf.entries {
        if let Some(i) = BUCKETS
            .iter()
            .position(|(_, p)| entry.label().starts_with(p))
        {
            buckets[i].1.self_ns += entry.self_ns();
        }
    }
}

/// Median of the per-round timings — robust against the scheduler-noise
/// outliers that a mean over few rounds would absorb.
fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    v[v.len() / 2]
}

/// The fast-vs-reference axis (ROADMAP item 5): wall-clock of a complete
/// 14-qubit QAOA evaluation — the transpiled-circuit statevector
/// simulation plus Hamiltonian expectation behind
/// [`QaoaEvaluator::evaluate`] — on the default fast kernels (gate fusion
/// with monomial classification, dedicated CX/RZ kernels, batched Pauli
/// sweeps) against the preserved scalar seed kernels in
/// [`qoncord_sim::reference`] (generic per-gate matrix sweeps, one masked
/// pass per Pauli term). The two paths are timed in interleaved rounds and
/// summarised by their medians so slow-machine drift hits both equally,
/// and are cross-checked to agree on the energy before the timings are
/// trusted.
fn fast_vs_reference(evals: usize) -> (String, f64) {
    const QUBITS: usize = 14;
    const LAYERS: usize = 2;
    let problem = MaxCut::new(ring_graph(QUBITS));
    let backend = SimulatedBackend::ideal(catalog::ibmq_kolkata());
    let mut eval = QaoaEvaluator::new(&problem, LAYERS, backend, 0);
    let params: Vec<f64> = (0..eval.n_params())
        .map(|i| 0.35 + 0.1 * i as f64)
        .collect();

    // Warm both paths outside the timed window and cross-check the energy.
    let energy_fast = eval.evaluate(&params).expectation;
    let energy_reference = {
        let _seed = ScopedReference::new();
        eval.evaluate(&params).expectation
    };
    let max_abs_diff = (energy_reference - energy_fast).abs();
    assert!(
        max_abs_diff < 1e-9,
        "fast and reference energies diverged by {max_abs_diff}"
    );

    let mut fast_t = Vec::with_capacity(evals);
    let mut ref_t = Vec::with_capacity(evals);
    for _ in 0..evals {
        let t0 = Instant::now();
        eval.evaluate(&params);
        fast_t.push(t0.elapsed().as_secs_f64());
        let _seed = ScopedReference::new();
        let t0 = Instant::now();
        eval.evaluate(&params);
        ref_t.push(t0.elapsed().as_secs_f64());
    }
    let fast_s = median(fast_t);
    let reference_s = median(ref_t);

    let speedup = reference_s / fast_s.max(1e-12);
    let json = format!(
        "  \"fast_vs_reference\": {{\"qubits\": {QUBITS}, \"layers\": {LAYERS}, \
         \"evals\": {evals}, \"reference_ms\": {:.3}, \"fast_ms\": {:.3}, \
         \"speedup\": {:.2}, \"max_abs_diff\": {:.3e}}}",
        reference_s * 1e3,
        fast_s * 1e3,
        speedup,
        max_abs_diff,
    );
    (json, speedup)
}

fn main() {
    let args = ExperimentArgs::parse();
    let qubit_counts: &[usize] = if args.paper {
        &[4, 8, 12, 14]
    } else {
        &[4, 8, 12]
    };
    let depths: &[usize] = if args.paper { &[4, 16, 32] } else { &[4, 16] };
    let reps = args.scale(3, 10);

    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    for &qubits in qubit_counts {
        for &depth in depths {
            let mut buckets: Vec<(&'static str, Bucket)> = BUCKETS
                .iter()
                .map(|(name, _)| {
                    (
                        *name,
                        Bucket {
                            durations: LogHistogram::new(),
                            self_ns: 0,
                        },
                    )
                })
                .collect();
            for _ in 0..reps {
                profile_once(qubits, depth, &mut buckets);
            }
            let us = 1e6;
            rows.push(vec![
                qubits.to_string(),
                depth.to_string(),
                fmt(buckets[0].1.self_ns as f64 / 1e6, 2),
                fmt(buckets[1].1.self_ns as f64 / 1e6, 2),
                fmt(buckets[2].1.self_ns as f64 / 1e6, 2),
                fmt(buckets[3].1.self_ns as f64 / 1e6, 2),
            ]);
            let fields: Vec<String> = buckets
                .iter()
                .map(|(name, b)| {
                    format!(
                        "\"{name}\": {{\"spans\": {}, \"total_ms\": {:.4}, \
                         \"mean_us\": {:.3}, \"p50_us\": {:.3}, \"p90_us\": {:.3}, \
                         \"max_us\": {:.3}}}",
                        b.durations.count(),
                        b.self_ns as f64 / 1e6,
                        b.durations.mean() * us,
                        b.durations.quantile(0.5).unwrap_or(0.0) * us,
                        b.durations.quantile(0.9).unwrap_or(0.0) * us,
                        b.durations.max().unwrap_or(0.0) * us,
                    )
                })
                .collect();
            sweep_json.push(format!(
                "    {{\"qubits\": {qubits}, \"depth\": {depth}, {}}}",
                fields.join(", ")
            ));
        }
    }

    println!("Wall-clock kernel attribution ({reps} repetitions per point, self-time)\n");
    print_table(
        &[
            "qubits",
            "depth",
            "statevector (ms)",
            "pauli (ms)",
            "transpile (ms)",
            "queue (ms)",
        ],
        &rows,
    );
    write_csv(
        "kernel_profile.csv",
        &[
            "qubits",
            "depth",
            "statevector_ms",
            "pauli_ms",
            "transpile_ms",
            "queue_ms",
        ],
        &rows,
    );

    let (fvr_json, speedup) = fast_vs_reference(args.scale(3, 9));
    println!("\n14-qubit QAOA evaluation, fast vs reference kernels: {speedup:.2}x");

    let json = format!(
        "{{\n  \"experiment\": \"kernel_profile\",\n  \"mode\": \"{}\",\n  \
         \"seed\": {},\n  \"repetitions\": {},\n{fvr_json},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        if args.paper { "paper" } else { "quick" },
        args.seed,
        reps,
        sweep_json.join(",\n"),
    );
    require_keys(
        &json,
        &[
            "experiment",
            "mode",
            "seed",
            "repetitions",
            "fast_vs_reference",
            "reference_ms",
            "fast_ms",
            "speedup",
            "max_abs_diff",
            "evals",
            "layers",
            "sweep",
            "qubits",
            "depth",
            "statevector_apply",
            "pauli_expectation",
            "transpile",
            "queue_ops",
            "spans",
            "total_ms",
            "mean_us",
            "p50_us",
            "p90_us",
            "max_us",
        ],
    )
    .expect("BENCH_kernels.json schema");
    std::fs::write("BENCH_kernels.json", json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
