//! Multi-tenant orchestration sweep: 1→32 concurrent tenants running real
//! QAOA training jobs on the shared 2-LF/1-HF fleet, Qoncord phase-split
//! placement vs. the HF-only (Best Fidelity) baseline. Reports fleet
//! makespan, speedup over back-to-back execution, mean wait, utilization,
//! and lease cost — the paper's headline dynamics (cheaper and faster than
//! queue-bound HF execution) with live jobs instead of abstract durations.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_cloud::policy::Policy;
use qoncord_core::executor::QaoaFactory;
use qoncord_core::scheduler::QoncordConfig;
use qoncord_orchestrator::{two_lf_one_hf_fleet, Orchestrator, OrchestratorConfig, TenantJob};
use qoncord_vqa::graph::Graph;
use qoncord_vqa::maxcut::MaxCut;

fn main() {
    let args = ExperimentArgs::parse();
    let tenant_counts: &[usize] = if args.paper {
        &[1, 2, 4, 8, 16, 32]
    } else {
        &[1, 2, 4, 8]
    };
    let restarts = args.restarts(3, 6);
    let training = |seed: u64| QoncordConfig {
        exploration_max_iterations: args.scale(10, 25),
        finetune_max_iterations: args.scale(12, 35),
        seed,
        ..QoncordConfig::default()
    };
    let jobs = |n: usize| -> Vec<TenantJob> {
        (0..n)
            .map(|i| {
                let factory = QaoaFactory {
                    problem: MaxCut::new(Graph::paper_graph_7()),
                    layers: 1,
                };
                // Staggered arrivals, distinct seeds per tenant.
                TenantJob::new(i, format!("tenant-{i}"), i as f64 * 2.0, Box::new(factory))
                    .with_restarts(restarts)
                    .with_config(training(args.seed ^ (i as u64).wrapping_mul(0x5DEE_CE66)))
            })
            .collect()
    };

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in tenant_counts {
        for policy in [Policy::Qoncord, Policy::BestFidelity] {
            let orchestrator = Orchestrator::new(
                OrchestratorConfig {
                    policy,
                    ..OrchestratorConfig::default()
                },
                two_lf_one_hf_fleet(),
            );
            let report = orchestrator.run(&jobs(n));
            assert_eq!(report.completed(), n, "every tenant must complete");
            let makespan = report.makespan();
            let sequential = report.sequential_makespan();
            let speedup = report.speedup_vs_sequential();
            let wait = report.mean_wait();
            let util = report.fleet.mean_utilization();
            let cost = report.total_cost();
            rows.push(vec![
                policy.label().to_string(),
                n.to_string(),
                fmt(makespan, 1),
                fmt(speedup, 2),
                fmt(wait, 1),
                fmt(util, 2),
                fmt(cost, 0),
            ]);
            csv.push(vec![
                policy.label().to_string(),
                n.to_string(),
                fmt(makespan, 4),
                fmt(sequential, 4),
                fmt(speedup, 4),
                fmt(wait, 4),
                fmt(util, 4),
                fmt(cost, 4),
            ]);
        }
    }
    println!(
        "Multi-tenant orchestration: {restarts} restarts/job on the 2-LF/1-HF fleet (virtual seconds)\n"
    );
    print_table(
        &[
            "Policy",
            "tenants",
            "makespan (s)",
            "speedup vs serial",
            "mean wait (s)",
            "mean util",
            "cost",
        ],
        &rows,
    );
    println!("\n(Qoncord rows should show lower cost than Best Fidelity and speedup > 1 once tenants share the fleet)");
    write_csv(
        "multi_tenant.csv",
        &[
            "policy",
            "tenants",
            "makespan",
            "sequential_makespan",
            "speedup",
            "mean_wait",
            "mean_utilization",
            "cost",
        ],
        &csv,
    );
}
