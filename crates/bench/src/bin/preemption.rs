//! Preemptive-lease sweep: replay the paper's Sec. V-F workload trace
//! through the orchestrator (via `qoncord_orchestrator::replay`) and compare
//! three engines on the same arrivals — non-preemptive fair-share, lease
//! preemption, and preemption plus deadline-Reject admission control.
//! Reports the latency-sensitive (interactive) jobs' mean wait, SLA
//! attainment, eviction counts, and wasted-work seconds: the QoS story
//! lease preemption buys on top of PR 2's fair-share queue.
//!
//! Alongside the CSV it emits `BENCH_preemption.json` with each engine's
//! flight-recorder aggregates (wait/turnaround histogram quantiles and
//! event counts from [`OrchestratorReport::trace`]); CI smoke-runs the
//! quick scale and validates the JSON keys.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_cloud::workload::{generate_workload, WorkloadConfig};
use qoncord_core::executor::QaoaFactory;
use qoncord_core::scheduler::QoncordConfig;
use qoncord_orchestrator::{
    replay_workload, two_lf_one_hf_fleet, AdmissionConfig, AdmissionMode, Orchestrator,
    OrchestratorConfig, OrchestratorReport, PreemptionConfig, ReplayConfig,
};
use qoncord_vqa::graph::Graph;
use qoncord_vqa::maxcut::MaxCut;

fn engine_config(label: &str) -> OrchestratorConfig {
    let mut config = OrchestratorConfig::default();
    match label {
        "FairShare" => {}
        "Preemptive" => config.preemption = PreemptionConfig::enabled(),
        "Preemptive+Admission" => {
            config.preemption = PreemptionConfig::enabled();
            config.admission = AdmissionConfig::with_mode(AdmissionMode::Reject);
        }
        other => unreachable!("unknown engine {other}"),
    }
    config
}

/// Mean wait of the completed jobs matching `interactive`.
fn mean_wait_of(report: &OrchestratorReport, interactive: bool) -> f64 {
    let waits: Vec<f64> = report
        .jobs
        .iter()
        .filter(|j| (j.priority > 0) == interactive)
        .filter_map(|j| j.telemetry.wait_time())
        .collect();
    if waits.is_empty() {
        return 0.0;
    }
    waits.iter().sum::<f64>() / waits.len() as f64
}

/// Folded into the trace seed so the default `--seed` produces a balanced
/// interactive/session mix at the quick scale.
const TRACE_SALT: u64 = 0xC0C7;

fn main() {
    let args = ExperimentArgs::parse();
    let n_jobs = args.scale(10, 40);
    let specs = generate_workload(&WorkloadConfig {
        n_jobs,
        vqa_ratio: 0.6,
        // Compress arrivals so the replayed jobs genuinely contend: the
        // real training batches are fractions of a second on the reference
        // fleet.
        mean_interarrival: 0.4,
        seed: args.seed ^ TRACE_SALT,
        ..WorkloadConfig::default()
    });
    let replay = ReplayConfig {
        tenants: 4,
        training: QoncordConfig {
            exploration_max_iterations: args.scale(8, 20),
            finetune_max_iterations: args.scale(10, 30),
            seed: args.seed,
            ..QoncordConfig::default()
        },
        session_restarts: args.restarts(2, 4),
        interactive_priority: 2,
        deadline_free_stride: None,
    };

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut engine_json = Vec::new();
    for engine in ["FairShare", "Preemptive", "Preemptive+Admission"] {
        let jobs = replay_workload(&specs, &replay, |_| {
            Box::new(QaoaFactory {
                problem: MaxCut::new(Graph::paper_graph_7()),
                layers: 1,
            })
        });
        let orchestrator = Orchestrator::new(engine_config(engine), two_lf_one_hf_fleet());
        let report = orchestrator.run(&jobs);
        assert_eq!(
            report.completed() + report.denied(),
            jobs.len(),
            "every job completes or is denied"
        );
        let interactive_wait = mean_wait_of(&report, true);
        let batch_wait = mean_wait_of(&report, false);
        let sla = report.sla_attainment().unwrap_or(1.0);
        rows.push(vec![
            engine.to_string(),
            fmt(report.makespan(), 1),
            fmt(interactive_wait, 3),
            fmt(batch_wait, 3),
            fmt(sla, 2),
            report.denied().to_string(),
            report.total_evictions().to_string(),
            fmt(report.total_wasted_seconds(), 3),
        ]);
        csv.push(vec![
            engine.to_string(),
            fmt(report.makespan(), 4),
            fmt(interactive_wait, 4),
            fmt(batch_wait, 4),
            fmt(sla, 4),
            report.denied().to_string(),
            report.total_evictions().to_string(),
            fmt(report.total_wasted_seconds(), 4),
        ]);
        let trace = &report.trace;
        let hist = |h: &qoncord_orchestrator::LogHistogram| {
            format!(
                "{{\"count\": {}, \"mean\": {:.4}, \"p50\": {:.4}, \"p90\": {:.4}, \"max\": {:.4}}}",
                h.count(),
                h.mean(),
                h.quantile(0.5).unwrap_or(0.0),
                h.quantile(0.9).unwrap_or(0.0),
                h.max().unwrap_or(0.0)
            )
        };
        engine_json.push(format!(
            "    {{\"engine\": \"{engine}\", \"makespan\": {:.4}, \
             \"wait\": {}, \"turnaround\": {}, \
             \"events\": {{\"total\": {}, \"lease_grants\": {}, \
             \"lease_completions\": {}, \"evictions\": {}, \
             \"admission_verdicts\": {}, \"calibration_updates\": {}}}}}",
            report.makespan(),
            hist(&trace.wait),
            hist(&trace.turnaround),
            trace.events.total(),
            trace.events.lease_grants,
            trace.events.lease_completions,
            trace.events.evictions,
            trace.events.admission_verdicts,
            trace.events.calibration_updates,
        ));
    }
    println!(
        "Preemptive leases on a replayed {n_jobs}-job trace ({} interactive / {} sessions, virtual seconds)\n",
        specs.iter().filter(|s| !s.is_vqa).count(),
        specs.iter().filter(|s| s.is_vqa).count(),
    );
    print_table(
        &[
            "Engine",
            "makespan (s)",
            "wait: interactive",
            "wait: batch",
            "SLA attainment",
            "denied",
            "evictions",
            "wasted (s)",
        ],
        &rows,
    );
    println!("\n(Preemptive rows should cut the interactive wait and raise SLA attainment; admission trades denials for kept promises)");
    write_csv(
        "preemption.csv",
        &[
            "engine",
            "makespan",
            "interactive_wait",
            "batch_wait",
            "sla_attainment",
            "denied",
            "evictions",
            "wasted_seconds",
        ],
        &csv,
    );

    let json = format!(
        "{{\n  \"experiment\": \"preemption\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n  \"n_jobs\": {},\n  \"engines\": [\n{}\n  ]\n}}\n",
        if args.paper { "paper" } else { "quick" },
        args.seed,
        n_jobs,
        engine_json.join(",\n"),
    );
    qoncord_bench::require_keys(
        &json,
        &[
            "experiment",
            "mode",
            "seed",
            "n_jobs",
            "engines",
            "engine",
            "makespan",
            "wait",
            "turnaround",
            "count",
            "mean",
            "p50",
            "p90",
            "max",
            "events",
            "lease_grants",
            "lease_completions",
            "evictions",
            "admission_verdicts",
            "calibration_updates",
        ],
    )
    .expect("BENCH_preemption.json schema");
    std::fs::write("BENCH_preemption.json", json).expect("write BENCH_preemption.json");
    println!("wrote BENCH_preemption.json");
}
