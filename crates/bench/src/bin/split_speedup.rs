//! Restart-splitting sweep: run the same restart-heavy multi-tenant trace
//! through the orchestrator with QuSplit-style splitting off and on (and on
//! with preemption), over the twin fleet (two LF twins, two HF twins).
//! Reports fleet makespan, speedup over back-to-back execution, mean wait,
//! mean utilization, and the fan-out the live-load planner actually chose —
//! the throughput story splitting buys while every restart's energy and
//! parameters stay bit-identical to the unsplit run.

use qoncord_bench::{fmt, print_table, write_csv, ExperimentArgs};
use qoncord_core::executor::QaoaFactory;
use qoncord_core::scheduler::QoncordConfig;
use qoncord_core::SelectionPolicy;
use qoncord_orchestrator::{
    two_lf_two_hf_fleet, Orchestrator, OrchestratorConfig, OrchestratorReport, PreemptionConfig,
    SplitConfig, TenantJob,
};
use qoncord_vqa::graph::Graph;
use qoncord_vqa::maxcut::MaxCut;

fn engine_config(label: &str) -> OrchestratorConfig {
    let mut config = OrchestratorConfig::default();
    match label {
        "Unsplit" => {}
        "Split" => config.split = SplitConfig::enabled(),
        "Split+Preemption" => {
            config.split = SplitConfig::enabled();
            config.preemption = PreemptionConfig::enabled();
        }
        other => unreachable!("unknown engine {other}"),
    }
    config
}

fn jobs(args: &ExperimentArgs, gap: f64) -> Vec<TenantJob> {
    let n_jobs = args.scale(6, 16);
    (0..n_jobs)
        .map(|i| {
            let factory = QaoaFactory {
                problem: MaxCut::new(Graph::paper_graph_7()),
                layers: 1,
            };
            let cfg = QoncordConfig {
                exploration_max_iterations: args.scale(8, 25),
                finetune_max_iterations: args.scale(6, 20),
                selection: SelectionPolicy::TopK(2),
                seed: args.seed ^ (i as u64) << 3,
                ..QoncordConfig::default()
            };
            TenantJob::new(
                i,
                format!("tenant-{}", i % 4),
                i as f64 * gap,
                Box::new(factory),
            )
            .with_restarts(args.restarts(6, 12))
            .with_config(cfg)
            .with_priority((i % 3 == 0) as u32 * 2)
        })
        .collect()
}

fn mean_fanout(report: &OrchestratorReport) -> f64 {
    let shards: Vec<f64> = report
        .jobs
        .iter()
        .map(|j| j.telemetry.shards as f64)
        .collect();
    shards.iter().sum::<f64>() / shards.len() as f64
}

fn main() {
    let args = ExperimentArgs::parse();
    // Stagger arrivals at roughly half a solo run so the trace contends
    // without saturating (saturation hides the tail splitting removes).
    let solo = Orchestrator::new(OrchestratorConfig::default(), two_lf_two_hf_fleet())
        .run(&jobs(&args, 0.0)[..1]);
    let gap = solo.jobs[0].telemetry.busy_seconds() * 0.5;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut makespans = Vec::new();
    for engine in ["Unsplit", "Split", "Split+Preemption"] {
        let report =
            Orchestrator::new(engine_config(engine), two_lf_two_hf_fleet()).run(&jobs(&args, gap));
        assert_eq!(report.completed(), report.jobs.len(), "every job completes");
        makespans.push(report.makespan());
        let row = |precision: usize| {
            vec![
                engine.to_string(),
                fmt(report.makespan(), precision),
                fmt(report.speedup_vs_sequential(), precision),
                fmt(report.mean_wait(), precision),
                fmt(report.fleet.mean_utilization(), precision),
                fmt(mean_fanout(&report), precision),
                report.total_evictions().to_string(),
            ]
        };
        rows.push(row(2));
        csv.push(row(4));
    }
    println!("Restart splitting on the twin fleet (2 LF + 2 HF):\n");
    print_table(
        &[
            "engine",
            "makespan_s",
            "speedup_vs_serial",
            "mean_wait_s",
            "mean_util",
            "mean_fanout",
            "evictions",
        ],
        &rows,
    );
    let headline = (makespans[0] - makespans[1]) / makespans[0] * 100.0;
    println!(
        "\nsplitting cuts fleet makespan by {} % on this trace",
        fmt(headline, 1)
    );
    write_csv(
        "split_speedup.csv",
        &[
            "engine",
            "makespan_s",
            "speedup_vs_serial",
            "mean_wait_s",
            "mean_util",
            "mean_fanout",
            "evictions",
        ],
        &csv,
    );
}
