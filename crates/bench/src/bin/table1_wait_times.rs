//! Table I — fidelity and wait-time comparison of cloud devices, with the
//! derived ratios the paper quotes (Rigetti waits 10.9–61.3× shorter than
//! IonQ; Aria/Forte wait 3.7–5.6× longer than Harmony).

use qoncord_bench::{fmt, print_table, write_csv};
use qoncord_device::catalog::market_entries;

fn main() {
    let entries = market_entries();
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.provider.to_string(),
                e.device.to_string(),
                fmt(e.gate_fidelity_pct, 1),
                e.aq.map(|a| a.to_string()).unwrap_or_else(|| "-".into()),
                if e.wait_time_hours >= 24.0 {
                    format!("{:.1} days", e.wait_time_hours / 24.0)
                } else {
                    format!("{:.0} hours", e.wait_time_hours)
                },
            ]
        })
        .collect();
    println!("Table I: fidelity and wait times\n");
    print_table(
        &[
            "Provider",
            "Device",
            "Gate Fidelity (%)",
            "#AQ",
            "Wait Time",
        ],
        &rows,
    );
    let rigetti = &entries[0];
    let harmony = &entries[1];
    let aria = &entries[2];
    let forte = &entries[3];
    println!();
    println!(
        "Rigetti wait advantage over IonQ: {:.1}x - {:.1}x (paper: 10.9x - 61.3x)",
        harmony.wait_time_hours / rigetti.wait_time_hours,
        aria.wait_time_hours / rigetti.wait_time_hours,
    );
    println!(
        "Aria/Forte vs Harmony wait: {:.1}x - {:.1}x (paper: 3.7x - 5.6x)",
        forte.wait_time_hours / harmony.wait_time_hours,
        aria.wait_time_hours / harmony.wait_time_hours,
    );
    write_csv(
        "table1_wait_times.csv",
        &[
            "provider",
            "device",
            "gate_fidelity_pct",
            "aq",
            "wait_hours",
        ],
        &entries
            .iter()
            .map(|e| {
                vec![
                    e.provider.to_string(),
                    e.device.to_string(),
                    fmt(e.gate_fidelity_pct, 2),
                    e.aq.map(|a| a.to_string()).unwrap_or_default(),
                    fmt(e.wait_time_hours, 1),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
