//! Table II — Amazon Braket pricing, with the paper's derived per-shot
//! ratios (Rigetti 28.6–85.7× cheaper than IonQ; Aria 3× Harmony).

use qoncord_bench::{fmt, print_table, write_csv};
use qoncord_device::catalog::market_entries;

fn main() {
    let entries = market_entries();
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.provider.to_string(),
                e.device.to_string(),
                if e.time_per_gate_us >= 1.0 {
                    format!("{:.0} microseconds", e.time_per_gate_us)
                } else {
                    format!("{:.0} nanoseconds", e.time_per_gate_us * 1000.0)
                },
                format!("${:.1}", e.price_per_task_usd),
                format!("${:.5}", e.price_per_shot_usd),
            ]
        })
        .collect();
    println!("Table II: Amazon Braket pricing\n");
    print_table(
        &[
            "Provider",
            "Device",
            "Execution Time/Gate",
            "Price/Task",
            "Price/Shot",
        ],
        &rows,
    );
    let rigetti = &entries[0];
    let harmony = &entries[1];
    let aria = &entries[2];
    println!();
    println!(
        "Rigetti per-shot advantage: {:.1}x - {:.1}x cheaper (paper: 28.6x - 85.7x)",
        harmony.price_per_shot_usd / rigetti.price_per_shot_usd,
        aria.price_per_shot_usd / rigetti.price_per_shot_usd,
    );
    println!(
        "Aria vs Harmony per-shot: {:.0}x (paper: 3x)",
        aria.price_per_shot_usd / harmony.price_per_shot_usd
    );
    println!(
        "IonQ vs Rigetti gate time: {:.0}x slower (paper: >1000x)",
        aria.time_per_gate_us / rigetti.time_per_gate_us
    );
    write_csv(
        "table2_pricing.csv",
        &[
            "provider",
            "device",
            "time_per_gate_us",
            "price_per_task",
            "price_per_shot",
        ],
        &entries
            .iter()
            .map(|e| {
                vec![
                    e.provider.to_string(),
                    e.device.to_string(),
                    fmt(e.time_per_gate_us, 3),
                    fmt(e.price_per_task_usd, 2),
                    fmt(e.price_per_shot_usd, 5),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
