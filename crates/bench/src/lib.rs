//! # qoncord-bench
//!
//! Experiment harness for the Qoncord reproduction. Each binary under
//! `src/bin/` regenerates one table or figure of the paper (see DESIGN.md's
//! experiment index); this library holds the shared plumbing: scale flags,
//! aligned table printing, and CSV output under `target/experiments/`.
//!
//! Run any experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p qoncord-bench --bin fig13_14_multi_restart
//! cargo run --release -p qoncord-bench --bin fig13_14_multi_restart -- --paper
//! ```
//!
//! `--paper` switches from the quick default scale (sized for a laptop) to
//! the paper's full scale (50 restarts etc.); `--restarts N` / `--seed N`
//! override individual knobs.

#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Common command-line arguments of the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentArgs {
    /// Run at the paper's full scale instead of the quick default.
    pub paper: bool,
    /// Override of the restart count.
    pub restarts: Option<usize>,
    /// Override of the RNG seed.
    pub seed: u64,
    /// Enable the experiment's ablation variant, where one exists.
    pub ablate: bool,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            paper: false,
            restarts: None,
            seed: 0xC0C0,
            ablate: false,
        }
    }
}

impl ExperimentArgs {
    /// Parses `std::env::args()`; unknown flags abort with a usage message.
    pub fn parse() -> Self {
        let mut out = ExperimentArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper" => out.paper = true,
                "--ablate" => out.ablate = true,
                "--restarts" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--restarts needs a number"));
                    out.restarts = Some(v);
                }
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--help" | "-h" => usage("experiment harness"),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        out
    }

    /// Chooses between the quick and paper-scale value.
    pub fn scale(&self, quick: usize, paper: usize) -> usize {
        if self.paper {
            paper
        } else {
            quick
        }
    }

    /// The restart count: explicit override, else quick/paper scale.
    pub fn restarts(&self, quick: usize, paper: usize) -> usize {
        self.restarts.unwrap_or_else(|| self.scale(quick, paper))
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: <experiment> [--paper] [--ablate] [--restarts N] [--seed N]\n\
         --paper    run at the paper's full scale\n\
         --ablate   run the experiment's ablation variant (where defined)\n"
    );
    std::process::exit(2);
}

/// Prints an aligned text table.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let n = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Directory experiment CSVs are written to.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes a CSV file under `target/experiments/` and returns its path.
///
/// # Panics
///
/// Panics on I/O failure (experiments are developer tools).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = experiments_dir().join(name);
    let mut file = fs::File::create(&path).expect("create csv");
    writeln!(file, "{}", headers.join(",")).expect("write header");
    for row in rows {
        writeln!(file, "{}", row.join(",")).expect("write row");
    }
    println!("wrote {}", path.display());
    path
}

/// Formats a float with the given precision (helper for table rows).
pub fn fmt(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

/// Validates that `json` parses and that every name in `required` appears
/// as an object key somewhere in it (at any nesting depth).
///
/// This is the one place the `BENCH_*.json` schema contract lives: each
/// experiment binary self-checks its artifact through this helper before
/// writing it, and CI re-checks the committed copies the same way —
/// replacing the grep-per-key shell loops that used to duplicate the key
/// lists in the workflow file.
///
/// # Errors
///
/// Returns the parse error, or lists every missing key.
pub fn require_keys(json: &str, required: &[&str]) -> Result<(), String> {
    use qoncord_orchestrator::trace::json::{parse, Value};
    let mut keys = std::collections::BTreeSet::new();
    fn collect<'v>(value: &'v Value, keys: &mut std::collections::BTreeSet<&'v str>) {
        match value {
            Value::Object(fields) => {
                for (k, v) in fields {
                    keys.insert(k.as_str());
                    collect(v, keys);
                }
            }
            Value::Array(items) => {
                for v in items {
                    collect(v, keys);
                }
            }
            _ => {}
        }
    }
    let parsed = parse(json)?;
    collect(&parsed, &mut keys);
    let missing: Vec<&str> = required
        .iter()
        .copied()
        .filter(|k| !keys.contains(k))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("missing keys: {}", missing.join(", ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks_by_flag() {
        let quick = ExperimentArgs::default();
        assert_eq!(quick.scale(5, 50), 5);
        let paper = ExperimentArgs {
            paper: true,
            ..ExperimentArgs::default()
        };
        assert_eq!(paper.scale(5, 50), 50);
    }

    #[test]
    fn restarts_override_wins() {
        let args = ExperimentArgs {
            restarts: Some(12),
            paper: true,
            ..ExperimentArgs::default()
        };
        assert_eq!(args.restarts(5, 50), 12);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(-0.5, 3), "-0.500");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_table_panics() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn require_keys_finds_nested_keys_and_names_missing_ones() {
        let json = r#"{"outer": {"inner": [{"deep": 1}]}, "top": 2}"#;
        assert_eq!(
            require_keys(json, &["outer", "inner", "deep", "top"]),
            Ok(())
        );
        let err = require_keys(json, &["deep", "absent", "also_absent"]).unwrap_err();
        assert_eq!(err, "missing keys: absent, also_absent");
        assert!(require_keys("not json", &[]).is_err());
    }
}
