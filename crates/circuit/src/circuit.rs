//! The parametric circuit container and ideal (noise-free) execution.

use crate::gate::{Gate, GateKind, ResolvedGate};
use crate::param::{Angle, ParamId};
use qoncord_sim::fuse::{self, FusedOp};
use qoncord_sim::reference;
use qoncord_sim::statevector::StateVector;
use std::fmt;

/// A parametric quantum circuit: an ordered gate list over `n_qubits` qubits
/// referencing up to `n_params` trainable parameters.
///
/// # Examples
///
/// ```
/// use qoncord_circuit::circuit::Circuit;
/// use qoncord_circuit::param::ParamId;
///
/// let mut qc = Circuit::new(2, 1);
/// qc.h(0).cx(0, 1).rz(1, ParamId(0));
/// let sv = qc.simulate_ideal(&[0.3]);
/// assert_eq!(sv.n_qubits(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    n_params: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(n_qubits: usize, n_params: usize) -> Self {
        Circuit {
            n_qubits,
            n_params,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of trainable parameters the circuit references.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The gate sequence.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends an arbitrary gate.
    ///
    /// # Panics
    ///
    /// Panics if a qubit operand is out of range or a referenced parameter
    /// index exceeds `n_params`.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for &q in &gate.qubits {
            assert!(q < self.n_qubits, "qubit q{q} out of range");
        }
        for a in &gate.angles {
            if let Some(ParamId(i)) = a.param {
                assert!(i < self.n_params, "parameter θ{i} out of range");
            }
        }
        self.gates.push(gate);
        self
    }

    // ------- convenience builders (non-consuming, chainable) -------

    /// Appends a Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::H, vec![q], vec![]))
    }

    /// Appends a Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::X, vec![q], vec![]))
    }

    /// Appends a Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Y, vec![q], vec![]))
    }

    /// Appends a Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Z, vec![q], vec![]))
    }

    /// Appends an S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::S, vec![q], vec![]))
    }

    /// Appends an S† gate on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Sdg, vec![q], vec![]))
    }

    /// Appends a √X gate on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Sx, vec![q], vec![]))
    }

    /// Appends an RX rotation.
    pub fn rx(&mut self, q: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::new(GateKind::Rx, vec![q], vec![angle.into()]))
    }

    /// Appends an RY rotation.
    pub fn ry(&mut self, q: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::new(GateKind::Ry, vec![q], vec![angle.into()]))
    }

    /// Appends an RZ rotation.
    pub fn rz(&mut self, q: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::new(GateKind::Rz, vec![q], vec![angle.into()]))
    }

    /// Appends a phase gate.
    pub fn p(&mut self, q: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::new(GateKind::P, vec![q], vec![angle.into()]))
    }

    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Cx, vec![c, t], vec![]))
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Cz, vec![a, b], vec![]))
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Swap, vec![a, b], vec![]))
    }

    /// Appends an RZZ interaction.
    pub fn rzz(&mut self, a: usize, b: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::new(GateKind::Rzz, vec![a, b], vec![angle.into()]))
    }

    // ------- statistics -------

    /// Number of single-qubit gates.
    pub fn count_1q(&self) -> usize {
        self.gates.iter().filter(|g| g.kind.arity() == 1).count()
    }

    /// Number of two-qubit gates.
    pub fn count_2q(&self) -> usize {
        self.gates.iter().filter(|g| g.kind.arity() == 2).count()
    }

    /// Total gate count.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Circuit depth: the longest chain of gates sharing qubits (as-late-as-
    /// possible scheduling over qubit wires).
    pub fn depth(&self) -> usize {
        let mut wire_depth = vec![0usize; self.n_qubits];
        for g in &self.gates {
            let d = g.qubits.iter().map(|&q| wire_depth[q]).max().unwrap_or(0) + 1;
            for &q in &g.qubits {
                wire_depth[q] = d;
            }
        }
        wire_depth.into_iter().max().unwrap_or(0)
    }

    /// Resolves every gate against a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != n_params`.
    pub fn bind(&self, params: &[f64]) -> Vec<ResolvedGate> {
        assert_eq!(
            params.len(),
            self.n_params,
            "expected {} parameters, got {}",
            self.n_params,
            params.len()
        );
        self.gates.iter().map(|g| g.resolve(params)).collect()
    }

    /// Lowers the circuit against a parameter vector into the simulator's
    /// instruction set ([`FusedOp`]). CX and RZ stay symbolic so their
    /// dedicated kernels — and the [`fuse`] pass — can exploit them.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != n_params`.
    pub fn bind_ops(&self, params: &[f64]) -> Vec<FusedOp> {
        assert_eq!(
            params.len(),
            self.n_params,
            "expected {} parameters, got {}",
            self.n_params,
            params.len()
        );
        self.gates
            .iter()
            .map(|g| match g.kind {
                GateKind::Cx => FusedOp::Cx(g.qubits[0], g.qubits[1]),
                GateKind::Rz => FusedOp::Rz(g.angles[0].resolve(params), g.qubits[0]),
                _ => match g.resolve(params) {
                    ResolvedGate::One(u, q) => FusedOp::One(u, q),
                    ResolvedGate::Two(u, a, b) => FusedOp::Two(u, a, b),
                },
            })
            .collect()
    }

    /// Runs the circuit noise-free from `|0…0⟩` and returns the final state.
    ///
    /// The gate sequence is run through [`fuse::fuse`] first, so a transpiled
    /// layer issues far fewer amplitude sweeps than it has gates. When
    /// [`reference::forced`] is set the seed path is replayed instead: one
    /// matrix apply per gate through the scalar reference kernels.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != n_params`.
    pub fn simulate_ideal(&self, params: &[f64]) -> StateVector {
        let mut sv = StateVector::zero_state(self.n_qubits);
        if reference::forced() {
            for rg in self.bind(params) {
                match rg {
                    ResolvedGate::One(u, q) => sv.apply_1q(&u, q),
                    ResolvedGate::Two(u, a, b) => sv.apply_2q(&u, a, b),
                }
            }
        } else {
            sv.apply_ops(&fuse::fuse(self.n_qubits, self.bind_ops(params)));
        }
        sv
    }

    /// Concatenates another circuit's gates onto this one.
    ///
    /// # Panics
    ///
    /// Panics if register sizes differ; the parameter space is widened to the
    /// larger of the two.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.n_qubits, other.n_qubits, "register sizes differ");
        self.n_params = self.n_params.max(other.n_params);
        for g in &other.gates {
            self.gates.push(g.clone());
        }
        self
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} params, {} gates, depth {})",
            self.n_qubits,
            self.n_params,
            self.gates.len(),
            self.depth()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut qc = Circuit::new(3, 0);
        qc.h(0).cx(0, 1).cx(1, 2);
        assert_eq!(qc.len(), 3);
        assert_eq!(qc.count_1q(), 1);
        assert_eq!(qc.count_2q(), 2);
    }

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut qc = Circuit::new(4, 0);
        qc.h(0).h(1).h(2).h(3); // all parallel -> depth 1
        assert_eq!(qc.depth(), 1);
        qc.cx(0, 1).cx(2, 3); // still parallel -> depth 2
        assert_eq!(qc.depth(), 2);
        qc.cx(1, 2); // serializes -> depth 3
        assert_eq!(qc.depth(), 3);
    }

    #[test]
    fn ideal_simulation_produces_bell_state() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let sv = qc.simulate_ideal(&[]);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parametric_rotation_binds() {
        let mut qc = Circuit::new(1, 1);
        qc.rx(0, ParamId(0));
        let sv = qc.simulate_ideal(&[std::f64::consts::PI]);
        // RX(π)|0> = -i|1>
        assert!((sv.probabilities()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qubit_bounds_enforced() {
        let mut qc = Circuit::new(1, 0);
        qc.h(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn param_bounds_enforced() {
        let mut qc = Circuit::new(1, 1);
        qc.rz(0, ParamId(1));
    }

    #[test]
    #[should_panic(expected = "expected 2 parameters")]
    fn bind_length_checked() {
        let mut qc = Circuit::new(1, 2);
        qc.rz(0, ParamId(0));
        qc.bind(&[0.1]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2, 1);
        a.h(0);
        let mut b = Circuit::new(2, 2);
        b.rz(1, ParamId(1));
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.n_params(), 2);
    }

    #[test]
    fn empty_circuit_reports() {
        let qc = Circuit::new(3, 0);
        assert!(qc.is_empty());
        assert_eq!(qc.depth(), 0);
    }
}
