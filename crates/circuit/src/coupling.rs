//! Device coupling maps (qubit connectivity graphs).
//!
//! Includes the 27-qubit IBM Falcon heavy-hex lattice shown in Fig. 11 of the
//! Qoncord paper (shared by ibmq_toronto, ibmq_kolkata, ibmq_mumbai and
//! ibm_hanoi), the 16-qubit Guadalupe and 7-qubit Nairobi maps used in the
//! Fig. 8 device sweep, and the all-to-all connectivity of IonQ trapped-ion
//! systems.

use std::collections::VecDeque;

/// An undirected qubit-connectivity graph.
///
/// # Examples
///
/// ```
/// use qoncord_circuit::coupling::CouplingMap;
///
/// let falcon = CouplingMap::falcon_27();
/// assert_eq!(falcon.n_qubits(), 27);
/// assert!(falcon.is_connected());
/// assert!(falcon.are_adjacent(0, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    n_qubits: usize,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Builds a coupling map from undirected edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= n_qubits` or is a self-loop.
    pub fn new(n_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); n_qubits];
        let mut normalized = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            assert!(a < n_qubits && b < n_qubits, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop on qubit {a}");
            adjacency[a].push(b);
            adjacency[b].push(a);
            normalized.push((a.min(b), a.max(b)));
        }
        normalized.sort_unstable();
        normalized.dedup();
        CouplingMap {
            n_qubits,
            edges: normalized,
            adjacency,
        }
    }

    /// A 1-D chain `0 – 1 – … – (n−1)`.
    pub fn linear(n_qubits: usize) -> Self {
        let edges: Vec<_> = (0..n_qubits.saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        CouplingMap::new(n_qubits, &edges)
    }

    /// A ring (chain with the ends joined).
    pub fn ring(n_qubits: usize) -> Self {
        let mut edges: Vec<_> = (0..n_qubits - 1).map(|i| (i, i + 1)).collect();
        if n_qubits > 2 {
            edges.push((n_qubits - 1, 0));
        }
        CouplingMap::new(n_qubits, &edges)
    }

    /// Full connectivity, as in IonQ trapped-ion systems.
    pub fn all_to_all(n_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n_qubits {
            for b in (a + 1)..n_qubits {
                edges.push((a, b));
            }
        }
        CouplingMap::new(n_qubits, &edges)
    }

    /// The 27-qubit IBM Falcon heavy-hex lattice (Fig. 11 of the paper),
    /// shared by ibmq_toronto, ibmq_kolkata, ibmq_mumbai, and ibm_hanoi.
    pub fn falcon_27() -> Self {
        CouplingMap::new(
            27,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
                (14, 16),
                (15, 18),
                (16, 19),
                (17, 18),
                (18, 21),
                (19, 20),
                (19, 22),
                (21, 23),
                (22, 25),
                (23, 24),
                (24, 25),
                (25, 26),
            ],
        )
    }

    /// The 16-qubit ibmq_guadalupe heavy-hex map.
    pub fn guadalupe_16() -> Self {
        CouplingMap::new(
            16,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
            ],
        )
    }

    /// The 7-qubit ibm_nairobi "H" map.
    pub fn nairobi_7() -> Self {
        CouplingMap::new(7, &[(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)])
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The undirected edge list (each pair `(a, b)` with `a < b`, sorted).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of a qubit.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Returns `true` if `a` and `b` share an edge.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].contains(&b)
    }

    /// BFS hop distances from `src` to every qubit (`usize::MAX` when
    /// unreachable).
    pub fn distances_from(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n_qubits];
        dist[src] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// A shortest path from `a` to `b`, inclusive of both endpoints.
    ///
    /// Returns `None` if no path exists.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        let mut prev = vec![usize::MAX; self.n_qubits];
        let mut seen = vec![false; self.n_qubits];
        seen[a] = true;
        let mut queue = VecDeque::from([a]);
        while let Some(u) = queue.pop_front() {
            if u == b {
                let mut path = vec![b];
                let mut cur = b;
                while cur != a {
                    cur = prev[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &v in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = u;
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Returns `true` if every qubit is reachable from qubit 0.
    pub fn is_connected(&self) -> bool {
        if self.n_qubits == 0 {
            return true;
        }
        self.distances_from(0).iter().all(|&d| d != usize::MAX)
    }

    /// Selects a connected induced subgraph of `size` qubits by BFS from the
    /// highest-degree qubit, and returns it together with the mapping from
    /// new (dense) indices to the original physical indices.
    ///
    /// This is how a small logical circuit is placed onto a region of a large
    /// device without simulating the full register.
    ///
    /// # Panics
    ///
    /// Panics if `size > n_qubits` or the map is disconnected and no region
    /// of the requested size exists.
    pub fn connected_subgraph(&self, size: usize) -> (CouplingMap, Vec<usize>) {
        assert!(size <= self.n_qubits, "requested region exceeds device");
        if size == 0 {
            return (CouplingMap::new(0, &[]), Vec::new());
        }
        let seed = (0..self.n_qubits)
            .max_by_key(|&q| self.adjacency[q].len())
            .expect("non-empty map");
        let mut selected = Vec::with_capacity(size);
        let mut seen = vec![false; self.n_qubits];
        let mut queue = VecDeque::from([seed]);
        seen[seed] = true;
        while let Some(u) = queue.pop_front() {
            selected.push(u);
            if selected.len() == size {
                break;
            }
            // Prefer high-degree neighbors to keep the region well connected.
            let mut nbrs: Vec<usize> = self.adjacency[u]
                .iter()
                .copied()
                .filter(|&v| !seen[v])
                .collect();
            nbrs.sort_by_key(|&v| std::cmp::Reverse(self.adjacency[v].len()));
            for v in nbrs {
                seen[v] = true;
                queue.push_back(v);
            }
        }
        assert_eq!(
            selected.len(),
            size,
            "device has no connected region of {size} qubits"
        );
        let mut to_new = vec![usize::MAX; self.n_qubits];
        for (new, &old) in selected.iter().enumerate() {
            to_new[old] = new;
        }
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|&&(a, b)| to_new[a] != usize::MAX && to_new[b] != usize::MAX)
            .map(|&(a, b)| (to_new[a], to_new[b]))
            .collect();
        (CouplingMap::new(size, &edges), selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_maps_are_connected() {
        for map in [
            CouplingMap::falcon_27(),
            CouplingMap::guadalupe_16(),
            CouplingMap::nairobi_7(),
            CouplingMap::linear(5),
            CouplingMap::ring(6),
            CouplingMap::all_to_all(4),
        ] {
            assert!(map.is_connected(), "{map:?} disconnected");
        }
    }

    #[test]
    fn falcon_has_expected_edge_count() {
        assert_eq!(CouplingMap::falcon_27().edges().len(), 28);
    }

    #[test]
    fn all_to_all_edge_count() {
        assert_eq!(CouplingMap::all_to_all(5).edges().len(), 10);
    }

    #[test]
    fn distances_on_chain() {
        let chain = CouplingMap::linear(5);
        let d = chain.distances_from(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shortest_path_endpoints() {
        let map = CouplingMap::falcon_27();
        let path = map.shortest_path(0, 26).expect("connected");
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 26);
        // Consecutive hops must be edges.
        for w in path.windows(2) {
            assert!(map.are_adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let map = CouplingMap::guadalupe_16();
        for &(a, b) in map.edges() {
            assert!(map.are_adjacent(a, b));
            assert!(map.are_adjacent(b, a));
        }
    }

    #[test]
    fn subgraph_is_connected_and_dense() {
        let (sub, mapping) = CouplingMap::falcon_27().connected_subgraph(7);
        assert_eq!(sub.n_qubits(), 7);
        assert_eq!(mapping.len(), 7);
        assert!(sub.is_connected());
    }

    #[test]
    fn subgraph_of_full_size_is_whole_map() {
        let map = CouplingMap::nairobi_7();
        let (sub, mapping) = map.connected_subgraph(7);
        assert_eq!(sub.edges().len(), map.edges().len());
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_bounds_checked() {
        CouplingMap::new(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        CouplingMap::new(2, &[(1, 1)]);
    }
}
