//! Gate instructions of the circuit IR.

use crate::param::Angle;
use qoncord_sim::gates::{self, Mat2, Mat4};
use std::fmt;

/// The gate alphabet of the IR. Covers everything the Qoncord workloads
/// (QAOA, two-local, UCCSD) and the IBM basis-gate target need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S.
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T gate.
    T,
    /// T† gate.
    Tdg,
    /// √X (the IBM basis `sx`).
    Sx,
    /// X rotation (1 angle).
    Rx,
    /// Y rotation (1 angle).
    Ry,
    /// Z rotation (1 angle).
    Rz,
    /// Phase rotation `diag(1, e^{iλ})` (1 angle).
    P,
    /// Generic single-qubit `U3(θ, φ, λ)` (3 angles).
    U3,
    /// CNOT (first qubit is control).
    Cx,
    /// Controlled-Z.
    Cz,
    /// SWAP.
    Swap,
    /// Ising `exp(-iθ ZZ/2)` (1 angle).
    Rzz,
    /// Controlled-RZ (first qubit is control, 1 angle).
    Crz,
}

impl GateKind {
    /// Number of qubits the gate acts on.
    pub fn arity(self) -> usize {
        match self {
            GateKind::H
            | GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::S
            | GateKind::Sdg
            | GateKind::T
            | GateKind::Tdg
            | GateKind::Sx
            | GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::P
            | GateKind::U3 => 1,
            GateKind::Cx | GateKind::Cz | GateKind::Swap | GateKind::Rzz | GateKind::Crz => 2,
        }
    }

    /// Number of angle operands the gate takes.
    pub fn n_angles(self) -> usize {
        match self {
            GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::P
            | GateKind::Rzz
            | GateKind::Crz => 1,
            GateKind::U3 => 3,
            _ => 0,
        }
    }

    /// Lowercase OpenQASM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::H => "h",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::S => "s",
            GateKind::Sdg => "sdg",
            GateKind::T => "t",
            GateKind::Tdg => "tdg",
            GateKind::Sx => "sx",
            GateKind::Rx => "rx",
            GateKind::Ry => "ry",
            GateKind::Rz => "rz",
            GateKind::P => "p",
            GateKind::U3 => "u3",
            GateKind::Cx => "cx",
            GateKind::Cz => "cz",
            GateKind::Swap => "swap",
            GateKind::Rzz => "rzz",
            GateKind::Crz => "crz",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One gate instruction: a kind, its qubit operands, and its (possibly
/// symbolic) angles.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Which gate.
    pub kind: GateKind,
    /// Qubit operands (length = `kind.arity()`).
    pub qubits: Vec<usize>,
    /// Angle operands (length = `kind.n_angles()`).
    pub angles: Vec<Angle>,
}

impl Gate {
    /// Creates a gate, validating operand counts.
    ///
    /// # Panics
    ///
    /// Panics if qubit or angle counts mismatch the gate kind, or if a
    /// two-qubit gate repeats a qubit.
    pub fn new(kind: GateKind, qubits: Vec<usize>, angles: Vec<Angle>) -> Self {
        assert_eq!(
            qubits.len(),
            kind.arity(),
            "{kind} expects {} qubit(s), got {}",
            kind.arity(),
            qubits.len()
        );
        assert_eq!(
            angles.len(),
            kind.n_angles(),
            "{kind} expects {} angle(s), got {}",
            kind.n_angles(),
            angles.len()
        );
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "{kind} requires distinct qubits");
        }
        Gate {
            kind,
            qubits,
            angles,
        }
    }

    /// Returns `true` if any angle depends on a trainable parameter.
    pub fn is_parametric(&self) -> bool {
        self.angles.iter().any(Angle::is_parametric)
    }

    /// Resolves the gate to a concrete unitary, given bound parameter values.
    ///
    /// # Panics
    ///
    /// Panics if an angle references an unbound parameter.
    pub fn resolve(&self, params: &[f64]) -> ResolvedGate {
        let a: Vec<f64> = self.angles.iter().map(|ang| ang.resolve(params)).collect();
        match self.kind {
            GateKind::H => ResolvedGate::One(gates::h(), self.qubits[0]),
            GateKind::X => ResolvedGate::One(gates::x(), self.qubits[0]),
            GateKind::Y => ResolvedGate::One(gates::y(), self.qubits[0]),
            GateKind::Z => ResolvedGate::One(gates::z(), self.qubits[0]),
            GateKind::S => ResolvedGate::One(gates::s(), self.qubits[0]),
            GateKind::Sdg => ResolvedGate::One(gates::sdg(), self.qubits[0]),
            GateKind::T => ResolvedGate::One(gates::t(), self.qubits[0]),
            GateKind::Tdg => ResolvedGate::One(gates::tdg(), self.qubits[0]),
            GateKind::Sx => ResolvedGate::One(gates::sx(), self.qubits[0]),
            GateKind::Rx => ResolvedGate::One(gates::rx(a[0]), self.qubits[0]),
            GateKind::Ry => ResolvedGate::One(gates::ry(a[0]), self.qubits[0]),
            GateKind::Rz => ResolvedGate::One(gates::rz(a[0]), self.qubits[0]),
            GateKind::P => ResolvedGate::One(gates::p(a[0]), self.qubits[0]),
            GateKind::U3 => ResolvedGate::One(gates::u3(a[0], a[1], a[2]), self.qubits[0]),
            GateKind::Cx => ResolvedGate::Two(gates::cx(), self.qubits[0], self.qubits[1]),
            GateKind::Cz => ResolvedGate::Two(gates::cz(), self.qubits[0], self.qubits[1]),
            GateKind::Swap => ResolvedGate::Two(gates::swap(), self.qubits[0], self.qubits[1]),
            GateKind::Rzz => ResolvedGate::Two(gates::rzz(a[0]), self.qubits[0], self.qubits[1]),
            GateKind::Crz => ResolvedGate::Two(gates::crz(a[0]), self.qubits[0], self.qubits[1]),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if !self.angles.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.angles.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        write!(f, " ")?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "q{q}")?;
        }
        Ok(())
    }
}

/// A gate with all angles bound, ready for a simulator.
#[derive(Debug, Clone)]
pub enum ResolvedGate {
    /// Single-qubit unitary on a qubit.
    One(Mat2, usize),
    /// Two-qubit unitary on `(q0, q1)`.
    Two(Mat4, usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamId;

    #[test]
    fn arity_and_angle_counts() {
        assert_eq!(GateKind::H.arity(), 1);
        assert_eq!(GateKind::Cx.arity(), 2);
        assert_eq!(GateKind::U3.n_angles(), 3);
        assert_eq!(GateKind::Rzz.n_angles(), 1);
        assert_eq!(GateKind::X.n_angles(), 0);
    }

    #[test]
    fn gate_construction_validates() {
        let g = Gate::new(GateKind::Rz, vec![3], vec![Angle::param(ParamId(0))]);
        assert!(g.is_parametric());
    }

    #[test]
    #[should_panic(expected = "expects 1 angle")]
    fn missing_angle_panics() {
        Gate::new(GateKind::Rx, vec![0], vec![]);
    }

    #[test]
    #[should_panic(expected = "distinct qubits")]
    fn repeated_qubit_panics() {
        Gate::new(GateKind::Cx, vec![1, 1], vec![]);
    }

    #[test]
    fn resolve_produces_expected_arity() {
        let g = Gate::new(GateKind::Cx, vec![0, 1], vec![]);
        match g.resolve(&[]) {
            ResolvedGate::Two(_, 0, 1) => {}
            other => panic!("unexpected resolution {other:?}"),
        }
    }

    #[test]
    fn display_shows_mnemonic_and_operands() {
        let g = Gate::new(GateKind::Rzz, vec![0, 2], vec![Angle::constant(0.5)]);
        assert_eq!(g.to_string(), "rzz(0.5) q0,q2");
    }
}
