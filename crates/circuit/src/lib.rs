//! # qoncord-circuit
//!
//! Parametric quantum-circuit IR for the Qoncord reproduction: gates with
//! affine symbolic angles, a chainable circuit builder, device coupling maps
//! (including the 27-qubit IBM Falcon lattice of the paper's Fig. 11), and a
//! transpiler that decomposes to the IBM `{rz, sx, x, cx}` basis and routes
//! with greedy SWAP insertion.
//!
//! ## Example
//!
//! ```
//! use qoncord_circuit::circuit::Circuit;
//! use qoncord_circuit::coupling::CouplingMap;
//! use qoncord_circuit::param::{Angle, ParamId};
//! use qoncord_circuit::transpile::transpile;
//!
//! // A 1-layer QAOA-style block on 3 qubits with parameters γ, β.
//! let mut qc = Circuit::new(3, 2);
//! for q in 0..3 {
//!     qc.h(q);
//! }
//! qc.rzz(0, 1, Angle::scaled(ParamId(0), 2.0));
//! qc.rzz(1, 2, Angle::scaled(ParamId(0), 2.0));
//! for q in 0..3 {
//!     qc.rx(q, Angle::scaled(ParamId(1), 2.0));
//! }
//! let transpiled = transpile(&qc, &CouplingMap::falcon_27());
//! assert!(transpiled.stats.n_2q >= 4);
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod coupling;
pub mod gate;
pub mod param;
pub mod qasm;
pub mod transpile;

pub use circuit::Circuit;
pub use coupling::CouplingMap;
pub use gate::{Gate, GateKind, ResolvedGate};
pub use param::{Angle, ParamId};
pub use transpile::{transpile, CircuitStats, TranspiledCircuit};
