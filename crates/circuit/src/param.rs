//! Symbolic circuit parameters.
//!
//! VQA ansätze contain gates whose angles are affine functions of a small set
//! of trainable parameters (e.g. the QAOA cost layer uses the angle
//! `2·w_{ij}·γ_k` for every edge). [`Angle`] captures exactly that affine
//! form, which is all the paper's workloads require, while keeping parameter
//! binding a single multiply-add.

use std::fmt;

/// Identifier of a trainable circuit parameter (an index into the parameter
/// vector handed to [`crate::circuit::Circuit::bind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub usize);

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "θ{}", self.0)
    }
}

/// A gate angle of the affine form `coeff · θ[param] + offset`, or a plain
/// constant when `param` is `None`.
///
/// # Examples
///
/// ```
/// use qoncord_circuit::param::{Angle, ParamId};
///
/// let fixed = Angle::constant(1.5);
/// assert_eq!(fixed.resolve(&[]), 1.5);
///
/// let scaled = Angle::scaled(ParamId(0), 2.0);
/// assert_eq!(scaled.resolve(&[0.25]), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Angle {
    /// Multiplier on the bound parameter value (ignored when `param` is `None`).
    pub coeff: f64,
    /// The trainable parameter, if any.
    pub param: Option<ParamId>,
    /// Constant additive term.
    pub offset: f64,
}

impl Angle {
    /// A constant angle with no trainable parameter.
    pub fn constant(value: f64) -> Self {
        Angle {
            coeff: 0.0,
            param: None,
            offset: value,
        }
    }

    /// The bare parameter `θ[id]`.
    pub fn param(id: ParamId) -> Self {
        Angle {
            coeff: 1.0,
            param: Some(id),
            offset: 0.0,
        }
    }

    /// The scaled parameter `coeff · θ[id]`.
    pub fn scaled(id: ParamId, coeff: f64) -> Self {
        Angle {
            coeff,
            param: Some(id),
            offset: 0.0,
        }
    }

    /// The affine form `coeff · θ[id] + offset`.
    pub fn affine(id: ParamId, coeff: f64, offset: f64) -> Self {
        Angle {
            coeff,
            param: Some(id),
            offset,
        }
    }

    /// Evaluates the angle against a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the angle references a parameter index beyond `params.len()`.
    pub fn resolve(&self, params: &[f64]) -> f64 {
        match self.param {
            Some(ParamId(i)) => {
                assert!(
                    i < params.len(),
                    "angle references parameter {i} but only {} were bound",
                    params.len()
                );
                self.coeff * params[i] + self.offset
            }
            None => self.offset,
        }
    }

    /// Returns `true` if the angle depends on a trainable parameter.
    pub fn is_parametric(&self) -> bool {
        self.param.is_some() && self.coeff != 0.0
    }
}

impl From<f64> for Angle {
    fn from(value: f64) -> Self {
        Angle::constant(value)
    }
}

impl From<ParamId> for Angle {
    fn from(id: ParamId) -> Self {
        Angle::param(id)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.param {
            Some(id) if self.offset != 0.0 => write!(f, "{}·{} + {}", self.coeff, id, self.offset),
            Some(id) => write!(f, "{}·{}", self.coeff, id),
            None => write!(f, "{}", self.offset),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_params() {
        let a = Angle::constant(2.5);
        assert_eq!(a.resolve(&[9.0, 9.0]), 2.5);
        assert!(!a.is_parametric());
    }

    #[test]
    fn param_resolves_by_index() {
        let a = Angle::param(ParamId(1));
        assert_eq!(a.resolve(&[0.0, 7.0]), 7.0);
        assert!(a.is_parametric());
    }

    #[test]
    fn affine_combines_terms() {
        let a = Angle::affine(ParamId(0), 2.0, -1.0);
        assert_eq!(a.resolve(&[3.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "references parameter")]
    fn out_of_range_param_panics() {
        Angle::param(ParamId(4)).resolve(&[1.0]);
    }

    #[test]
    fn conversions() {
        let c: Angle = 0.5.into();
        assert_eq!(c, Angle::constant(0.5));
        let p: Angle = ParamId(2).into();
        assert_eq!(p, Angle::param(ParamId(2)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Angle::constant(1.0).to_string(), "1");
        assert_eq!(Angle::scaled(ParamId(0), 2.0).to_string(), "2·θ0");
    }
}
