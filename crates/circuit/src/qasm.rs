//! OpenQASM 2.0 export.
//!
//! Lets circuits built here be executed on real cloud backends (or checked
//! against Qiskit) — the natural interchange boundary for a scheduler that
//! is designed to drive actual quantum clouds.

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Error returned when a circuit cannot be exported.
#[derive(Debug, Clone, PartialEq)]
pub enum ExportQasmError {
    /// The circuit still contains unbound symbolic parameters; bind first.
    UnboundParameters {
        /// Number of parameters the circuit expects.
        n_params: usize,
    },
}

impl std::fmt::Display for ExportQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportQasmError::UnboundParameters { n_params } => write!(
                f,
                "circuit has {n_params} unbound parameters; bind values before exporting"
            ),
        }
    }
}

impl std::error::Error for ExportQasmError {}

/// Serializes a circuit to OpenQASM 2.0. Parametric circuits must be bound
/// by passing their parameter values; pass `&[]` for parameter-free
/// circuits.
///
/// # Errors
///
/// Returns [`ExportQasmError::UnboundParameters`] when `params` is empty but
/// the circuit expects parameters.
///
/// # Examples
///
/// ```
/// use qoncord_circuit::circuit::Circuit;
/// use qoncord_circuit::qasm::to_qasm;
///
/// let mut qc = Circuit::new(2, 0);
/// qc.h(0).cx(0, 1);
/// let qasm = to_qasm(&qc, &[]).unwrap();
/// assert!(qasm.contains("h q[0];"));
/// assert!(qasm.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit, params: &[f64]) -> Result<String, ExportQasmError> {
    if circuit.n_params() > 0 && params.len() != circuit.n_params() {
        return Err(ExportQasmError::UnboundParameters {
            n_params: circuit.n_params(),
        });
    }
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.n_qubits()));
    out.push_str(&format!("creg c[{}];\n", circuit.n_qubits()));
    for gate in circuit.gates() {
        let a: Vec<f64> = gate.angles.iter().map(|ang| ang.resolve(params)).collect();
        let line = match gate.kind {
            GateKind::H => format!("h q[{}];", gate.qubits[0]),
            GateKind::X => format!("x q[{}];", gate.qubits[0]),
            GateKind::Y => format!("y q[{}];", gate.qubits[0]),
            GateKind::Z => format!("z q[{}];", gate.qubits[0]),
            GateKind::S => format!("s q[{}];", gate.qubits[0]),
            GateKind::Sdg => format!("sdg q[{}];", gate.qubits[0]),
            GateKind::T => format!("t q[{}];", gate.qubits[0]),
            GateKind::Tdg => format!("tdg q[{}];", gate.qubits[0]),
            GateKind::Sx => format!("sx q[{}];", gate.qubits[0]),
            GateKind::Rx => format!("rx({}) q[{}];", a[0], gate.qubits[0]),
            GateKind::Ry => format!("ry({}) q[{}];", a[0], gate.qubits[0]),
            GateKind::Rz => format!("rz({}) q[{}];", a[0], gate.qubits[0]),
            GateKind::P => format!("p({}) q[{}];", a[0], gate.qubits[0]),
            GateKind::U3 => format!("u3({},{},{}) q[{}];", a[0], a[1], a[2], gate.qubits[0]),
            GateKind::Cx => format!("cx q[{}],q[{}];", gate.qubits[0], gate.qubits[1]),
            GateKind::Cz => format!("cz q[{}],q[{}];", gate.qubits[0], gate.qubits[1]),
            GateKind::Swap => format!("swap q[{}],q[{}];", gate.qubits[0], gate.qubits[1]),
            GateKind::Rzz => format!("rzz({}) q[{}],q[{}];", a[0], gate.qubits[0], gate.qubits[1]),
            GateKind::Crz => format!("crz({}) q[{}],q[{}];", a[0], gate.qubits[0], gate.qubits[1]),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("measure q -> c;\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Angle, ParamId};

    #[test]
    fn bell_circuit_exports() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let qasm = to_qasm(&qc, &[]).unwrap();
        assert!(qasm.starts_with("OPENQASM 2.0;"));
        assert!(qasm.contains("qreg q[2];"));
        assert!(qasm.contains("h q[0];"));
        assert!(qasm.contains("cx q[0],q[1];"));
        assert!(qasm.ends_with("measure q -> c;\n"));
    }

    #[test]
    fn parametric_circuit_binds_on_export() {
        let mut qc = Circuit::new(1, 1);
        qc.rz(0, Angle::scaled(ParamId(0), 2.0));
        let qasm = to_qasm(&qc, &[0.25]).unwrap();
        assert!(qasm.contains("rz(0.5) q[0];"));
    }

    #[test]
    fn unbound_parameters_error() {
        let mut qc = Circuit::new(1, 1);
        qc.rx(0, ParamId(0));
        let err = to_qasm(&qc, &[]).unwrap_err();
        assert_eq!(err, ExportQasmError::UnboundParameters { n_params: 1 });
        assert!(err.to_string().contains("unbound"));
    }

    #[test]
    fn every_gate_kind_exports() {
        let mut qc = Circuit::new(3, 0);
        qc.h(0)
            .x(1)
            .y(2)
            .z(0)
            .s(1)
            .sdg(2)
            .sx(0)
            .rx(1, 0.1)
            .ry(2, 0.2)
            .rz(0, 0.3)
            .p(1, 0.4)
            .cx(0, 1)
            .cz(1, 2)
            .swap(0, 2)
            .rzz(0, 1, 0.5);
        let qasm = to_qasm(&qc, &[]).unwrap();
        for needle in [
            "h q[0];",
            "x q[1];",
            "y q[2];",
            "z q[0];",
            "s q[1];",
            "sdg q[2];",
            "sx q[0];",
            "rx(0.1) q[1];",
            "ry(0.2) q[2];",
            "rz(0.3) q[0];",
            "p(0.4) q[1];",
            "cx q[0],q[1];",
            "cz q[1],q[2];",
            "swap q[0],q[2];",
            "rzz(0.5) q[0],q[1];",
        ] {
            assert!(qasm.contains(needle), "missing {needle} in:\n{qasm}");
        }
    }

    #[test]
    fn line_count_matches_gate_count() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(1).cx(0, 1);
        let qasm = to_qasm(&qc, &[]).unwrap();
        // header(2) + qreg + creg + 3 gates + measure = 8 lines
        assert_eq!(qasm.lines().count(), 8);
    }
}
