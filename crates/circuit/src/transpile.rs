//! Transpilation: basis-gate decomposition, SWAP routing against a coupling
//! map, and peephole optimization.
//!
//! The pipeline mirrors what the paper obtains from `qiskit transpile(...,
//! optimization_level=3)` at the granularity Qoncord actually consumes: the
//! post-routing single-/two-qubit gate counts and depth that feed the
//! P_correct fidelity estimate (Eq. 1).
//!
//! The target basis is IBM's `{rz, sx, x, cx}`. Routing is a SABRE-style
//! scheduler: a commutation-aware dependency DAG feeds a ready set, SWAPs
//! are chosen to minimize the aggregate distance of blocked gates, and the
//! initial layout greedily embeds the interaction graph. The device region
//! for small circuits is chosen by [`CouplingMap::connected_subgraph`].

use crate::circuit::Circuit;
use crate::coupling::CouplingMap;
use crate::gate::{Gate, GateKind};
use crate::param::Angle;
use std::f64::consts::PI;

/// Gate counts and depth after transpilation; the inputs to P_correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Single-qubit gate count.
    pub n_1q: usize,
    /// Two-qubit gate count.
    pub n_2q: usize,
    /// Circuit depth.
    pub depth: usize,
    /// Number of SWAPs inserted by routing (already expanded into CNOTs and
    /// included in `n_2q`).
    pub swaps_inserted: usize,
    /// Number of measured qubits (the full register in our workloads).
    pub n_measured: usize,
}

/// The output of [`transpile`]: a routed basis circuit plus bookkeeping to
/// map measurement outcomes back to logical qubits.
#[derive(Debug, Clone)]
pub struct TranspiledCircuit {
    /// The decomposed, routed circuit over the device region's qubits.
    pub circuit: Circuit,
    /// Physical device qubit backing each region qubit (`region_to_device[i]`
    /// is the device index of region qubit `i`).
    pub region_to_device: Vec<usize>,
    /// Final layout: `logical_to_region[l]` is the region qubit holding
    /// logical qubit `l` after all routing SWAPs.
    pub logical_to_region: Vec<usize>,
    /// Connectivity of the selected device region (indices match
    /// `circuit`'s qubits).
    pub region_coupling: CouplingMap,
    /// Gate statistics.
    pub stats: CircuitStats,
}

impl TranspiledCircuit {
    /// Permutes a probability vector over region-qubit bitstrings into one
    /// over the original logical qubits.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 2^n_region`.
    pub fn remap_probabilities(&self, probs: &[f64]) -> Vec<f64> {
        let n = self.logical_to_region.len();
        assert_eq!(probs.len(), 1usize << self.circuit.n_qubits());
        let mut out = vec![0.0; 1usize << n];
        for (idx, &p) in probs.iter().enumerate() {
            let mut logical = 0usize;
            for (l, &r) in self.logical_to_region.iter().enumerate() {
                if idx & (1 << r) != 0 {
                    logical |= 1 << l;
                }
            }
            out[logical] += p;
        }
        out
    }
}

/// Decomposes a circuit into the `{rz, sx, x, cx}` basis, preserving
/// parametric angles (all decompositions keep angles affine in the original
/// parameters).
///
/// Global phases are dropped — they are unobservable in every quantity this
/// repository measures.
pub fn decompose_to_basis(circuit: &Circuit) -> Circuit {
    let _prof = qoncord_prof::span("circuit::decompose");
    let mut out = Circuit::new(circuit.n_qubits(), circuit.n_params());
    for gate in circuit.gates() {
        decompose_gate(gate, &mut out);
    }
    out
}

fn rz_gate(q: usize, angle: Angle) -> Gate {
    Gate::new(GateKind::Rz, vec![q], vec![angle])
}

fn sx_gate(q: usize) -> Gate {
    Gate::new(GateKind::Sx, vec![q], vec![])
}

/// Appends `U3(θ, φ, λ)` as `RZ(φ+π) · SX · RZ(θ+π) · SX · RZ(λ)` (the
/// standard ZXZXZ Euler decomposition; rightmost factor applied first).
fn push_u3(out: &mut Circuit, q: usize, theta: Angle, phi: f64, lambda: f64) {
    out.push(rz_gate(q, Angle::constant(lambda)));
    out.push(sx_gate(q));
    let shifted = Angle {
        coeff: theta.coeff,
        param: theta.param,
        offset: theta.offset + PI,
    };
    out.push(rz_gate(q, shifted));
    out.push(sx_gate(q));
    out.push(rz_gate(q, Angle::constant(phi + PI)));
}

/// H in the basis alphabet: `RZ(π/2) · SX · RZ(π/2)` up to global phase.
fn push_h_basis(out: &mut Circuit, q: usize) {
    out.push(rz_gate(q, Angle::constant(PI / 2.0)));
    out.push(sx_gate(q));
    out.push(rz_gate(q, Angle::constant(PI / 2.0)));
}

fn decompose_gate(gate: &Gate, out: &mut Circuit) {
    let q = gate.qubits[0];
    match gate.kind {
        // Already in basis.
        GateKind::Rz | GateKind::Sx | GateKind::X | GateKind::Cx => {
            out.push(gate.clone());
        }
        // Phase-family gates are RZ up to global phase.
        GateKind::Z => {
            out.push(rz_gate(q, Angle::constant(PI)));
        }
        GateKind::S => {
            out.push(rz_gate(q, Angle::constant(PI / 2.0)));
        }
        GateKind::Sdg => {
            out.push(rz_gate(q, Angle::constant(-PI / 2.0)));
        }
        GateKind::T => {
            out.push(rz_gate(q, Angle::constant(PI / 4.0)));
        }
        GateKind::Tdg => {
            out.push(rz_gate(q, Angle::constant(-PI / 4.0)));
        }
        GateKind::P => {
            out.push(rz_gate(q, gate.angles[0]));
        }
        // Y = RZ(π) · X up to global phase.
        GateKind::Y => {
            out.push(Gate::new(GateKind::X, vec![q], vec![]));
            out.push(rz_gate(q, Angle::constant(PI)));
        }
        // H = RZ(π/2) · SX · RZ(π/2) up to global phase (Qiskit's U2(0, π)).
        GateKind::H => {
            push_h_basis(out, q);
        }
        // RX(θ) = U3(θ, −π/2, π/2); RY(θ) = U3(θ, 0, 0).
        GateKind::Rx => {
            push_u3(out, q, gate.angles[0], -PI / 2.0, PI / 2.0);
        }
        GateKind::Ry => {
            push_u3(out, q, gate.angles[0], 0.0, 0.0);
        }
        GateKind::U3 => {
            // General U3 with potentially parametric φ/λ: emit the ZXZXZ chain
            // with each RZ carrying its own (affine) angle.
            let [theta, phi, lambda] = [gate.angles[0], gate.angles[1], gate.angles[2]];
            out.push(rz_gate(q, lambda));
            out.push(sx_gate(q));
            out.push(rz_gate(
                q,
                Angle {
                    coeff: theta.coeff,
                    param: theta.param,
                    offset: theta.offset + PI,
                },
            ));
            out.push(sx_gate(q));
            out.push(rz_gate(
                q,
                Angle {
                    coeff: phi.coeff,
                    param: phi.param,
                    offset: phi.offset + PI,
                },
            ));
        }
        // RZZ(θ) a,b = CX(a,b) · RZ_b(θ) · CX(a,b).
        GateKind::Rzz => {
            let (a, b) = (gate.qubits[0], gate.qubits[1]);
            out.push(Gate::new(GateKind::Cx, vec![a, b], vec![]));
            out.push(rz_gate(b, gate.angles[0]));
            out.push(Gate::new(GateKind::Cx, vec![a, b], vec![]));
        }
        // CZ a,b = H_b · CX(a,b) · H_b.
        GateKind::Cz => {
            let (a, b) = (gate.qubits[0], gate.qubits[1]);
            push_h_basis(out, b);
            out.push(Gate::new(GateKind::Cx, vec![a, b], vec![]));
            push_h_basis(out, b);
        }
        // SWAP = 3 CNOTs.
        GateKind::Swap => {
            let (a, b) = (gate.qubits[0], gate.qubits[1]);
            out.push(Gate::new(GateKind::Cx, vec![a, b], vec![]));
            out.push(Gate::new(GateKind::Cx, vec![b, a], vec![]));
            out.push(Gate::new(GateKind::Cx, vec![a, b], vec![]));
        }
        // CRZ(θ) c,t = RZ_t(θ/2) · CX · RZ_t(−θ/2) · CX.
        GateKind::Crz => {
            let (c, t) = (gate.qubits[0], gate.qubits[1]);
            let half = Angle {
                coeff: gate.angles[0].coeff / 2.0,
                param: gate.angles[0].param,
                offset: gate.angles[0].offset / 2.0,
            };
            let neg_half = Angle {
                coeff: -half.coeff,
                param: half.param,
                offset: -half.offset,
            };
            out.push(rz_gate(t, half));
            out.push(Gate::new(GateKind::Cx, vec![c, t], vec![]));
            out.push(rz_gate(t, neg_half));
            out.push(Gate::new(GateKind::Cx, vec![c, t], vec![]));
        }
    }
}

/// Peephole optimization: merges adjacent RZ rotations on the same wire when
/// their angles are compatible (both constant or sharing a parameter), drops
/// identity rotations, and cancels immediately-repeated CNOT pairs.
pub fn optimize(circuit: &Circuit) -> Circuit {
    let _prof = qoncord_prof::span("circuit::optimize");
    let mut gates: Vec<Gate> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        // Drop constant RZ(0 mod 2π).
        if gate.kind == GateKind::Rz && !gate.angles[0].is_parametric() {
            let v = gate.angles[0].offset.rem_euclid(2.0 * PI);
            if v.abs() < 1e-12 || (v - 2.0 * PI).abs() < 1e-12 {
                continue;
            }
        }
        if let Some(last) = gates.last() {
            // Merge rz·rz on the same qubit.
            if gate.kind == GateKind::Rz && last.kind == GateKind::Rz && last.qubits == gate.qubits
            {
                if let Some(merged) = merge_angles(last.angles[0], gate.angles[0]) {
                    let q = gate.qubits[0];
                    gates.pop();
                    // Re-check identity after merging.
                    if !merged.is_parametric() {
                        let v = merged.offset.rem_euclid(2.0 * PI);
                        if v.abs() < 1e-12 || (v - 2.0 * PI).abs() < 1e-12 {
                            continue;
                        }
                    }
                    gates.push(rz_gate(q, merged));
                    continue;
                }
            }
            // Cancel cx·cx on identical operands.
            if gate.kind == GateKind::Cx && last.kind == GateKind::Cx && last.qubits == gate.qubits
            {
                gates.pop();
                continue;
            }
            // Cancel x·x.
            if gate.kind == GateKind::X && last.kind == GateKind::X && last.qubits == gate.qubits {
                gates.pop();
                continue;
            }
        }
        gates.push(gate.clone());
    }
    let mut out = Circuit::new(circuit.n_qubits(), circuit.n_params());
    for g in gates {
        out.push(g);
    }
    out
}

fn merge_angles(a: Angle, b: Angle) -> Option<Angle> {
    match (a.param, b.param) {
        (None, None) => Some(Angle::constant(a.offset + b.offset)),
        (Some(p), Some(q)) if p == q => Some(Angle {
            coeff: a.coeff + b.coeff,
            param: Some(p),
            offset: a.offset + b.offset,
        }),
        (Some(_), None) => Some(Angle {
            coeff: a.coeff,
            param: a.param,
            offset: a.offset + b.offset,
        }),
        (None, Some(_)) => Some(Angle {
            coeff: b.coeff,
            param: b.param,
            offset: a.offset + b.offset,
        }),
        _ => None,
    }
}

/// Chooses an initial logical→physical placement that greedily maximizes
/// the number of interacting logical pairs mapped to adjacent physical
/// qubits (a lightweight stand-in for SABRE's layout pass).
fn initial_layout(circuit: &Circuit, coupling: &CouplingMap) -> Vec<usize> {
    let n = circuit.n_qubits();
    // Interaction weights between logical qubits.
    let mut weight = vec![vec![0usize; n]; n];
    for g in circuit.gates() {
        if g.qubits.len() == 2 {
            let (a, b) = (g.qubits[0], g.qubits[1]);
            weight[a][b] += 1;
            weight[b][a] += 1;
        }
    }
    let wdeg = |q: usize| weight[q].iter().sum::<usize>();
    // Place logical qubits in descending connection order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&q| std::cmp::Reverse(wdeg(q)));
    let mut layout = vec![usize::MAX; n]; // logical -> physical
    let mut used = vec![false; n]; // physical occupied
    for &logical in &order {
        // Score each free physical site by adjacency to already-placed
        // interaction partners; fall back to highest degree for the seed.
        let mut best: Option<(usize, i64)> = None;
        for phys in 0..n {
            if used[phys] {
                continue;
            }
            let mut score: i64 = 0;
            for partner in 0..n {
                let w = weight[logical][partner] as i64;
                if w == 0 || layout[partner] == usize::MAX {
                    continue;
                }
                if coupling.are_adjacent(phys, layout[partner]) {
                    score += 10 * w;
                } else {
                    // Penalize distance to placed partners.
                    let d = coupling.distances_from(phys)[layout[partner]] as i64;
                    score -= d * w;
                }
            }
            score += coupling.neighbors(phys).len() as i64; // tie-break
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((phys, score));
            }
        }
        let (phys, _) = best.expect("free site exists");
        layout[logical] = phys;
        used[phys] = true;
    }
    layout
}

/// Commutation class of a gate at one of its qubits, used to build the
/// routing dependency DAG. Gates sharing a qubit commute there when both are
/// diagonal (Z class) or both are X-axis rotations at that position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommClass {
    /// Diagonal in the computational basis (rz, cz, rzz, CX control, …).
    Z,
    /// X-axis (x, sx, rx, CX target).
    X,
    /// Everything else: commutes with nothing.
    General,
}

fn comm_class(kind: GateKind, position: usize) -> CommClass {
    match kind {
        GateKind::Rz
        | GateKind::Z
        | GateKind::S
        | GateKind::Sdg
        | GateKind::T
        | GateKind::Tdg
        | GateKind::P
        | GateKind::Rzz
        | GateKind::Cz
        | GateKind::Crz => CommClass::Z,
        GateKind::X | GateKind::Sx | GateKind::Rx => CommClass::X,
        GateKind::Cx => {
            if position == 0 {
                CommClass::Z // control
            } else {
                CommClass::X // target
            }
        }
        _ => CommClass::General,
    }
}

/// Builds the commutation-aware dependency DAG: gate `g` depends on the
/// gates of the immediately preceding commutation run on each of its qubits.
/// Returns `(successors, indegree)`.
fn dependency_dag(circuit: &Circuit) -> (Vec<Vec<usize>>, Vec<usize>) {
    let n_gates = circuit.len();
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n_gates];
    let mut indegree = vec![0usize; n_gates];
    // Per qubit: the current commutation run and the previous run.
    #[derive(Clone, Default)]
    struct WireState {
        current: Vec<usize>,
        current_class: Option<CommClass>,
        previous: Vec<usize>,
    }
    let mut wires: Vec<WireState> = vec![WireState::default(); circuit.n_qubits()];
    for (g, gate) in circuit.gates().iter().enumerate() {
        for (pos, &q) in gate.qubits.iter().enumerate() {
            let class = comm_class(gate.kind, pos);
            let wire = &mut wires[q];
            let same_run = wire.current_class == Some(class) && class != CommClass::General;
            if !same_run {
                wire.previous = std::mem::take(&mut wire.current);
                wire.current_class = Some(class);
            }
            for &dep in &wire.previous {
                if dep != g && !successors[dep].contains(&g) {
                    successors[dep].push(g);
                    indegree[g] += 1;
                }
            }
            wire.current.push(g);
        }
    }
    (successors, indegree)
}

/// Routes a basis circuit onto `coupling` with a SABRE-style scheduler:
/// a commutation-aware dependency DAG feeds a ready set; adjacent ready
/// gates are emitted eagerly, and when none are executable a SWAP is chosen
/// to minimize the summed distance of all ready two-qubit gates. Returns the
/// routed circuit (with SWAPs still symbolic), the final logical→physical
/// layout, and the SWAP count.
fn route(circuit: &Circuit, coupling: &CouplingMap) -> (Circuit, Vec<usize>, usize) {
    let n = circuit.n_qubits();
    assert_eq!(
        coupling.n_qubits(),
        n,
        "routing region must match circuit size"
    );
    // Precompute all-pairs distances.
    let dist: Vec<Vec<usize>> = (0..n).map(|q| coupling.distances_from(q)).collect();
    // layout[l] = physical position of logical qubit l.
    let mut layout: Vec<usize> = initial_layout(circuit, coupling);
    // inverse[p] = logical qubit at physical position p.
    let mut inverse: Vec<usize> = vec![0; n];
    for (logical, &phys) in layout.iter().enumerate() {
        inverse[phys] = logical;
    }
    let (successors, mut indegree) = dependency_dag(circuit);
    let gates = circuit.gates();
    let mut ready: Vec<usize> = (0..gates.len()).filter(|&g| indegree[g] == 0).collect();
    ready.sort_unstable();
    let mut out = Circuit::new(n, circuit.n_params());
    let mut swaps = 0usize;
    let mut emitted = 0usize;

    let emit = |g: usize,
                out: &mut Circuit,
                layout: &[usize],
                ready: &mut Vec<usize>,
                indegree: &mut [usize],
                emitted: &mut usize| {
        let gate = &gates[g];
        let mapped: Vec<usize> = gate.qubits.iter().map(|&q| layout[q]).collect();
        out.push(Gate::new(gate.kind, mapped, gate.angles.clone()));
        *emitted += 1;
        for &s in &successors[g] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(s);
            }
        }
    };

    while emitted < gates.len() {
        // 1. Emit every executable ready gate (1q always; 2q when adjacent).
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut i = 0;
            while i < ready.len() {
                let g = ready[i];
                let gate = &gates[g];
                let executable = match gate.qubits.len() {
                    1 => true,
                    2 => coupling.are_adjacent(layout[gate.qubits[0]], layout[gate.qubits[1]]),
                    _ => unreachable!("IR has only 1- and 2-qubit gates"),
                };
                if executable {
                    ready.swap_remove(i);
                    emit(
                        g,
                        &mut out,
                        &layout,
                        &mut ready,
                        &mut indegree,
                        &mut emitted,
                    );
                    progressed = true;
                } else {
                    i += 1;
                }
            }
        }
        if emitted == gates.len() {
            break;
        }
        // 2. All ready gates are blocked 2q gates: pick the SWAP minimizing
        // the summed ready-gate distance (strictly improving to avoid
        // livelock, with a fallback walk along the closest pair's path).
        let blocked: Vec<(usize, usize)> = ready
            .iter()
            .map(|&g| (layout[gates[g].qubits[0]], layout[gates[g].qubits[1]]))
            .collect();
        assert!(!blocked.is_empty(), "scheduler stalled with no ready gates");
        let cost = |d: &Vec<Vec<usize>>, pairs: &[(usize, usize)]| -> usize {
            pairs.iter().map(|&(a, b)| d[a][b]).sum()
        };
        let base_cost = cost(&dist, &blocked);
        // Candidate swaps: coupling edges touching a qubit of a blocked pair.
        let mut best: Option<((usize, usize), usize)> = None;
        for &(ea, eb) in coupling.edges() {
            let touches = blocked
                .iter()
                .any(|&(a, b)| a == ea || a == eb || b == ea || b == eb);
            if !touches {
                continue;
            }
            // Apply the swap virtually.
            let remap = |p: usize| {
                if p == ea {
                    eb
                } else if p == eb {
                    ea
                } else {
                    p
                }
            };
            let new_pairs: Vec<(usize, usize)> =
                blocked.iter().map(|&(a, b)| (remap(a), remap(b))).collect();
            let c = cost(&dist, &new_pairs);
            if c < base_cost && best.map(|(_, bc)| c < bc).unwrap_or(true) {
                best = Some(((ea, eb), c));
            }
        }
        match best {
            Some(((sa, sb), _)) => {
                out.push(Gate::new(GateKind::Swap, vec![sa, sb], vec![]));
                swaps += 1;
                let (ia, ib) = (inverse[sa], inverse[sb]);
                inverse.swap(sa, sb);
                layout[ia] = sb;
                layout[ib] = sa;
            }
            None => {
                // No single swap improves the aggregate: break the deadlock
                // by walking the closest blocked pair all the way to
                // adjacency, which guarantees a gate is emitted next round.
                let &(a, b) = blocked
                    .iter()
                    .min_by_key(|&&(a, b)| dist[a][b])
                    .expect("non-empty");
                let path = coupling.shortest_path(a, b).expect("connected map");
                let mut pa = a;
                for &next in &path[1..path.len() - 1] {
                    out.push(Gate::new(GateKind::Swap, vec![pa, next], vec![]));
                    swaps += 1;
                    let (ia, ib) = (inverse[pa], inverse[next]);
                    inverse.swap(pa, next);
                    layout[ia] = next;
                    layout[ib] = pa;
                    pa = next;
                }
            }
        }
    }
    (out, layout, swaps)
}

/// Full transpilation pipeline: decompose → route onto a connected device
/// region → expand SWAPs → peephole-optimize.
///
/// # Panics
///
/// Panics if the device has fewer qubits than the circuit.
pub fn transpile(circuit: &Circuit, device_coupling: &CouplingMap) -> TranspiledCircuit {
    assert!(
        device_coupling.n_qubits() >= circuit.n_qubits(),
        "device ({}) smaller than circuit ({})",
        device_coupling.n_qubits(),
        circuit.n_qubits()
    );
    let _prof = qoncord_prof::span("circuit::transpile");
    let (region, region_to_device) = device_coupling.connected_subgraph(circuit.n_qubits());
    let basis = decompose_to_basis(circuit);
    let basis = optimize(&basis);
    let (routed, logical_to_region, swaps_inserted) = route(&basis, &region);
    let expanded = decompose_to_basis(&routed); // expand inserted SWAPs
    let final_circuit = optimize(&expanded);
    let stats = CircuitStats {
        n_1q: final_circuit.count_1q(),
        n_2q: final_circuit.count_2q(),
        depth: final_circuit.depth(),
        swaps_inserted,
        n_measured: circuit.n_qubits(),
    };
    TranspiledCircuit {
        circuit: final_circuit,
        region_to_device,
        logical_to_region,
        region_coupling: region,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamId;
    use qoncord_sim::dist::ProbDist;

    /// The decomposed circuit must produce the same outcome distribution as
    /// the original (global phase is unobservable).
    fn assert_same_distribution(original: &Circuit, transformed: &Circuit, params: &[f64]) {
        let a = ProbDist::new(original.simulate_ideal(params).probabilities());
        let b = ProbDist::new(transformed.simulate_ideal(params).probabilities());
        assert!(
            a.total_variation(&b) < 1e-9,
            "distributions diverge: tv = {}",
            a.total_variation(&b)
        );
    }

    #[test]
    fn decomposition_preserves_bell_distribution() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let basis = decompose_to_basis(&qc);
        assert_same_distribution(&qc, &basis, &[]);
        for g in basis.gates() {
            assert!(matches!(
                g.kind,
                GateKind::Rz | GateKind::Sx | GateKind::X | GateKind::Cx
            ));
        }
    }

    #[test]
    fn decomposition_preserves_every_gate_kind() {
        let mut qc = Circuit::new(3, 1);
        qc.h(0)
            .x(1)
            .y(2)
            .z(0)
            .s(1)
            .sdg(2)
            .sx(0)
            .rx(1, 0.37)
            .ry(2, -0.8)
            .rz(0, ParamId(0))
            .p(1, 1.1)
            .cx(0, 1)
            .cz(1, 2)
            .swap(0, 2)
            .rzz(0, 1, 0.55);
        qc.push(Gate::new(GateKind::T, vec![0], vec![]));
        qc.push(Gate::new(GateKind::Tdg, vec![1], vec![]));
        qc.push(Gate::new(
            GateKind::Crz,
            vec![0, 2],
            vec![Angle::constant(0.9)],
        ));
        qc.push(Gate::new(
            GateKind::U3,
            vec![1],
            vec![
                Angle::constant(0.4),
                Angle::constant(1.2),
                Angle::constant(-0.6),
            ],
        ));
        let basis = decompose_to_basis(&qc);
        assert_same_distribution(&qc, &basis, &[0.73]);
    }

    #[test]
    fn parametric_rzz_survives_decomposition() {
        let mut qc = Circuit::new(2, 1);
        qc.h(0).h(1).rzz(0, 1, Angle::scaled(ParamId(0), 2.0));
        let basis = decompose_to_basis(&qc);
        for theta in [0.0, 0.4, 1.3] {
            assert_same_distribution(&qc, &basis, &[theta]);
        }
    }

    #[test]
    fn optimize_cancels_cx_pairs() {
        let mut qc = Circuit::new(2, 0);
        qc.cx(0, 1).cx(0, 1).h(0);
        let opt = optimize(&qc);
        assert_eq!(opt.count_2q(), 0);
        assert_eq!(opt.count_1q(), 1);
    }

    #[test]
    fn optimize_merges_rz_chains() {
        let mut qc = Circuit::new(1, 0);
        qc.rz(0, 0.3).rz(0, 0.7).rz(0, -1.0);
        let opt = optimize(&qc);
        assert!(opt.is_empty(), "0.3+0.7-1.0 = 0 should vanish, got {opt}");
    }

    #[test]
    fn optimize_preserves_distribution() {
        let mut qc = Circuit::new(2, 1);
        qc.h(0)
            .rz(0, 0.2)
            .rz(0, ParamId(0))
            .cx(0, 1)
            .cx(0, 1)
            .x(1)
            .x(1);
        let opt = optimize(&qc);
        assert_same_distribution(&qc, &opt, &[0.9]);
        assert!(opt.len() < qc.len());
    }

    #[test]
    fn routing_on_chain_inserts_swaps() {
        // All-pairs CX on a 4-qubit chain cannot avoid swaps: the region is
        // a tree with 3 edges but 6 distinct qubit pairs are exercised.
        let mut qc = Circuit::new(4, 0);
        qc.h(0);
        for a in 0..4 {
            for b in (a + 1)..4 {
                qc.cx(a, b);
            }
        }
        let t = transpile(&qc, &CouplingMap::linear(4));
        assert!(t.stats.swaps_inserted >= 1);
        // All cx must be between adjacent region qubits.
        for g in t.circuit.gates() {
            if g.kind == GateKind::Cx {
                assert!(t.region_coupling.are_adjacent(g.qubits[0], g.qubits[1]));
            }
        }
    }

    #[test]
    fn routed_circuit_matches_logical_distribution() {
        let mut qc = Circuit::new(3, 0);
        qc.h(0).cx(0, 2).cx(2, 1).rzz(0, 1, 0.8);
        let t = transpile(&qc, &CouplingMap::linear(3));
        let ideal = qc.simulate_ideal(&[]).probabilities();
        let routed_raw = t.circuit.simulate_ideal(&[]).probabilities();
        let routed = t.remap_probabilities(&routed_raw);
        let a = ProbDist::new(ideal);
        let b = ProbDist::new(routed);
        assert!(
            a.total_variation(&b) < 1e-9,
            "tv = {}",
            a.total_variation(&b)
        );
    }

    #[test]
    fn transpile_to_falcon_region() {
        let mut qc = Circuit::new(7, 2);
        for q in 0..7 {
            qc.h(q);
        }
        for q in 0..6 {
            qc.rzz(q, q + 1, Angle::scaled(ParamId(0), 2.0));
        }
        for q in 0..7 {
            qc.rx(q, Angle::scaled(ParamId(1), 2.0));
        }
        let t = transpile(&qc, &CouplingMap::falcon_27());
        assert_eq!(t.circuit.n_qubits(), 7);
        assert_eq!(t.region_to_device.len(), 7);
        assert!(t.stats.n_2q >= 12, "rzz pairs expand to ≥2 cx each");
        let ideal = ProbDist::new(qc.simulate_ideal(&[0.4, 0.3]).probabilities());
        let routed = ProbDist::new(
            t.remap_probabilities(&t.circuit.simulate_ideal(&[0.4, 0.3]).probabilities()),
        );
        assert!(ideal.total_variation(&routed) < 1e-9);
    }

    #[test]
    fn all_to_all_needs_no_swaps() {
        let mut qc = Circuit::new(4, 0);
        qc.h(0).cx(0, 3).cx(1, 2).cx(0, 2);
        let t = transpile(&qc, &CouplingMap::all_to_all(4));
        assert_eq!(t.stats.swaps_inserted, 0);
    }

    #[test]
    fn stats_count_basis_gates() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let t = transpile(&qc, &CouplingMap::linear(2));
        assert_eq!(t.stats.n_2q, 1);
        assert!(t.stats.n_1q >= 3, "h expands into rz/sx chain");
        assert_eq!(t.stats.n_measured, 2);
    }
}
