//! Property-based tests of the transpiler: distribution preservation and
//! coupling-map compliance for arbitrary circuits and maps.

use proptest::prelude::*;
use qoncord_circuit::circuit::Circuit;
use qoncord_circuit::coupling::CouplingMap;
use qoncord_circuit::gate::GateKind;
use qoncord_circuit::param::ParamId;
use qoncord_circuit::transpile::{decompose_to_basis, optimize, transpile};
use qoncord_sim::dist::ProbDist;

fn arbitrary_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec((0u8..8, 0..n, 0..n, -3.0..3.0f64), 1..18).prop_map(move |ops| {
        let mut qc = Circuit::new(n, 1);
        for (op, a, b, angle) in ops {
            match op {
                0 => {
                    qc.h(a);
                }
                1 => {
                    qc.rx(a, angle);
                }
                2 => {
                    qc.ry(a, angle);
                }
                3 => {
                    qc.rz(a, ParamId(0));
                }
                4 if a != b => {
                    qc.cx(a, b);
                }
                5 if a != b => {
                    qc.rzz(a, b, angle);
                }
                6 if a != b => {
                    qc.cz(a, b);
                }
                7 if a != b => {
                    qc.swap(a, b);
                }
                _ => {}
            }
        }
        qc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Basis decomposition preserves the output distribution.
    #[test]
    fn decomposition_preserves_distribution(circuit in arbitrary_circuit(4), theta in -3.0..3.0f64) {
        let basis = decompose_to_basis(&circuit);
        let a = ProbDist::new(circuit.simulate_ideal(&[theta]).probabilities());
        let b = ProbDist::new(basis.simulate_ideal(&[theta]).probabilities());
        prop_assert!(a.total_variation(&b) < 1e-8, "tv {}", a.total_variation(&b));
        // Basis alphabet only.
        for g in basis.gates() {
            prop_assert!(matches!(g.kind,
                GateKind::Rz | GateKind::Sx | GateKind::X | GateKind::Cx));
        }
    }

    /// Peephole optimization preserves the distribution and never grows
    /// the circuit.
    #[test]
    fn optimization_preserves_distribution(circuit in arbitrary_circuit(4), theta in -3.0..3.0f64) {
        let basis = decompose_to_basis(&circuit);
        let opt = optimize(&basis);
        prop_assert!(opt.len() <= basis.len());
        let a = ProbDist::new(basis.simulate_ideal(&[theta]).probabilities());
        let b = ProbDist::new(opt.simulate_ideal(&[theta]).probabilities());
        prop_assert!(a.total_variation(&b) < 1e-8);
    }

    /// Full transpilation onto a chain respects the coupling map and
    /// preserves the logical distribution after remapping.
    #[test]
    fn routing_respects_coupling(circuit in arbitrary_circuit(4), theta in -3.0..3.0f64) {
        let t = transpile(&circuit, &CouplingMap::linear(4));
        for g in t.circuit.gates() {
            if g.qubits.len() == 2 {
                prop_assert!(t.region_coupling.are_adjacent(g.qubits[0], g.qubits[1]),
                    "gate {:?} violates coupling", g);
            }
        }
        let ideal = ProbDist::new(circuit.simulate_ideal(&[theta]).probabilities());
        let routed = ProbDist::new(
            t.remap_probabilities(&t.circuit.simulate_ideal(&[theta]).probabilities()));
        prop_assert!(ideal.total_variation(&routed) < 1e-8);
    }

    /// Depth is always at least max(1q-run) and at most total gates.
    #[test]
    fn depth_bounds(circuit in arbitrary_circuit(5)) {
        let d = circuit.depth();
        prop_assert!(d <= circuit.len());
        if !circuit.is_empty() {
            prop_assert!(d >= 1);
        }
    }
}
