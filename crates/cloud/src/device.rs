//! Simulated cloud devices with interval-based schedules.
//!
//! A device's timeline is a sorted list of busy intervals. Jobs placed
//! behind a runtime session's think-time gaps can fill those gaps
//! (first-fit), reproducing the interleaving the paper's Sec. V-F workload
//! model calls for.

/// A quantum device as the queue simulator sees it: a fidelity, a speed,
/// and a busy-interval schedule.
///
/// # Examples
///
/// ```
/// use qoncord_cloud::device::CloudDevice;
///
/// let mut dev = CloudDevice::new(0, 0.9, 1.0);
/// let s1 = dev.schedule(0.0, 5.0);
/// assert_eq!(s1, 0.0);
/// let s2 = dev.schedule(0.0, 3.0); // queues behind the first
/// assert_eq!(s2, 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct CloudDevice {
    id: usize,
    fidelity: f64,
    speed: f64,
    /// Sorted, non-overlapping busy intervals `(start, end)`.
    busy: Vec<(f64, f64)>,
    completed_circuits: u64,
}

impl CloudDevice {
    /// Creates a device with the given execution fidelity and relative
    /// speed (1.0 = reference; larger = faster).
    ///
    /// # Panics
    ///
    /// Panics if fidelity is outside `(0, 1]` or speed is not positive.
    pub fn new(id: usize, fidelity: f64, speed: f64) -> Self {
        assert!(fidelity > 0.0 && fidelity <= 1.0, "fidelity in (0,1]");
        assert!(speed > 0.0, "speed must be positive");
        CloudDevice {
            id,
            fidelity,
            speed,
            busy: Vec::new(),
            completed_circuits: 0,
        }
    }

    /// Device id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Execution fidelity.
    pub fn fidelity(&self) -> f64 {
        self.fidelity
    }

    /// Relative speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Wall-clock duration of `reference_seconds` of work on this device.
    pub fn scaled_duration(&self, reference_seconds: f64) -> f64 {
        reference_seconds / self.speed
    }

    /// Earliest start for a block of `duration` seconds at or after
    /// `earliest`, considering gap filling; does **not** commit.
    pub fn earliest_start(&self, earliest: f64, duration: f64) -> f64 {
        let mut candidate = earliest;
        for &(start, end) in &self.busy {
            if candidate + duration <= start {
                return candidate;
            }
            candidate = candidate.max(end);
        }
        candidate
    }

    /// Commits a block of `duration` seconds at or after `earliest`,
    /// first-fit into schedule gaps. Returns the start time.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative.
    pub fn schedule(&mut self, earliest: f64, duration: f64) -> f64 {
        assert!(duration >= 0.0, "duration must be non-negative");
        let start = self.earliest_start(earliest, duration);
        let end = start + duration;
        let pos = self
            .busy
            .iter()
            .position(|&(s, _)| s > start)
            .unwrap_or(self.busy.len());
        self.busy.insert(pos, (start, end));
        // Merge touching neighbors to keep the list compact.
        self.coalesce();
        start
    }

    fn coalesce(&mut self) {
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(self.busy.len());
        for &(s, e) in &self.busy {
            if let Some(last) = merged.last_mut() {
                if s <= last.1 + 1e-12 {
                    last.1 = last.1.max(e);
                    continue;
                }
            }
            merged.push((s, e));
        }
        self.busy = merged;
    }

    /// Records `n` completed circuit executions.
    pub fn record_circuits(&mut self, n: u64) {
        self.completed_circuits += n;
    }

    /// Total completed circuit executions.
    pub fn completed_circuits(&self) -> u64 {
        self.completed_circuits
    }

    /// Total busy seconds committed so far.
    pub fn busy_time(&self) -> f64 {
        self.busy.iter().map(|&(s, e)| e - s).sum()
    }

    /// Time the last committed block ends (0 when idle forever).
    pub fn horizon(&self) -> f64 {
        self.busy.last().map(|&(_, e)| e).unwrap_or(0.0)
    }

    /// Pending load: busy seconds committed at or after `now`.
    pub fn load_after(&self, now: f64) -> f64 {
        self.busy
            .iter()
            .map(|&(s, e)| (e - s.max(now)).max(0.0))
            .sum()
    }
}

/// Builds the paper's Fig. 12 fleet: `n` hypothetical devices with
/// fidelities evenly spaced over `[lo, hi]` and unit speed.
///
/// # Panics
///
/// Panics if `n < 2` or the fidelity bounds are invalid.
pub fn hypothetical_fleet(n: usize, lo: f64, hi: f64) -> Vec<CloudDevice> {
    assert!(n >= 2, "need at least two devices");
    assert!(0.0 < lo && lo <= hi && hi <= 1.0, "bad fidelity range");
    (0..n)
        .map(|i| {
            let f = lo + (hi - lo) * i as f64 / (n - 1) as f64;
            CloudDevice::new(i, f, 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_fifo_when_contended() {
        let mut d = CloudDevice::new(0, 0.5, 1.0);
        assert_eq!(d.schedule(0.0, 10.0), 0.0);
        assert_eq!(d.schedule(0.0, 5.0), 10.0);
        assert_eq!(d.horizon(), 15.0);
    }

    #[test]
    fn gap_filling_first_fit() {
        let mut d = CloudDevice::new(0, 0.5, 1.0);
        d.schedule(0.0, 2.0); // [0,2)
        d.schedule(10.0, 2.0); // [10,12)

        // A 3-second block fits in the [2,10) gap.
        assert_eq!(d.schedule(0.0, 3.0), 2.0);
        // A 9-second block does not; it goes after the horizon.
        assert_eq!(d.schedule(0.0, 9.0), 12.0);
    }

    #[test]
    fn earliest_start_respects_release_time() {
        let mut d = CloudDevice::new(0, 0.5, 1.0);
        d.schedule(0.0, 2.0);
        assert_eq!(d.earliest_start(5.0, 1.0), 5.0);
        assert_eq!(d.earliest_start(1.0, 1.0), 2.0);
    }

    #[test]
    fn speed_scales_duration() {
        let d = CloudDevice::new(0, 0.5, 2.0);
        assert!((d.scaled_duration(10.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn load_after_ignores_past() {
        let mut d = CloudDevice::new(0, 0.5, 1.0);
        d.schedule(0.0, 4.0);
        d.schedule(0.0, 4.0); // [4,8)
        assert!((d.load_after(4.0) - 4.0).abs() < 1e-12);
        assert!((d.load_after(0.0) - 8.0).abs() < 1e-12);
        assert_eq!(d.load_after(100.0), 0.0);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut d = CloudDevice::new(0, 0.5, 1.0);
        d.schedule(0.0, 3.0);
        d.schedule(10.0, 2.0);
        assert!((d.busy_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fleet_spans_fidelity_range() {
        let fleet = hypothetical_fleet(10, 0.3, 0.9);
        assert_eq!(fleet.len(), 10);
        assert!((fleet[0].fidelity() - 0.3).abs() < 1e-12);
        assert!((fleet[9].fidelity() - 0.9).abs() < 1e-12);
        assert!(fleet.windows(2).all(|w| w[0].fidelity() < w[1].fidelity()));
    }

    #[test]
    #[should_panic(expected = "fidelity in (0,1]")]
    fn zero_fidelity_rejected() {
        CloudDevice::new(0, 0.0, 1.0);
    }
}
