//! Fair-share queue ordering (Sec. II-E of the paper).
//!
//! Both cloud access models order pending jobs with fair-share scheduling:
//! a job's priority reflects its user's recent resource consumption, the
//! number of requests they have in flight, and the computation time they
//! request — heavy users sink, light users float. This module implements
//! that ordering for the queue simulator and standalone use.
//!
//! # Indexed core
//!
//! The queue is indexed so the hot paths never scan every pending request:
//!
//! * Each tenant's requests live in per-*lane* ordered buckets (one lane per
//!   placement tag: untargeted, bound to a device, or a provisional hold on
//!   a device), keyed by the decay-invariant part of the fair-share score —
//!   `request_size_weight * requested_seconds`, then submission time, then
//!   insertion sequence. Every request of a tenant shares the same usage and
//!   in-flight score terms, so this within-lane order never changes when
//!   balances move.
//! * A cross-tenant ordered index holds each lane's best request keyed by
//!   its full score, so [`pop`](FairShareQueue::pop) is a first-entry read
//!   plus an `O(log n)` removal, and a per-device ready index makes
//!   [`pop_for_device`](FairShareQueue::pop_for_device) the same.
//! * [`decay_usage`](FairShareQueue::decay_usage) keeps the seed's exact
//!   arithmetic (`consumed *= factor` per tenant, so balances stay
//!   bit-identical to the unindexed implementation) and merely marks the
//!   cross-tenant index stale; the next ordered query performs one amortized
//!   rebuild over the lanes instead of re-scoring on every comparison.
//! * A per-device backlog summary (sum of queued `requested_seconds`) is
//!   maintained incrementally on push/pop/cancel so admission projections
//!   read it in `O(1)` instead of cloning and draining the queue.
//!
//! The behavioral contract is unchanged from the original linear-scan
//! implementation: pops pick the lowest score, FIFO on score ties, insertion
//! order on full ties. The retained reference implementation in
//! [`crate::reference`] pins that contract in the equivalence property
//! tests. One deliberate boundary tightening: requests with non-finite
//! `requested_seconds` or `submitted_at` are rejected at push time with a
//! typed error instead of panicking inside the pop comparator.

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::fmt;
use std::ops::Bound;

/// Why a [`FairShareQueue`] accounting call rejected a parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FairShareError {
    /// Usage decay factors must lie in `[0, 1]` (1 = no aging, 0 = full
    /// amnesty).
    DecayFactorOutOfRange(f64),
    /// Consumption and credit amounts must be non-negative finite seconds;
    /// a negative or non-finite amount would silently corrupt every later
    /// priority comparison.
    InvalidSeconds(f64),
    /// Requests must carry finite `requested_seconds` and `submitted_at`:
    /// the queue orders by both, so a NaN or infinity admitted at push time
    /// would poison every later comparison. Rejecting at the boundary keeps
    /// the pop path panic-free.
    NonFiniteRequest {
        /// The offending request's `requested_seconds`.
        requested_seconds: f64,
        /// The offending request's `submitted_at`.
        submitted_at: f64,
    },
    /// A request with this id is already queued. Ids are the handle for
    /// targeted pops and cancellations, so duplicates would make those
    /// ambiguous.
    DuplicateRequestId(usize),
}

impl fmt::Display for FairShareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairShareError::DecayFactorOutOfRange(v) => {
                write!(f, "decay factor must lie in [0, 1], got {v}")
            }
            FairShareError::InvalidSeconds(v) => {
                write!(f, "seconds must be a non-negative finite number, got {v}")
            }
            FairShareError::NonFiniteRequest {
                requested_seconds,
                submitted_at,
            } => write!(
                f,
                "request fields must be finite, got requested_seconds={requested_seconds} \
                 submitted_at={submitted_at}"
            ),
            FairShareError::DuplicateRequestId(id) => {
                write!(f, "request id {id} is already queued")
            }
        }
    }
}

impl std::error::Error for FairShareError {}

/// Per-user accounting the fair-share policy weighs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserUsage {
    /// Device-seconds consumed in the accounting window.
    pub consumed_seconds: f64,
    /// Jobs currently queued or running.
    pub jobs_in_flight: u32,
}

/// A queued request as fair-share sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedRequest {
    /// Request id.
    pub id: usize,
    /// Submitting user.
    pub user: String,
    /// Requested computation time, seconds.
    pub requested_seconds: f64,
    /// Submission time (FIFO tie-break).
    pub submitted_at: f64,
}

/// Weights of the fair-share score; larger scores dequeue later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairShareWeights {
    /// Weight on the user's consumed device-seconds.
    pub usage: f64,
    /// Weight on the user's in-flight job count.
    pub in_flight: f64,
    /// Weight on the requested computation time.
    pub request_size: f64,
}

impl Default for FairShareWeights {
    fn default() -> Self {
        FairShareWeights {
            usage: 1.0,
            in_flight: 10.0,
            request_size: 0.5,
        }
    }
}

/// Per-run counters over the queue's indexed operations, exposed so a
/// scheduling run can prove its hot paths stayed on the indexed fast path
/// (an `O(log n)` claim that silently regresses to rescans shows up here as
/// `index_rebuilds` growing with operation count instead of decay epochs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueOpStats {
    /// Requests enqueued (all tags: untargeted, device-bound, holds).
    pub pushes: u64,
    /// Requests dequeued for execution (any pop flavor).
    pub pops: u64,
    /// Requests removed without running (cancellations).
    pub cancels: u64,
    /// Amortized rebuilds of the cross-tenant score index. Exactly one per
    /// ordered query that follows a decaying `decay_usage` call — if this
    /// grows like `pops`, the lazy-rebuild optimization has regressed.
    pub index_rebuilds: u64,
    /// Incremental updates of the per-device backlog summary (one per
    /// device-tagged push/pop/cancel; never a full queue walk).
    pub backlog_refreshes: u64,
}

/// Total-ordered `f64` wrapper for index keys. Construction normalizes
/// `-0.0` to `+0.0` so `total_cmp`'s `-0 < +0` distinction can never
/// diverge from the IEEE `==` the unindexed comparator used.
#[derive(Debug, Clone, Copy)]
struct Key(f64);

impl Key {
    fn new(v: f64) -> Self {
        Key(v + 0.0)
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Placement tag of a queued request: which lane it lives in and which
/// device's backlog it charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Tag {
    /// No device affinity; eligible for untargeted pops only.
    Free,
    /// Dispatchable work bound to a device's ready set.
    Device(usize),
    /// Provisional reservation charged to a device's backlog but excluded
    /// from that device's dispatch pops.
    Hold(usize),
}

impl Tag {
    /// The device whose backlog this request charges, if any.
    fn device(self) -> Option<usize> {
        match self {
            Tag::Free => None,
            Tag::Device(d) | Tag::Hold(d) => Some(d),
        }
    }
}

/// Within-lane order key: the decay-invariant score component, then the
/// seed comparator's tie-breaks (submission time, insertion sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ReqKey {
    size: Key,
    submitted: Key,
    seq: u64,
}

/// Cross-tenant order key: the full fair-share score of a lane's best
/// request, then the same tie-breaks. Unique per request via `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CrossKey {
    score: Key,
    submitted: Key,
    seq: u64,
}

#[derive(Debug, Clone)]
struct StoredRequest {
    request: QueuedRequest,
    uid: usize,
    tag: Tag,
    seq: u64,
}

/// Blocked order-statistics index over the posted ready-set: an ordered
/// sequence of ~√n-sized chunks, each carrying subtree aggregates (entry
/// count via `Vec::len`, sum of posted `requested_seconds`) so rank
/// queries — "how many posted lane-bests outrank this key, and how many
/// requested seconds do they hold?" — answer in O(√n) chunk hops without
/// touching individual entries, while insert/remove stay an O(log n)
/// search plus one small memmove.
#[derive(Debug, Clone, Default)]
struct RankedReady {
    chunks: Vec<ReadyChunk>,
    len: usize,
}

#[derive(Debug, Clone, Default)]
struct ReadyChunk {
    /// `(posted key, (uid, lane tag), posted best's requested_seconds)` in
    /// ascending key order.
    entries: Vec<(CrossKey, (usize, Tag), f64)>,
    /// Exact sum of `entries`' seconds, recomputed on every mutation so a
    /// remove can never drift the aggregate numerically.
    seconds: f64,
}

impl ReadyChunk {
    fn refresh(&mut self) {
        self.seconds = self.entries.iter().map(|e| e.2).sum();
    }
}

impl RankedReady {
    /// Chunk size tracks √n so both the chunk-list walk and the single
    /// partial-chunk scan of a rank query stay O(√n).
    fn target_chunk(len: usize) -> usize {
        ((len as f64).sqrt() as usize).clamp(16, 4096)
    }

    /// Index of the chunk that contains (or would contain) `key`.
    fn chunk_of(&self, key: &CrossKey) -> usize {
        self.chunks
            .partition_point(|c| c.entries.last().is_some_and(|e| e.0 < *key))
    }

    fn insert(&mut self, key: CrossKey, value: (usize, Tag), seconds: f64) {
        self.len += 1;
        if self.chunks.is_empty() {
            self.chunks.push(ReadyChunk {
                entries: vec![(key, value, seconds)],
                seconds,
            });
            return;
        }
        let idx = self.chunk_of(&key).min(self.chunks.len() - 1);
        let chunk = &mut self.chunks[idx];
        let at = chunk.entries.partition_point(|e| e.0 < key);
        chunk.entries.insert(at, (key, value, seconds));
        if chunk.entries.len() > 2 * Self::target_chunk(self.len) {
            let tail = chunk.entries.split_off(chunk.entries.len() / 2);
            chunk.refresh();
            let mut split = ReadyChunk {
                entries: tail,
                seconds: 0.0,
            };
            split.refresh();
            self.chunks.insert(idx + 1, split);
        } else {
            chunk.refresh();
        }
    }

    fn remove(&mut self, key: &CrossKey) -> bool {
        let idx = self.chunk_of(key);
        let Some(chunk) = self.chunks.get_mut(idx) else {
            return false;
        };
        let at = chunk.entries.partition_point(|e| e.0 < *key);
        if chunk.entries.get(at).map(|e| e.0) != Some(*key) {
            return false;
        }
        chunk.entries.remove(at);
        self.len -= 1;
        if chunk.entries.is_empty() {
            self.chunks.remove(idx);
        } else {
            chunk.refresh();
        }
        true
    }

    /// The lowest-keyed posted entry.
    fn first(&self) -> Option<&(CrossKey, (usize, Tag), f64)> {
        self.chunks.first().and_then(|c| c.entries.first())
    }

    /// All posted entries in ascending key order.
    fn iter(&self) -> impl Iterator<Item = &(CrossKey, (usize, Tag), f64)> {
        self.chunks.iter().flat_map(|c| c.entries.iter())
    }

    /// Posted entries strictly below `key`, in ascending key order.
    fn below<'a>(
        &'a self,
        key: &'a CrossKey,
    ) -> impl Iterator<Item = &'a (CrossKey, (usize, Tag), f64)> + 'a {
        self.iter().take_while(move |e| e.0 < *key)
    }

    /// Rank query: `(count, total requested_seconds)` of posted entries
    /// strictly below `key`, answered from chunk aggregates in O(√n).
    fn rank_below(&self, key: &CrossKey) -> (usize, f64) {
        let mut count = 0usize;
        let mut seconds = 0.0f64;
        for chunk in &self.chunks {
            if chunk.entries.last().is_some_and(|e| e.0 < *key) {
                count += chunk.entries.len();
                seconds += chunk.seconds;
            } else {
                let at = chunk.entries.partition_point(|e| e.0 < *key);
                count += at;
                seconds += chunk.entries[..at].iter().map(|e| e.2).sum::<f64>();
                break;
            }
        }
        (count, seconds)
    }
}

/// One tenant's ordered bucket of requests sharing a placement tag, plus
/// the cross-tenant key its best member is currently posted under.
#[derive(Debug, Clone, Default)]
struct Lane {
    requests: BTreeMap<ReqKey, usize>,
    posted: Option<CrossKey>,
}

#[derive(Debug, Clone)]
struct UserState {
    name: String,
    usage: UserUsage,
    lanes: HashMap<Tag, Lane>,
}

/// A fair-share priority queue over [`QueuedRequest`]s.
///
/// # Examples
///
/// ```
/// use qoncord_cloud::fairshare::{FairShareQueue, QueuedRequest};
///
/// let mut q = FairShareQueue::new();
/// q.record_usage("heavy", 1000.0).unwrap();
/// q.push(QueuedRequest { id: 0, user: "heavy".into(), requested_seconds: 5.0, submitted_at: 0.0 })
///     .unwrap();
/// q.push(QueuedRequest { id: 1, user: "light".into(), requested_seconds: 5.0, submitted_at: 1.0 })
///     .unwrap();
/// // The light user's later submission dequeues first.
/// assert_eq!(q.pop().unwrap().id, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FairShareQueue {
    weights: FairShareWeights,
    /// Tenant name → dense uid into `states`.
    users: HashMap<String, usize>,
    states: Vec<UserState>,
    /// Request id → stored request + index coordinates.
    entries: HashMap<usize, StoredRequest>,
    /// Cross-tenant score index over every lane's best request, with
    /// order-statistics chunk aggregates for rank queries.
    ready_all: RankedReady,
    /// Per-device score index over `Tag::Device` lane bests only.
    ready_by_device: HashMap<usize, BTreeMap<CrossKey, usize>>,
    /// Insertion-order view (seq → id) over every pending request.
    insertion_all: BTreeMap<u64, usize>,
    /// Insertion-order view restricted to a device's dispatchable requests.
    insertion_by_device: HashMap<usize, BTreeMap<u64, usize>>,
    /// Incrementally maintained per-device backlog: sum of queued
    /// `requested_seconds` charged to the device (dispatchable + holds).
    backlog: HashMap<usize, f64>,
    len: usize,
    seq: u64,
    /// Set by a decaying `decay_usage`; cleared by the next ordered query's
    /// amortized index rebuild.
    stale: bool,
    stats: QueueOpStats,
}

impl FairShareQueue {
    /// Creates an empty queue with default weights.
    pub fn new() -> Self {
        FairShareQueue::default()
    }

    /// Creates a queue with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics when any weight is non-finite or `request_size` is negative:
    /// the per-tenant index orders each tenant's requests by
    /// `request_size * requested_seconds`, which must agree with full-score
    /// order for the index to be sound.
    pub fn with_weights(weights: FairShareWeights) -> Self {
        assert!(
            weights.usage.is_finite() && weights.in_flight.is_finite(),
            "fair-share weights must be finite"
        );
        assert!(
            weights.request_size.is_finite() && weights.request_size >= 0.0,
            "request_size weight must be finite and non-negative"
        );
        FairShareQueue {
            weights,
            ..FairShareQueue::default()
        }
    }

    /// The scoring weights this queue dequeues by (admission-time queue
    /// projections must score with exactly these to predict pop order).
    pub fn weights(&self) -> FairShareWeights {
        self.weights
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counters over this queue's operations since construction.
    pub fn stats(&self) -> QueueOpStats {
        self.stats
    }

    fn uid_of(&mut self, user: &str) -> usize {
        if let Some(&uid) = self.users.get(user) {
            return uid;
        }
        let uid = self.states.len();
        self.users.insert(user.to_owned(), uid);
        self.states.push(UserState {
            name: user.to_owned(),
            usage: UserUsage::default(),
            lanes: HashMap::new(),
        });
        uid
    }

    fn score_of(&self, usage: UserUsage, requested_seconds: f64) -> f64 {
        self.weights.usage * usage.consumed_seconds
            + self.weights.in_flight * usage.jobs_in_flight as f64
            + self.weights.request_size * requested_seconds
    }

    fn req_key(&self, request: &QueuedRequest, seq: u64) -> ReqKey {
        ReqKey {
            size: Key::new(self.weights.request_size * request.requested_seconds),
            submitted: Key::new(request.submitted_at),
            seq,
        }
    }

    /// Re-derives the posted cross-tenant key for one lane: removes the old
    /// posting, drops the lane if it emptied, otherwise posts its current
    /// best under a key scored with the tenant's live usage.
    fn repost_lane(&mut self, uid: usize, tag: Tag) {
        let old = match self.states[uid].lanes.get(&tag) {
            Some(lane) => lane.posted,
            None => return,
        };
        if let Some(key) = old {
            self.ready_all.remove(&key);
            if let Tag::Device(d) = tag {
                if let Some(ready) = self.ready_by_device.get_mut(&d) {
                    ready.remove(&key);
                }
            }
        }
        let best = self.states[uid].lanes[&tag]
            .requests
            .first_key_value()
            .map(|(_, &id)| id);
        let Some(id) = best else {
            self.states[uid].lanes.remove(&tag);
            return;
        };
        let entry = &self.entries[&id];
        let seconds = entry.request.requested_seconds;
        let key = CrossKey {
            score: Key::new(self.score_of(self.states[uid].usage, seconds)),
            submitted: Key::new(entry.request.submitted_at),
            seq: entry.seq,
        };
        self.states[uid]
            .lanes
            .get_mut(&tag)
            .expect("lane exists")
            .posted = Some(key);
        self.ready_all.insert(key, (uid, tag), seconds);
        if let Tag::Device(d) = tag {
            self.ready_by_device.entry(d).or_default().insert(key, uid);
        }
    }

    /// Reposts every lane of a tenant — needed whenever the tenant's usage
    /// terms change, since those shift all of its lanes' posted scores.
    fn repost_user(&mut self, uid: usize) {
        let tags: Vec<Tag> = self.states[uid].lanes.keys().copied().collect();
        for tag in tags {
            self.repost_lane(uid, tag);
        }
    }

    /// Performs the amortized cross-tenant index rebuild a decay epoch
    /// deferred. The within-lane order is decay-invariant, so only the
    /// posted lane-best keys need re-deriving.
    fn ensure_fresh(&mut self) {
        if !self.stale {
            return;
        }
        let _prof = qoncord_prof::span("fairshare::rebuild");
        self.stale = false;
        self.stats.index_rebuilds += 1;
        for uid in 0..self.states.len() {
            self.repost_user(uid);
        }
    }

    fn insert_request(&mut self, request: QueuedRequest, tag: Tag) -> Result<(), FairShareError> {
        let _prof = qoncord_prof::span("fairshare::push");
        if !(request.requested_seconds.is_finite() && request.submitted_at.is_finite()) {
            return Err(FairShareError::NonFiniteRequest {
                requested_seconds: request.requested_seconds,
                submitted_at: request.submitted_at,
            });
        }
        if self.entries.contains_key(&request.id) {
            return Err(FairShareError::DuplicateRequestId(request.id));
        }
        let uid = self.uid_of(&request.user);
        self.states[uid].usage.jobs_in_flight += 1;
        let seq = self.seq;
        self.seq += 1;
        if let Some(d) = tag.device() {
            *self.backlog.entry(d).or_insert(0.0) += request.requested_seconds;
            self.stats.backlog_refreshes += 1;
        }
        self.insertion_all.insert(seq, request.id);
        if let Tag::Device(d) = tag {
            self.insertion_by_device
                .entry(d)
                .or_default()
                .insert(seq, request.id);
        }
        let key = self.req_key(&request, seq);
        self.states[uid]
            .lanes
            .entry(tag)
            .or_default()
            .requests
            .insert(key, request.id);
        self.entries.insert(
            request.id,
            StoredRequest {
                request,
                uid,
                tag,
                seq,
            },
        );
        self.len += 1;
        self.stats.pushes += 1;
        self.repost_user(uid);
        Ok(())
    }

    fn remove_request(&mut self, id: usize) -> Option<QueuedRequest> {
        let StoredRequest {
            request,
            uid,
            tag,
            seq,
        } = self.entries.remove(&id)?;
        let key = self.req_key(&request, seq);
        if let Some(lane) = self.states[uid].lanes.get_mut(&tag) {
            lane.requests.remove(&key);
        }
        self.insertion_all.remove(&seq);
        if let Tag::Device(d) = tag {
            if let Some(order) = self.insertion_by_device.get_mut(&d) {
                order.remove(&seq);
            }
        }
        if let Some(d) = tag.device() {
            if let Some(total) = self.backlog.get_mut(&d) {
                *total -= request.requested_seconds;
            }
            self.stats.backlog_refreshes += 1;
        }
        let usage = &mut self.states[uid].usage;
        usage.jobs_in_flight = usage.jobs_in_flight.saturating_sub(1);
        self.len -= 1;
        self.repost_user(uid);
        Some(request)
    }

    /// Records `seconds` of consumption against `user`'s share.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::InvalidSeconds`] when `seconds` is negative
    /// or not finite. Deliberate credits (which *reduce* a user's balance) go
    /// through [`credit_usage`](Self::credit_usage) instead, so an accounting
    /// bug cannot masquerade as a discount.
    pub fn record_usage(&mut self, user: &str, seconds: f64) -> Result<(), FairShareError> {
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(FairShareError::InvalidSeconds(seconds));
        }
        let uid = self.uid_of(user);
        self.states[uid].usage.consumed_seconds += seconds;
        self.repost_user(uid);
        Ok(())
    }

    /// Grants `user` a fair-share credit of `seconds`: their consumption
    /// balance drops by that amount, floating their queued requests. This is
    /// the explicit discount path — priority boosts, eviction compensation —
    /// kept separate from [`record_usage`](Self::record_usage) so only
    /// intentional call sites can lower a balance.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::InvalidSeconds`] when `seconds` is negative
    /// or not finite.
    pub fn credit_usage(&mut self, user: &str, seconds: f64) -> Result<(), FairShareError> {
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(FairShareError::InvalidSeconds(seconds));
        }
        let uid = self.uid_of(user);
        self.states[uid].usage.consumed_seconds -= seconds;
        self.repost_user(uid);
        Ok(())
    }

    /// Ages all users' consumption by `factor` (e.g. nightly decay toward
    /// zero so past-heavy users recover priority).
    ///
    /// Balances are updated eagerly with the same `consumed *= factor`
    /// arithmetic as the reference implementation (keeping them
    /// bit-identical); only the cross-tenant score index is deferred, via a
    /// stale flag consumed by the next ordered query's single amortized
    /// rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::DecayFactorOutOfRange`] when `factor` is
    /// outside `[0, 1]` or not finite.
    pub fn decay_usage(&mut self, factor: f64) -> Result<(), FairShareError> {
        if !(factor.is_finite() && (0.0..=1.0).contains(&factor)) {
            return Err(FairShareError::DecayFactorOutOfRange(factor));
        }
        for state in &mut self.states {
            state.usage.consumed_seconds *= factor;
        }
        if factor < 1.0 {
            self.stale = true;
        }
        Ok(())
    }

    /// Current usage record for a user.
    pub fn usage(&self, user: &str) -> UserUsage {
        self.users
            .get(user)
            .map(|&uid| self.states[uid].usage)
            .unwrap_or_default()
    }

    /// Iterates every user the queue has accounted, with their usage
    /// (arbitrary order — sort before presenting).
    pub fn balances(&self) -> impl Iterator<Item = (&str, UserUsage)> {
        self.states.iter().map(|s| (s.name.as_str(), s.usage))
    }

    /// Iterates the pending requests in insertion order (a dispatcher that
    /// layers its own priority rules over fair-share — e.g. preemption
    /// eligibility — needs to inspect the queue without popping).
    pub fn pending(&self) -> impl Iterator<Item = &QueuedRequest> {
        self.insertion_all
            .values()
            .map(|id| &self.entries[id].request)
    }

    /// Iterates the dispatchable requests bound to `device`, in insertion
    /// order. Holds on the device are excluded — they are not dispatch
    /// candidates.
    pub fn pending_for_device(&self, device: usize) -> impl Iterator<Item = &QueuedRequest> {
        self.insertion_by_device
            .get(&device)
            .into_iter()
            .flat_map(|order| order.values())
            .map(|id| &self.entries[id].request)
    }

    /// The incrementally maintained backlog of `device`: total requested
    /// seconds of queued work charged to it (dispatchable requests and
    /// holds). Clamped at zero against accumulated floating-point drift.
    pub fn device_backlog(&self, device: usize) -> f64 {
        self.backlog.get(&device).copied().unwrap_or(0.0).max(0.0)
    }

    /// The device a queued request is charged to (bound or held), if any.
    pub fn device_of(&self, id: usize) -> Option<usize> {
        self.entries.get(&id).and_then(|e| e.tag.device())
    }

    /// Enqueues an untargeted request and bumps the user's in-flight count.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::NonFiniteRequest`] when the request's
    /// `requested_seconds` or `submitted_at` is not finite, and
    /// [`FairShareError::DuplicateRequestId`] when its id is already queued;
    /// nothing is enqueued in either case.
    pub fn push(&mut self, request: QueuedRequest) -> Result<(), FairShareError> {
        self.insert_request(request, Tag::Free)
    }

    /// Enqueues a request into `device`'s ready set: it charges that
    /// device's backlog and is eligible for
    /// [`pop_for_device`](Self::pop_for_device).
    ///
    /// # Errors
    ///
    /// Same contract as [`push`](Self::push).
    pub fn push_for_device(
        &mut self,
        request: QueuedRequest,
        device: usize,
    ) -> Result<(), FairShareError> {
        self.insert_request(request, Tag::Device(device))
    }

    /// Enqueues a provisional hold on `device`: the request charges the
    /// device's backlog and competes in untargeted pops, but is excluded
    /// from the device's dispatch pops until released
    /// ([`cancel_by_id`](Self::cancel_by_id)).
    ///
    /// # Errors
    ///
    /// Same contract as [`push`](Self::push).
    pub fn push_hold(
        &mut self,
        request: QueuedRequest,
        device: usize,
    ) -> Result<(), FairShareError> {
        self.insert_request(request, Tag::Hold(device))
    }

    /// Fair-share score of a request: lower dequeues sooner.
    pub fn score(&self, request: &QueuedRequest) -> f64 {
        self.score_of(self.usage(&request.user), request.requested_seconds)
    }

    /// Dequeues the request with the lowest score (FIFO on ties) and
    /// releases its in-flight slot. The caller should
    /// [`record_usage`](Self::record_usage) once the job actually runs.
    pub fn pop(&mut self) -> Option<QueuedRequest> {
        let _prof = qoncord_prof::span("fairshare::pop");
        self.ensure_fresh();
        let &(_, (uid, tag), _) = self.ready_all.first()?;
        let id = *self.states[uid].lanes[&tag]
            .requests
            .first_key_value()
            .expect("posted lane is non-empty")
            .1;
        self.stats.pops += 1;
        self.remove_request(id)
    }

    /// Dequeues the lowest-score dispatchable request bound to `device`
    /// (FIFO on ties), releasing its in-flight slot. Holds on the device
    /// are not candidates.
    pub fn pop_for_device(&mut self, device: usize) -> Option<QueuedRequest> {
        let _prof = qoncord_prof::span("fairshare::pop");
        self.ensure_fresh();
        let (_, &uid) = self.ready_by_device.get(&device)?.first_key_value()?;
        let id = *self.states[uid].lanes[&Tag::Device(device)]
            .requests
            .first_key_value()
            .expect("posted lane is non-empty")
            .1;
        self.stats.pops += 1;
        self.remove_request(id)
    }

    /// Dequeues the request with id `id`, releasing its in-flight slot.
    /// Returns `None` when no such request is queued.
    pub fn pop_by_id(&mut self, id: usize) -> Option<QueuedRequest> {
        let _prof = qoncord_prof::span("fairshare::pop");
        let request = self.remove_request(id)?;
        self.stats.pops += 1;
        Some(request)
    }

    /// Removes the request with id `id` without running it, releasing its
    /// in-flight slot. Returns `None` when no such request is queued.
    pub fn cancel_by_id(&mut self, id: usize) -> Option<QueuedRequest> {
        let request = self.remove_request(id)?;
        self.stats.cancels += 1;
        Some(request)
    }

    /// Dequeues the lowest-score request among those matching `pred` (FIFO
    /// on ties), releasing its in-flight slot. Requests failing `pred` stay
    /// queued.
    ///
    /// Candidates are visited in exact pop order by walking lane bests
    /// through a small heap, so the cost is proportional to the number of
    /// rejected candidates, not the queue length. Callers that can name
    /// their target should prefer [`pop_for_device`](Self::pop_for_device)
    /// or [`pop_by_id`](Self::pop_by_id), which skip the walk entirely.
    pub fn pop_where(&mut self, pred: impl Fn(&QueuedRequest) -> bool) -> Option<QueuedRequest> {
        self.ensure_fresh();
        let mut frontier = BinaryHeap::new();
        for &(key, (uid, tag), _) in self.ready_all.iter() {
            let (&req_key, &id) = self.states[uid].lanes[&tag]
                .requests
                .first_key_value()
                .expect("posted lane is non-empty");
            frontier.push(Reverse((key, uid, tag, req_key, id)));
        }
        while let Some(Reverse((_, uid, tag, req_key, id))) = frontier.pop() {
            if pred(&self.entries[&id].request) {
                self.stats.pops += 1;
                return self.remove_request(id);
            }
            let next = self.states[uid].lanes[&tag]
                .requests
                .range((Bound::Excluded(req_key), Bound::Unbounded))
                .next()
                .map(|(&k, &i)| (k, i));
            if let Some((next_key, next_id)) = next {
                let request = &self.entries[&next_id].request;
                let cross = CrossKey {
                    score: Key::new(
                        self.score_of(self.states[uid].usage, request.requested_seconds),
                    ),
                    submitted: Key::new(request.submitted_at),
                    seq: next_key.seq,
                };
                frontier.push(Reverse((cross, uid, tag, next_key, next_id)));
            }
        }
        None
    }

    /// Requeues a request whose granted device time was preempted before it
    /// produced anything: the tenant is credited `burned_seconds` of
    /// fair-share usage as compensation for the delay, so eviction victims
    /// float back up the queue. The caller owns the credit's lifetime —
    /// charge it back (via [`record_usage`](Self::record_usage)) once the
    /// victim is made whole, or it becomes a permanent discount.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::InvalidSeconds`] when `burned_seconds` is
    /// negative or not finite, plus [`push`](Self::push)'s errors for the
    /// request itself; neither the credit nor the enqueue happens on any
    /// rejection.
    pub fn requeue_with_credit(
        &mut self,
        request: QueuedRequest,
        burned_seconds: f64,
    ) -> Result<(), FairShareError> {
        self.requeue_impl(request, Tag::Free, burned_seconds)
    }

    /// [`requeue_with_credit`](Self::requeue_with_credit), but back into
    /// `device`'s ready set — the eviction/requeue path of a dispatcher
    /// whose reservations are device-bound.
    ///
    /// # Errors
    ///
    /// Same contract as [`requeue_with_credit`](Self::requeue_with_credit).
    pub fn requeue_with_credit_for_device(
        &mut self,
        request: QueuedRequest,
        device: usize,
        burned_seconds: f64,
    ) -> Result<(), FairShareError> {
        self.requeue_impl(request, Tag::Device(device), burned_seconds)
    }

    fn requeue_impl(
        &mut self,
        request: QueuedRequest,
        tag: Tag,
        burned_seconds: f64,
    ) -> Result<(), FairShareError> {
        if !(burned_seconds.is_finite() && burned_seconds >= 0.0) {
            return Err(FairShareError::InvalidSeconds(burned_seconds));
        }
        if !(request.requested_seconds.is_finite() && request.submitted_at.is_finite()) {
            return Err(FairShareError::NonFiniteRequest {
                requested_seconds: request.requested_seconds,
                submitted_at: request.submitted_at,
            });
        }
        if self.entries.contains_key(&request.id) {
            return Err(FairShareError::DuplicateRequestId(request.id));
        }
        self.credit_usage(&request.user, burned_seconds)?;
        self.insert_request(request, tag)
    }

    /// Removes every request matching `pred` without running it, releasing
    /// the in-flight slots. Returns the cancelled requests in queue order —
    /// this is the release path when restart triage kills work whose
    /// reservations are still queued. One ordered pass collects the victims;
    /// each removal is an indexed delete, so no tail-shifting rescans.
    pub fn cancel_where(&mut self, pred: impl Fn(&QueuedRequest) -> bool) -> Vec<QueuedRequest> {
        let victims: Vec<usize> = self
            .insertion_all
            .values()
            .filter(|id| pred(&self.entries[id].request))
            .copied()
            .collect();
        victims
            .into_iter()
            .filter_map(|id| {
                let request = self.remove_request(id)?;
                self.stats.cancels += 1;
                Some(request)
            })
            .collect()
    }

    /// Drains the queue in fair-share order.
    pub fn drain_ordered(&mut self) -> Vec<QueuedRequest> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(r) = self.pop() {
            out.push(r);
        }
        out
    }
}

/// A tenant snapshot inside a queue projection: mutable copies of the score
/// terms plus the tenant's requests in within-lane order.
#[derive(Debug, Default)]
struct ProjectedUser {
    consumed: f64,
    in_flight: u32,
    /// `(order key, id, requested_seconds, charged device)` sorted by key.
    requests: Vec<(ReqKey, usize, f64, Option<usize>)>,
    cursor: usize,
}

impl FairShareQueue {
    /// Collects `uid`'s pending requests into `buf` in within-tenant drain
    /// order — `(order key, id, requested_seconds, charged device)` merged
    /// across lanes and sorted by the decay-invariant key. Shared by the
    /// replay snapshot and the rank-query walk so both see the identical
    /// sequence.
    fn tenant_requests_into(&self, uid: usize, buf: &mut Vec<(ReqKey, usize, f64, Option<usize>)>) {
        buf.clear();
        buf.extend(self.states[uid].lanes.iter().flat_map(|(tag, lane)| {
            let device = tag.device();
            lane.requests.iter().map(move |(&key, &id)| {
                (key, id, self.entries[&id].request.requested_seconds, device)
            })
        }));
        buf.sort_unstable_by_key(|a| a.0);
    }

    /// Snapshots every tenant for an analytic drain, indexed parallel to
    /// the internal uid space.
    fn projection_users(&self) -> Vec<ProjectedUser> {
        self.states
            .iter()
            .enumerate()
            .map(|(uid, state)| {
                let mut requests = Vec::new();
                self.tenant_requests_into(uid, &mut requests);
                ProjectedUser {
                    consumed: state.usage.consumed_seconds,
                    in_flight: state.usage.jobs_in_flight,
                    requests,
                    cursor: 0,
                }
            })
            .collect()
    }

    /// Replays the queue's pop loop analytically over tenant snapshots:
    /// repeatedly takes the lowest-scored head, advances that tenant
    /// (releasing its in-flight slot exactly like a real pop), and calls
    /// `visit(id, requested_seconds, device)`; a `false` return stops the
    /// drain. Only the popped tenant's head key changes per step, so a
    /// standard binary heap with reinsertion replays the exact order in
    /// `O(n log u)` instead of the old `O(n^2)` min-rescan.
    fn projected_drain(
        users: &mut [ProjectedUser],
        weights: FairShareWeights,
        mut visit: impl FnMut(usize, f64, Option<usize>) -> bool,
    ) {
        let head_key = |user: &ProjectedUser| {
            let (key, _, secs, _) = user.requests[user.cursor];
            CrossKey {
                score: Key::new(
                    weights.usage * user.consumed
                        + weights.in_flight * user.in_flight as f64
                        + weights.request_size * secs,
                ),
                submitted: key.submitted,
                seq: key.seq,
            }
        };
        let mut heap = BinaryHeap::new();
        for (uid, user) in users.iter().enumerate() {
            if user.cursor < user.requests.len() {
                heap.push(Reverse((head_key(user), uid)));
            }
        }
        while let Some(Reverse((_, uid))) = heap.pop() {
            let user = &mut users[uid];
            let (_, id, secs, device) = user.requests[user.cursor];
            user.cursor += 1;
            user.in_flight = user.in_flight.saturating_sub(1);
            if !visit(id, secs, device) {
                return;
            }
            let user = &users[uid];
            if user.cursor < user.requests.len() {
                heap.push(Reverse((head_key(user), uid)));
            }
        }
    }

    /// Projects the exact id order in which this queue would dispatch its
    /// pending requests if drained right now, with all balances first aged
    /// by `decay_factor` — without cloning or mutating the queue.
    ///
    /// # Panics
    ///
    /// Panics when `decay_factor` is outside `[0, 1]` or not finite.
    pub fn projected_pop_order(&self, decay_factor: f64) -> Vec<usize> {
        assert!(
            decay_factor.is_finite() && (0.0..=1.0).contains(&decay_factor),
            "decay factor must lie in [0, 1], got {decay_factor}"
        );
        let _prof = qoncord_prof::span("fairshare::projection");
        let mut users = self.projection_users();
        for user in &mut users {
            user.consumed *= decay_factor;
        }
        let mut order = Vec::with_capacity(self.len);
        Self::projected_drain(&mut users, self.weights, |id, _, _| {
            order.push(id);
            true
        });
        order
    }

    /// Projects the per-device backlog that would dispatch *ahead of*
    /// `probe` if it were pushed now: credits `probe_credit` seconds to the
    /// probe's tenant, ages every balance by `decay_factor`, virtually
    /// enqueues the probe last, then replays the drain accumulating each
    /// outranking request's `requested_seconds` against the device it is
    /// charged to — all without cloning the queue. Index `d` of the result
    /// is device `d`'s share; requests charged to devices `>= n_devices`
    /// or to no device are dropped, matching the old projection's guard.
    ///
    /// # Panics
    ///
    /// Panics when `decay_factor` is outside `[0, 1]`, `probe_credit` is
    /// negative or not finite, or the probe's fields are not finite.
    pub fn projected_backlog_ahead(
        &self,
        probe: &QueuedRequest,
        probe_credit: f64,
        decay_factor: f64,
        n_devices: usize,
    ) -> Vec<f64> {
        self.backlog_ahead_impl(probe, probe_credit, decay_factor, n_devices, None)
    }

    /// [`projected_backlog_ahead`](Self::projected_backlog_ahead) restricted
    /// to the devices an admission decision actually prices: only devices
    /// listed in `devices` accumulate (other slots of the returned vector
    /// stay `0.0`). Each device's sum is independent of every other
    /// device's, so the listed slots are bit-identical to the full
    /// projection's — this is the rank-query entry point
    /// [`crate::policy::estimate_feasibility_decayed`] rides, avoiding
    /// accumulation work for the hundreds of fleet devices a placement never
    /// touches.
    ///
    /// # Panics
    ///
    /// Same contract as
    /// [`projected_backlog_ahead`](Self::projected_backlog_ahead).
    pub fn projected_backlog_for(
        &self,
        probe: &QueuedRequest,
        probe_credit: f64,
        decay_factor: f64,
        n_devices: usize,
        devices: &[usize],
    ) -> Vec<f64> {
        self.backlog_ahead_impl(probe, probe_credit, decay_factor, n_devices, Some(devices))
    }

    fn backlog_ahead_impl(
        &self,
        probe: &QueuedRequest,
        probe_credit: f64,
        decay_factor: f64,
        n_devices: usize,
        only: Option<&[usize]>,
    ) -> Vec<f64> {
        assert!(
            decay_factor.is_finite() && (0.0..=1.0).contains(&decay_factor),
            "decay factor must lie in [0, 1], got {decay_factor}"
        );
        assert!(
            probe_credit.is_finite() && probe_credit >= 0.0,
            "probe credit must be a non-negative finite number, got {probe_credit}"
        );
        assert!(
            probe.requested_seconds.is_finite() && probe.submitted_at.is_finite(),
            "probe fields must be finite"
        );
        let _prof = qoncord_prof::span("fairshare::projection");
        let fast = self.backlog_ahead_ranked(probe, probe_credit, decay_factor, n_devices, only);
        #[cfg(debug_assertions)]
        {
            let replay =
                self.backlog_ahead_replay(probe, probe_credit, decay_factor, n_devices, only);
            debug_assert!(
                fast.len() == replay.len()
                    && fast
                        .iter()
                        .zip(&replay)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                "rank-query backlog projection diverged from exact replay: \
                 {fast:?} vs {replay:?}"
            );
        }
        fast
    }

    /// The exact-replay oracle: heap-replays the whole drain over tenant
    /// snapshots, exactly as dispatch would pop. Retained as the
    /// `debug_assert` check on every
    /// [`backlog_ahead_ranked`](Self::backlog_ahead_ranked) answer (and as
    /// the reference the equivalence property tests pin against).
    // Only the debug-assert path calls it, so release builds see it as
    // dead; it must stay compiled so the oracle can't rot.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn backlog_ahead_replay(
        &self,
        probe: &QueuedRequest,
        probe_credit: f64,
        decay_factor: f64,
        n_devices: usize,
        only: Option<&[usize]>,
    ) -> Vec<f64> {
        let mut users = self.projection_users();
        let probe_uid = match self.users.get(&probe.user) {
            Some(&uid) => uid,
            None => {
                users.push(ProjectedUser::default());
                users.len() - 1
            }
        };
        // Same op order as the reference projection: credit, then decay,
        // then enqueue the probe (bumping its tenant's in-flight count).
        users[probe_uid].consumed -= probe_credit;
        for user in &mut users {
            user.consumed *= decay_factor;
        }
        users[probe_uid].in_flight += 1;
        let probe_key = self.req_key(probe, self.seq);
        let probe_user = &mut users[probe_uid];
        let at = probe_user
            .requests
            .partition_point(|(key, ..)| *key < probe_key);
        probe_user
            .requests
            .insert(at, (probe_key, probe.id, probe.requested_seconds, None));
        let mut ahead = vec![0.0; n_devices];
        Self::projected_drain(&mut users, self.weights, |id, secs, device| {
            if id == probe.id {
                return false;
            }
            if let Some(d) = device {
                if d < n_devices && only.is_none_or(|list| list.contains(&d)) {
                    ahead[d] += secs;
                }
            }
            true
        });
        ahead
    }

    /// The rank-query fast path behind
    /// [`projected_backlog_ahead`](Self::projected_backlog_ahead):
    /// characterizes the outranking set directly instead of heap-replaying
    /// the whole drain.
    ///
    /// Within one projection every request's effective key is a static
    /// function of its tenant and within-tenant drain position (balances
    /// don't move while draining; the in-flight term depends only on how
    /// many of the tenant's own requests already popped), per-tenant drain
    /// order is forced, and all keys are globally distinct via `seq`. Under
    /// those conditions a request at position `k` of tenant `u` pops before
    /// a request at position `m` of tenant `v` iff `u`'s *prefix-maximum*
    /// key through `k` is below `v`'s through `m` — so the set that
    /// dispatches ahead of the probe is exactly: the probe tenant's own
    /// positions before the probe, plus every other tenant's longest prefix
    /// whose keys stay below the probe's prefix-maximum key `T`, and the
    /// global pop order is ascending `(prefix max, position)`.
    ///
    /// Candidate tenants come from the order-statistics ready index (posted
    /// lane-bests below `T`, enumerated in `O(√n + hits)`) when balances
    /// are fresh and undecayed — a tenant's merged head key is never below
    /// its lanes' minimum posted key, so no candidate is missed — or from a
    /// per-tenant O(1) head test otherwise (the prefix maximum is
    /// nondecreasing, so a tenant whose head clears `T` contributes
    /// nothing). Each candidate is walked only until its first key at or
    /// above `T`, and accumulation replays the exact pop order, keeping
    /// every per-device sum bit-identical to the replay oracle.
    fn backlog_ahead_ranked(
        &self,
        probe: &QueuedRequest,
        probe_credit: f64,
        decay_factor: f64,
        n_devices: usize,
        only: Option<&[usize]>,
    ) -> Vec<f64> {
        let w = self.weights;
        let score = |consumed: f64, in_flight: u32, secs: f64| -> f64 {
            w.usage * consumed + w.in_flight * in_flight as f64 + w.request_size * secs
        };
        let probe_uid = self.users.get(&probe.user).copied();
        let (p_consumed0, p_in_flight0) = probe_uid
            .map(|uid| {
                let usage = self.states[uid].usage;
                (usage.consumed_seconds, usage.jobs_in_flight)
            })
            .unwrap_or((0.0, 0));
        // Same op order as the replay: credit, then decay, then the probe's
        // in-flight bump.
        let p_consumed = (p_consumed0 - probe_credit) * decay_factor;
        let p_in_flight = p_in_flight0 + 1;

        let mut buf = Vec::new();
        if let Some(uid) = probe_uid {
            self.tenant_requests_into(uid, &mut buf);
        }
        let probe_key = self.req_key(probe, self.seq);
        let at = buf.partition_point(|(key, ..)| *key < probe_key);
        buf.insert(at, (probe_key, probe.id, probe.requested_seconds, None));

        // Walk the probe tenant's forced prefix through the probe itself:
        // `t` ends as the probe's prefix-maximum key, and every position
        // before the probe is unconditionally ahead.
        let mut ahead_set: Vec<(CrossKey, u32, f64, Option<usize>)> = Vec::new();
        let mut t: Option<CrossKey> = None;
        let mut in_flight = p_in_flight;
        for (k, &(rk, _, secs, device)) in buf[..=at].iter().enumerate() {
            let key = CrossKey {
                score: Key::new(score(p_consumed, in_flight, secs)),
                submitted: rk.submitted,
                seq: rk.seq,
            };
            let m = t.map_or(key, |prev| prev.max(key));
            t = Some(m);
            if k < at {
                ahead_set.push((m, k as u32, secs, device));
            }
            in_flight = in_flight.saturating_sub(1);
        }
        let t = t.expect("prefix includes the probe");

        let mut candidates: Vec<usize> = Vec::new();
        if decay_factor == 1.0 && !self.stale {
            // Fresh, undecayed balances: posted lane-best keys equal the
            // projection's position-0 keys bit for bit (`consumed * 1.0` is
            // an identity), so the ready index enumerates candidates.
            let (hits, _) = self.ready_all.rank_below(&t);
            if hits > 0 {
                ahead_set.reserve(hits);
                candidates.extend(
                    self.ready_all
                        .below(&t)
                        .map(|&(_, (uid, _), _)| uid)
                        .filter(|&uid| Some(uid) != probe_uid),
                );
                candidates.sort_unstable();
                candidates.dedup();
            }
        } else {
            // Decayed or stale balances shift every posted score, so fall
            // back to one head test per tenant (min lane head by the
            // decay-invariant key, scored live).
            for (uid, state) in self.states.iter().enumerate() {
                if Some(uid) == probe_uid {
                    continue;
                }
                let mut head: Option<(ReqKey, usize)> = None;
                for lane in state.lanes.values() {
                    if let Some((&rk, &id)) = lane.requests.first_key_value() {
                        if head.is_none_or(|(best, _)| rk < best) {
                            head = Some((rk, id));
                        }
                    }
                }
                let Some((rk, id)) = head else { continue };
                let consumed = state.usage.consumed_seconds * decay_factor;
                let secs = self.entries[&id].request.requested_seconds;
                let key = CrossKey {
                    score: Key::new(score(consumed, state.usage.jobs_in_flight, secs)),
                    submitted: rk.submitted,
                    seq: rk.seq,
                };
                if key < t {
                    candidates.push(uid);
                }
            }
        }

        for uid in candidates {
            let state = &self.states[uid];
            let consumed = state.usage.consumed_seconds * decay_factor;
            let mut in_flight = state.usage.jobs_in_flight;
            self.tenant_requests_into(uid, &mut buf);
            let mut m: Option<CrossKey> = None;
            for (k, &(rk, _, secs, device)) in buf.iter().enumerate() {
                let key = CrossKey {
                    score: Key::new(score(consumed, in_flight, secs)),
                    submitted: rk.submitted,
                    seq: rk.seq,
                };
                // The running prefix max below stays under `t` for every
                // pushed position, so the prefix max first reaches `t`
                // exactly at the first key at or above it.
                if key >= t {
                    break;
                }
                let mk = m.map_or(key, |prev| prev.max(key));
                m = Some(mk);
                ahead_set.push((mk, k as u32, secs, device));
                in_flight = in_flight.saturating_sub(1);
            }
        }

        // Replay the exact global pop order: ascending prefix-max key, then
        // within-tenant position (prefix-max keys never tie across tenants,
        // every key being globally unique via `seq`), so each device's sum
        // accumulates in the same order the drain would visit it.
        ahead_set.sort_unstable_by_key(|a| (a.0, a.1));
        let mut ahead = vec![0.0; n_devices];
        for (_, _, secs, device) in ahead_set {
            if let Some(d) = device {
                if d < n_devices && only.is_none_or(|list| list.contains(&d)) {
                    ahead[d] += secs;
                }
            }
        }
        ahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, user: &str, seconds: f64, at: f64) -> QueuedRequest {
        QueuedRequest {
            id,
            user: user.into(),
            requested_seconds: seconds,
            submitted_at: at,
        }
    }

    #[test]
    fn light_users_jump_heavy_users() {
        let mut q = FairShareQueue::new();
        q.record_usage("heavy", 500.0).unwrap();
        q.push(req(0, "heavy", 10.0, 0.0)).unwrap();
        q.push(req(1, "light", 10.0, 5.0)).unwrap();
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 0);
    }

    #[test]
    fn fifo_breaks_ties() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 10.0, 0.0)).unwrap();
        q.push(req(1, "b", 10.0, 1.0)).unwrap();
        assert_eq!(q.pop().unwrap().id, 0);
    }

    #[test]
    fn many_in_flight_jobs_sink_priority() {
        let mut q = FairShareQueue::new();
        for i in 0..5 {
            q.push(req(i, "spammer", 1.0, i as f64)).unwrap();
        }
        q.push(req(99, "newcomer", 1.0, 10.0)).unwrap();
        assert_eq!(q.pop().unwrap().id, 99, "single-job user goes first");
    }

    #[test]
    fn larger_requests_sink() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 1000.0, 0.0)).unwrap();
        q.push(req(1, "b", 1.0, 1.0)).unwrap();
        assert_eq!(q.pop().unwrap().id, 1);
    }

    #[test]
    fn decay_restores_priority() {
        let mut q = FairShareQueue::new();
        q.record_usage("reformed", 1000.0).unwrap();
        q.decay_usage(0.0).unwrap();
        q.push(req(0, "reformed", 5.0, 0.0)).unwrap();
        q.push(req(1, "fresh", 5.0, 1.0)).unwrap();
        // Equal usage now; FIFO decides.
        assert_eq!(q.pop().unwrap().id, 0);
    }

    #[test]
    fn decay_between_pushes_reorders_the_index() {
        // Decay lands while requests are queued: the deferred rebuild must
        // surface the reformed tenant's request first on the next pop.
        let mut q = FairShareQueue::new();
        q.record_usage("reformed", 1000.0).unwrap();
        q.record_usage("steady", 10.0).unwrap();
        q.push(req(0, "reformed", 5.0, 0.0)).unwrap();
        q.push(req(1, "steady", 5.0, 1.0)).unwrap();
        q.decay_usage(0.0).unwrap();
        assert_eq!(q.pop().unwrap().id, 0, "post-decay order wins");
        assert_eq!(q.stats().index_rebuilds, 1);
        q.decay_usage(1.0).unwrap();
        q.pop();
        assert_eq!(
            q.stats().index_rebuilds,
            1,
            "factor 1.0 leaves scores unchanged; no rebuild needed"
        );
    }

    #[test]
    fn pop_releases_in_flight_slot() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 1.0, 0.0)).unwrap();
        assert_eq!(q.usage("a").jobs_in_flight, 1);
        q.pop();
        assert_eq!(q.usage("a").jobs_in_flight, 0);
    }

    #[test]
    fn drain_returns_everything_in_order() {
        let mut q = FairShareQueue::new();
        q.record_usage("x", 100.0).unwrap();
        q.push(req(0, "x", 1.0, 0.0)).unwrap();
        q.push(req(1, "y", 1.0, 1.0)).unwrap();
        q.push(req(2, "z", 1.0, 2.0)).unwrap();
        let order: Vec<usize> = q.drain_ordered().iter().map(|r| r.id).collect();
        assert_eq!(order.len(), 3);
        assert_ne!(order[0], 0, "heavy user cannot be first");
        assert!(q.is_empty());
    }

    #[test]
    fn bad_decay_rejected_with_typed_error() {
        let mut q = FairShareQueue::new();
        assert_eq!(
            q.decay_usage(1.5),
            Err(FairShareError::DecayFactorOutOfRange(1.5))
        );
        assert!(matches!(
            q.decay_usage(f64::NAN),
            Err(FairShareError::DecayFactorOutOfRange(v)) if v.is_nan()
        ));
        assert_eq!(
            q.decay_usage(-0.1),
            Err(FairShareError::DecayFactorOutOfRange(-0.1))
        );
        let err = q.decay_usage(2.0).unwrap_err();
        assert!(err.to_string().contains("decay factor"));
        assert_eq!(q.decay_usage(1.0), Ok(()));
        assert_eq!(q.decay_usage(0.0), Ok(()));
    }

    #[test]
    fn invalid_usage_seconds_rejected_with_typed_error() {
        let mut q = FairShareQueue::new();
        assert_eq!(
            q.record_usage("a", -5.0),
            Err(FairShareError::InvalidSeconds(-5.0))
        );
        assert!(matches!(
            q.record_usage("a", f64::INFINITY),
            Err(FairShareError::InvalidSeconds(_))
        ));
        assert_eq!(
            q.credit_usage("a", -1.0),
            Err(FairShareError::InvalidSeconds(-1.0))
        );
        assert_eq!(
            q.usage("a").consumed_seconds,
            0.0,
            "rejected calls leave the balance untouched"
        );
        let err = q.record_usage("a", f64::NAN).unwrap_err();
        assert!(err.to_string().contains("seconds"));
    }

    #[test]
    fn non_finite_request_rejected_at_push() {
        let mut q = FairShareQueue::new();
        let err = q.push(req(0, "a", f64::NAN, 0.0)).unwrap_err();
        assert!(matches!(err, FairShareError::NonFiniteRequest { .. }));
        assert!(err.to_string().contains("finite"));
        assert!(matches!(
            q.push(req(1, "a", 1.0, f64::INFINITY)),
            Err(FairShareError::NonFiniteRequest { .. })
        ));
        assert!(q.is_empty(), "rejected pushes must not enqueue");
        assert_eq!(
            q.usage("a").jobs_in_flight,
            0,
            "rejected pushes must not charge an in-flight slot"
        );
        assert!(matches!(
            q.push_for_device(req(2, "a", f64::NEG_INFINITY, 0.0), 0),
            Err(FairShareError::NonFiniteRequest { .. })
        ));
        assert_eq!(q.device_backlog(0), 0.0);
    }

    #[test]
    fn duplicate_request_id_rejected() {
        let mut q = FairShareQueue::new();
        q.push(req(7, "a", 1.0, 0.0)).unwrap();
        assert_eq!(
            q.push(req(7, "b", 2.0, 1.0)),
            Err(FairShareError::DuplicateRequestId(7))
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.usage("b").jobs_in_flight, 0);
        // Once popped, the id is free again.
        q.pop().unwrap();
        q.push(req(7, "b", 2.0, 1.0)).unwrap();
        assert_eq!(q.pop().unwrap().user, "b");
    }

    #[test]
    fn credit_lowers_the_balance() {
        let mut q = FairShareQueue::new();
        q.record_usage("a", 10.0).unwrap();
        q.credit_usage("a", 4.0).unwrap();
        assert_eq!(q.usage("a").consumed_seconds, 6.0);
    }

    #[test]
    fn pop_where_skips_non_matching_requests() {
        let mut q = FairShareQueue::new();
        q.record_usage("heavy", 500.0).unwrap();
        q.push(req(0, "heavy", 1.0, 0.0)).unwrap();
        q.push(req(1, "light", 1.0, 1.0)).unwrap();
        // Even though "light" has the better score, a filter on id 0 must
        // return the heavy user's request and leave the other queued.
        assert_eq!(q.pop_where(|r| r.id == 0).unwrap().id, 0);
        assert_eq!(q.len(), 1);
        assert!(q.pop_where(|r| r.id == 7).is_none());
        assert_eq!(q.len(), 1, "non-matching pop leaves the queue intact");
    }

    #[test]
    fn requeue_with_credit_floats_the_victim() {
        let mut q = FairShareQueue::new();
        // Both tenants have identical history; the victim burned 40s of
        // occupancy on an evicted lease, so its requeued request must beat
        // an otherwise-equal earlier submission.
        q.record_usage("victim", 100.0).unwrap();
        q.record_usage("other", 100.0).unwrap();
        q.push(req(0, "other", 10.0, 0.0)).unwrap();
        q.requeue_with_credit(req(1, "victim", 10.0, 5.0), 40.0)
            .unwrap();
        assert_eq!(q.usage("victim").consumed_seconds, 60.0);
        assert_eq!(q.pop().unwrap().id, 1);
    }

    #[test]
    fn negative_burned_credit_rejected_with_typed_error() {
        let mut q = FairShareQueue::new();
        assert_eq!(
            q.requeue_with_credit(req(0, "a", 1.0, 0.0), -1.0),
            Err(FairShareError::InvalidSeconds(-1.0))
        );
        assert!(q.is_empty(), "a rejected requeue must not enqueue");
        assert_eq!(q.usage("a").jobs_in_flight, 0);
        // A bad request must not leave the credit behind either.
        assert!(matches!(
            q.requeue_with_credit(req(0, "a", f64::NAN, 0.0), 5.0),
            Err(FairShareError::NonFiniteRequest { .. })
        ));
        assert_eq!(q.usage("a").consumed_seconds, 0.0);
    }

    #[test]
    fn cancel_where_releases_in_flight_slots() {
        let mut q = FairShareQueue::new();
        for i in 0..4 {
            q.push(req(i, "vqa", 10.0, i as f64)).unwrap();
        }
        q.push(req(9, "other", 10.0, 9.0)).unwrap();
        assert_eq!(q.usage("vqa").jobs_in_flight, 4);
        let cancelled = q.cancel_where(|r| r.user == "vqa" && r.id >= 2);
        assert_eq!(cancelled.iter().map(|r| r.id).collect::<Vec<_>>(), [2, 3]);
        assert_eq!(q.usage("vqa").jobs_in_flight, 2);
        assert_eq!(q.len(), 3);
        assert!(q.cancel_where(|r| r.id == 100).is_empty());
    }

    #[test]
    fn cancel_where_preserves_insertion_order_across_users_and_devices() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 1.0, 0.0)).unwrap();
        q.push_for_device(req(1, "b", 2.0, 1.0), 0).unwrap();
        q.push_hold(req(2, "a", 3.0, 2.0), 1).unwrap();
        q.push(req(3, "c", 4.0, 3.0)).unwrap();
        q.push_for_device(req(4, "b", 5.0, 4.0), 1).unwrap();
        let cancelled = q.cancel_where(|r| r.id != 3);
        assert_eq!(
            cancelled.iter().map(|r| r.id).collect::<Vec<_>>(),
            [0, 1, 2, 4],
            "cancellations come back in insertion order"
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.device_backlog(0), 0.0);
        assert_eq!(q.device_backlog(1), 0.0);
    }

    #[test]
    fn device_pops_serve_only_their_ready_set() {
        let mut q = FairShareQueue::new();
        q.push_for_device(req(0, "a", 1.0, 0.0), 0).unwrap();
        q.push_for_device(req(1, "b", 1.0, 1.0), 1).unwrap();
        q.push(req(2, "c", 1.0, 2.0)).unwrap();
        assert_eq!(q.pop_for_device(1).unwrap().id, 1);
        assert!(q.pop_for_device(1).is_none());
        assert_eq!(q.pop_for_device(0).unwrap().id, 0);
        assert_eq!(q.len(), 1, "untargeted request survives device pops");
        assert_eq!(q.pop().unwrap().id, 2);
    }

    #[test]
    fn device_pop_matches_global_fair_share_order() {
        let mut q = FairShareQueue::new();
        q.record_usage("heavy", 500.0).unwrap();
        q.push_for_device(req(0, "heavy", 1.0, 0.0), 0).unwrap();
        q.push_for_device(req(1, "light", 1.0, 1.0), 0).unwrap();
        // Same ordering contract as pop_where(device == 0) had: fair-share
        // score decides, not insertion.
        assert_eq!(q.pop_for_device(0).unwrap().id, 1);
        assert_eq!(q.pop_for_device(0).unwrap().id, 0);
    }

    #[test]
    fn holds_charge_backlog_but_never_dispatch() {
        let mut q = FairShareQueue::new();
        q.push_hold(req(0, "a", 30.0, 0.0), 0).unwrap();
        q.push_for_device(req(1, "b", 10.0, 1.0), 0).unwrap();
        assert_eq!(q.device_backlog(0), 40.0);
        assert_eq!(q.device_of(0), Some(0));
        assert_eq!(
            q.pop_for_device(0).unwrap().id,
            1,
            "the hold is not a dispatch candidate"
        );
        assert!(q.pop_for_device(0).is_none());
        assert_eq!(q.device_backlog(0), 30.0);
        assert_eq!(q.cancel_by_id(0).unwrap().id, 0);
        assert_eq!(q.device_backlog(0), 0.0);
        assert_eq!(q.usage("a").jobs_in_flight, 0);
    }

    #[test]
    fn pop_by_id_and_cancel_by_id_target_exactly_one_request() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 1.0, 0.0)).unwrap();
        q.push(req(1, "a", 1.0, 1.0)).unwrap();
        assert!(q.pop_by_id(5).is_none());
        assert_eq!(q.pop_by_id(1).unwrap().id, 1);
        assert!(q.cancel_by_id(1).is_none());
        assert_eq!(q.cancel_by_id(0).unwrap().id, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn pending_views_iterate_in_insertion_order() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 3.0, 0.0)).unwrap();
        q.push_for_device(req(1, "b", 2.0, 1.0), 0).unwrap();
        q.push_hold(req(2, "a", 1.0, 2.0), 0).unwrap();
        q.push_for_device(req(3, "c", 4.0, 3.0), 0).unwrap();
        assert_eq!(q.pending().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2, 3]);
        assert_eq!(
            q.pending_for_device(0).map(|r| r.id).collect::<Vec<_>>(),
            [1, 3],
            "holds and untargeted requests are not dispatch candidates"
        );
    }

    #[test]
    fn queue_op_stats_count_the_hot_paths() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 1.0, 0.0)).unwrap();
        q.push_for_device(req(1, "b", 2.0, 1.0), 0).unwrap();
        q.push_hold(req(2, "c", 3.0, 1.5), 0).unwrap();
        q.pop().unwrap();
        q.pop_for_device(0).unwrap();
        q.cancel_by_id(2).unwrap();
        q.decay_usage(0.5).unwrap();
        q.push(req(3, "a", 1.0, 2.0)).unwrap();
        q.pop().unwrap();
        let stats = q.stats();
        assert_eq!(stats.pushes, 4);
        assert_eq!(stats.pops, 3);
        assert_eq!(stats.cancels, 1);
        assert_eq!(stats.index_rebuilds, 1, "one amortized rebuild per epoch");
        // Two device-tagged pushes + their two removals.
        assert_eq!(stats.backlog_refreshes, 4);
    }

    #[test]
    fn projected_pop_order_matches_actual_drain() {
        let mut q = FairShareQueue::new();
        q.record_usage("heavy", 300.0).unwrap();
        q.push(req(0, "heavy", 10.0, 0.0)).unwrap();
        q.push_for_device(req(1, "light", 2.0, 1.0), 0).unwrap();
        q.push_hold(req(2, "light", 5.0, 2.0), 1).unwrap();
        q.push(req(3, "mid", 7.0, 3.0)).unwrap();
        q.record_usage("mid", 50.0).unwrap();
        let projected = q.projected_pop_order(1.0);
        let actual: Vec<usize> = q.clone().drain_ordered().iter().map(|r| r.id).collect();
        assert_eq!(projected, actual);
    }

    #[test]
    fn projected_backlog_ahead_charges_outranking_work_per_device() {
        let mut q = FairShareQueue::new();
        q.record_usage("probe-user", 1000.0).unwrap();
        q.push_for_device(req(0, "a", 10.0, 0.0), 0).unwrap();
        q.push_for_device(req(1, "b", 20.0, 1.0), 1).unwrap();
        q.push_hold(req(2, "c", 5.0, 2.0), 0).unwrap();
        let probe = req(99, "probe-user", 1.0, 3.0);
        // Heavy probe tenant: everything outranks it.
        let ahead = q.projected_backlog_ahead(&probe, 0.0, 1.0, 2);
        assert_eq!(ahead, vec![15.0, 20.0]);
        // A large enough credit floats the probe ahead of everything.
        let ahead = q.projected_backlog_ahead(&probe, 2000.0, 1.0, 2);
        assert_eq!(ahead, vec![0.0, 0.0]);
        // The projection must leave the queue untouched.
        assert_eq!(q.len(), 3);
        assert_eq!(q.usage("probe-user").jobs_in_flight, 0);
    }
}
