//! Fair-share queue ordering (Sec. II-E of the paper).
//!
//! Both cloud access models order pending jobs with fair-share scheduling:
//! a job's priority reflects its user's recent resource consumption, the
//! number of requests they have in flight, and the computation time they
//! request — heavy users sink, light users float. This module implements
//! that ordering for the queue simulator and standalone use.

use std::collections::HashMap;
use std::fmt;

/// Why a [`FairShareQueue`] accounting call rejected a parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FairShareError {
    /// Usage decay factors must lie in `[0, 1]` (1 = no aging, 0 = full
    /// amnesty).
    DecayFactorOutOfRange(f64),
    /// Consumption and credit amounts must be non-negative finite seconds;
    /// a negative or non-finite amount would silently corrupt every later
    /// priority comparison.
    InvalidSeconds(f64),
}

impl fmt::Display for FairShareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairShareError::DecayFactorOutOfRange(v) => {
                write!(f, "decay factor must lie in [0, 1], got {v}")
            }
            FairShareError::InvalidSeconds(v) => {
                write!(f, "seconds must be a non-negative finite number, got {v}")
            }
        }
    }
}

impl std::error::Error for FairShareError {}

/// Per-user accounting the fair-share policy weighs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserUsage {
    /// Device-seconds consumed in the accounting window.
    pub consumed_seconds: f64,
    /// Jobs currently queued or running.
    pub jobs_in_flight: u32,
}

/// A queued request as fair-share sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedRequest {
    /// Request id.
    pub id: usize,
    /// Submitting user.
    pub user: String,
    /// Requested computation time, seconds.
    pub requested_seconds: f64,
    /// Submission time (FIFO tie-break).
    pub submitted_at: f64,
}

/// Weights of the fair-share score; larger scores dequeue later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairShareWeights {
    /// Weight on the user's consumed device-seconds.
    pub usage: f64,
    /// Weight on the user's in-flight job count.
    pub in_flight: f64,
    /// Weight on the requested computation time.
    pub request_size: f64,
}

impl Default for FairShareWeights {
    fn default() -> Self {
        FairShareWeights {
            usage: 1.0,
            in_flight: 10.0,
            request_size: 0.5,
        }
    }
}

/// A fair-share priority queue over [`QueuedRequest`]s.
///
/// # Examples
///
/// ```
/// use qoncord_cloud::fairshare::{FairShareQueue, QueuedRequest};
///
/// let mut q = FairShareQueue::new();
/// q.record_usage("heavy", 1000.0).unwrap();
/// q.push(QueuedRequest { id: 0, user: "heavy".into(), requested_seconds: 5.0, submitted_at: 0.0 });
/// q.push(QueuedRequest { id: 1, user: "light".into(), requested_seconds: 5.0, submitted_at: 1.0 });
/// // The light user's later submission dequeues first.
/// assert_eq!(q.pop().unwrap().id, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FairShareQueue {
    weights: FairShareWeights,
    usage: HashMap<String, UserUsage>,
    pending: Vec<QueuedRequest>,
}

impl FairShareQueue {
    /// Creates an empty queue with default weights.
    pub fn new() -> Self {
        FairShareQueue::default()
    }

    /// Creates a queue with explicit weights.
    pub fn with_weights(weights: FairShareWeights) -> Self {
        FairShareQueue {
            weights,
            ..FairShareQueue::default()
        }
    }

    /// The scoring weights this queue dequeues by (admission-time queue
    /// projections must score with exactly these to predict pop order).
    pub fn weights(&self) -> FairShareWeights {
        self.weights
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Records `seconds` of consumption against `user`'s share.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::InvalidSeconds`] when `seconds` is negative
    /// or not finite. Deliberate credits (which *reduce* a user's balance) go
    /// through [`credit_usage`](Self::credit_usage) instead, so an accounting
    /// bug cannot masquerade as a discount.
    pub fn record_usage(&mut self, user: &str, seconds: f64) -> Result<(), FairShareError> {
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(FairShareError::InvalidSeconds(seconds));
        }
        self.usage
            .entry(user.to_owned())
            .or_default()
            .consumed_seconds += seconds;
        Ok(())
    }

    /// Grants `user` a fair-share credit of `seconds`: their consumption
    /// balance drops by that amount, floating their queued requests. This is
    /// the explicit discount path — priority boosts, eviction compensation —
    /// kept separate from [`record_usage`](Self::record_usage) so only
    /// intentional call sites can lower a balance.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::InvalidSeconds`] when `seconds` is negative
    /// or not finite.
    pub fn credit_usage(&mut self, user: &str, seconds: f64) -> Result<(), FairShareError> {
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(FairShareError::InvalidSeconds(seconds));
        }
        self.usage
            .entry(user.to_owned())
            .or_default()
            .consumed_seconds -= seconds;
        Ok(())
    }

    /// Ages all users' consumption by `factor` (e.g. nightly decay toward
    /// zero so past-heavy users recover priority).
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::DecayFactorOutOfRange`] when `factor` is
    /// outside `[0, 1]` or not finite.
    pub fn decay_usage(&mut self, factor: f64) -> Result<(), FairShareError> {
        if !(factor.is_finite() && (0.0..=1.0).contains(&factor)) {
            return Err(FairShareError::DecayFactorOutOfRange(factor));
        }
        for u in self.usage.values_mut() {
            u.consumed_seconds *= factor;
        }
        Ok(())
    }

    /// Current usage record for a user.
    pub fn usage(&self, user: &str) -> UserUsage {
        self.usage.get(user).copied().unwrap_or_default()
    }

    /// Iterates every user the queue has accounted, with their usage
    /// (arbitrary order — sort before presenting).
    pub fn balances(&self) -> impl Iterator<Item = (&str, UserUsage)> {
        self.usage
            .iter()
            .map(|(user, usage)| (user.as_str(), *usage))
    }

    /// Iterates the pending requests in insertion order (a dispatcher that
    /// layers its own priority rules over fair-share — e.g. preemption
    /// eligibility — needs to inspect the queue without popping).
    pub fn pending(&self) -> impl Iterator<Item = &QueuedRequest> {
        self.pending.iter()
    }

    /// Enqueues a request and bumps the user's in-flight count.
    pub fn push(&mut self, request: QueuedRequest) {
        self.usage
            .entry(request.user.clone())
            .or_default()
            .jobs_in_flight += 1;
        self.pending.push(request);
    }

    /// Fair-share score of a request: lower dequeues sooner.
    pub fn score(&self, request: &QueuedRequest) -> f64 {
        let usage = self.usage(&request.user);
        self.weights.usage * usage.consumed_seconds
            + self.weights.in_flight * usage.jobs_in_flight as f64
            + self.weights.request_size * request.requested_seconds
    }

    /// Dequeues the request with the lowest score (FIFO on ties) and
    /// releases its in-flight slot. The caller should
    /// [`record_usage`](Self::record_usage) once the job actually runs.
    pub fn pop(&mut self) -> Option<QueuedRequest> {
        self.pop_where(|_| true)
    }

    /// Dequeues the lowest-score request among those matching `pred` (FIFO
    /// on ties), releasing its in-flight slot. Requests failing `pred` stay
    /// queued. This is how a dispatcher serving several devices from one
    /// queue grants work for a specific device.
    pub fn pop_where(&mut self, pred: impl Fn(&QueuedRequest) -> bool) -> Option<QueuedRequest> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, r)| pred(r))
            .min_by(|a, b| {
                let sa = self.score(a.1);
                let sb = self.score(b.1);
                sa.partial_cmp(&sb).expect("finite scores").then(
                    a.1.submitted_at
                        .partial_cmp(&b.1.submitted_at)
                        .expect("finite times"),
                )
            })
            .map(|(i, _)| i)?;
        let request = self.pending.remove(best);
        if let Some(u) = self.usage.get_mut(&request.user) {
            u.jobs_in_flight = u.jobs_in_flight.saturating_sub(1);
        }
        Some(request)
    }

    /// Requeues a request whose granted device time was preempted before it
    /// produced anything: the tenant is credited `burned_seconds` of
    /// fair-share usage as compensation for the delay, so eviction victims
    /// float back up the queue. The caller owns the credit's lifetime —
    /// charge it back (via [`record_usage`](Self::record_usage)) once the
    /// victim is made whole, or it becomes a permanent discount.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::InvalidSeconds`] when `burned_seconds` is
    /// negative or not finite; the request is not enqueued in that case.
    pub fn requeue_with_credit(
        &mut self,
        request: QueuedRequest,
        burned_seconds: f64,
    ) -> Result<(), FairShareError> {
        self.credit_usage(&request.user, burned_seconds)?;
        self.push(request);
        Ok(())
    }

    /// Removes every request matching `pred` without running it, releasing
    /// the in-flight slots. Returns the cancelled requests in queue order —
    /// this is the release path when restart triage kills work whose
    /// reservations are still queued.
    pub fn cancel_where(&mut self, pred: impl Fn(&QueuedRequest) -> bool) -> Vec<QueuedRequest> {
        let mut cancelled = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if pred(&self.pending[i]) {
                cancelled.push(self.pending.remove(i));
            } else {
                i += 1;
            }
        }
        for request in &cancelled {
            if let Some(u) = self.usage.get_mut(&request.user) {
                u.jobs_in_flight = u.jobs_in_flight.saturating_sub(1);
            }
        }
        cancelled
    }

    /// Drains the queue in fair-share order.
    pub fn drain_ordered(&mut self) -> Vec<QueuedRequest> {
        let mut out = Vec::with_capacity(self.pending.len());
        while let Some(r) = self.pop() {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, user: &str, seconds: f64, at: f64) -> QueuedRequest {
        QueuedRequest {
            id,
            user: user.into(),
            requested_seconds: seconds,
            submitted_at: at,
        }
    }

    #[test]
    fn light_users_jump_heavy_users() {
        let mut q = FairShareQueue::new();
        q.record_usage("heavy", 500.0).unwrap();
        q.push(req(0, "heavy", 10.0, 0.0));
        q.push(req(1, "light", 10.0, 5.0));
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 0);
    }

    #[test]
    fn fifo_breaks_ties() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 10.0, 0.0));
        q.push(req(1, "b", 10.0, 1.0));
        assert_eq!(q.pop().unwrap().id, 0);
    }

    #[test]
    fn many_in_flight_jobs_sink_priority() {
        let mut q = FairShareQueue::new();
        for i in 0..5 {
            q.push(req(i, "spammer", 1.0, i as f64));
        }
        q.push(req(99, "newcomer", 1.0, 10.0));
        assert_eq!(q.pop().unwrap().id, 99, "single-job user goes first");
    }

    #[test]
    fn larger_requests_sink() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 1000.0, 0.0));
        q.push(req(1, "b", 1.0, 1.0));
        assert_eq!(q.pop().unwrap().id, 1);
    }

    #[test]
    fn decay_restores_priority() {
        let mut q = FairShareQueue::new();
        q.record_usage("reformed", 1000.0).unwrap();
        q.decay_usage(0.0).unwrap();
        q.push(req(0, "reformed", 5.0, 0.0));
        q.push(req(1, "fresh", 5.0, 1.0));
        // Equal usage now; FIFO decides.
        assert_eq!(q.pop().unwrap().id, 0);
    }

    #[test]
    fn pop_releases_in_flight_slot() {
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 1.0, 0.0));
        assert_eq!(q.usage("a").jobs_in_flight, 1);
        q.pop();
        assert_eq!(q.usage("a").jobs_in_flight, 0);
    }

    #[test]
    fn drain_returns_everything_in_order() {
        let mut q = FairShareQueue::new();
        q.record_usage("x", 100.0).unwrap();
        q.push(req(0, "x", 1.0, 0.0));
        q.push(req(1, "y", 1.0, 1.0));
        q.push(req(2, "z", 1.0, 2.0));
        let order: Vec<usize> = q.drain_ordered().iter().map(|r| r.id).collect();
        assert_eq!(order.len(), 3);
        assert_ne!(order[0], 0, "heavy user cannot be first");
        assert!(q.is_empty());
    }

    #[test]
    fn bad_decay_rejected_with_typed_error() {
        let mut q = FairShareQueue::new();
        assert_eq!(
            q.decay_usage(1.5),
            Err(FairShareError::DecayFactorOutOfRange(1.5))
        );
        assert!(matches!(
            q.decay_usage(f64::NAN),
            Err(FairShareError::DecayFactorOutOfRange(v)) if v.is_nan()
        ));
        assert_eq!(
            q.decay_usage(-0.1),
            Err(FairShareError::DecayFactorOutOfRange(-0.1))
        );
        let err = q.decay_usage(2.0).unwrap_err();
        assert!(err.to_string().contains("decay factor"));
        assert_eq!(q.decay_usage(1.0), Ok(()));
        assert_eq!(q.decay_usage(0.0), Ok(()));
    }

    #[test]
    fn invalid_usage_seconds_rejected_with_typed_error() {
        let mut q = FairShareQueue::new();
        assert_eq!(
            q.record_usage("a", -5.0),
            Err(FairShareError::InvalidSeconds(-5.0))
        );
        assert!(matches!(
            q.record_usage("a", f64::INFINITY),
            Err(FairShareError::InvalidSeconds(_))
        ));
        assert_eq!(
            q.credit_usage("a", -1.0),
            Err(FairShareError::InvalidSeconds(-1.0))
        );
        assert_eq!(
            q.usage("a").consumed_seconds,
            0.0,
            "rejected calls leave the balance untouched"
        );
        let err = q.record_usage("a", f64::NAN).unwrap_err();
        assert!(err.to_string().contains("seconds"));
    }

    #[test]
    fn credit_lowers_the_balance() {
        let mut q = FairShareQueue::new();
        q.record_usage("a", 10.0).unwrap();
        q.credit_usage("a", 4.0).unwrap();
        assert_eq!(q.usage("a").consumed_seconds, 6.0);
    }

    #[test]
    fn pop_where_skips_non_matching_requests() {
        let mut q = FairShareQueue::new();
        q.record_usage("heavy", 500.0).unwrap();
        q.push(req(0, "heavy", 1.0, 0.0));
        q.push(req(1, "light", 1.0, 1.0));
        // Even though "light" has the better score, a filter on id 0 must
        // return the heavy user's request and leave the other queued.
        assert_eq!(q.pop_where(|r| r.id == 0).unwrap().id, 0);
        assert_eq!(q.len(), 1);
        assert!(q.pop_where(|r| r.id == 7).is_none());
        assert_eq!(q.len(), 1, "non-matching pop leaves the queue intact");
    }

    #[test]
    fn requeue_with_credit_floats_the_victim() {
        let mut q = FairShareQueue::new();
        // Both tenants have identical history; the victim burned 40s of
        // occupancy on an evicted lease, so its requeued request must beat
        // an otherwise-equal earlier submission.
        q.record_usage("victim", 100.0).unwrap();
        q.record_usage("other", 100.0).unwrap();
        q.push(req(0, "other", 10.0, 0.0));
        q.requeue_with_credit(req(1, "victim", 10.0, 5.0), 40.0)
            .unwrap();
        assert_eq!(q.usage("victim").consumed_seconds, 60.0);
        assert_eq!(q.pop().unwrap().id, 1);
    }

    #[test]
    fn negative_burned_credit_rejected_with_typed_error() {
        let mut q = FairShareQueue::new();
        assert_eq!(
            q.requeue_with_credit(req(0, "a", 1.0, 0.0), -1.0),
            Err(FairShareError::InvalidSeconds(-1.0))
        );
        assert!(q.is_empty(), "a rejected requeue must not enqueue");
        assert_eq!(q.usage("a").jobs_in_flight, 0);
    }

    #[test]
    fn cancel_where_releases_in_flight_slots() {
        let mut q = FairShareQueue::new();
        for i in 0..4 {
            q.push(req(i, "vqa", 10.0, i as f64));
        }
        q.push(req(9, "other", 10.0, 9.0));
        assert_eq!(q.usage("vqa").jobs_in_flight, 4);
        let cancelled = q.cancel_where(|r| r.user == "vqa" && r.id >= 2);
        assert_eq!(cancelled.iter().map(|r| r.id).collect::<Vec<_>>(), [2, 3]);
        assert_eq!(q.usage("vqa").jobs_in_flight, 2);
        assert_eq!(q.len(), 3);
        assert!(q.cancel_where(|r| r.id == 100).is_empty());
    }
}
