//! Cloud job model (Sec. II-E and V-F of the paper).
//!
//! Two job shapes exist on quantum clouds: *independent tasks* submitted to
//! the shared queue and executed once, and *runtime sessions* that submit
//! batches of circuit executions with think-time gaps between batches —
//! gaps other jobs may slot into.

/// The shape of a job's execution.
///
/// # Examples
///
/// ```
/// use qoncord_cloud::job::{JobKind, JobSpec};
///
/// let session = JobKind::RuntimeSession {
///     n_batches: 10,
///     circuits_per_batch: 30,
///     inter_batch_delay: 1.0,
/// };
/// assert!(session.is_session());
/// assert_eq!(session.total_circuits(), 300);
/// let spec = JobSpec {
///     id: 0,
///     arrival: 5.0,
///     kind: session,
///     seconds_per_circuit: 0.1,
///     is_vqa: true,
/// };
/// assert_eq!(spec.nominal_busy_time(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobKind {
    /// A one-shot task of `n_circuits` circuit executions.
    Independent {
        /// Number of circuit executions.
        n_circuits: u32,
    },
    /// A runtime session: `n_batches` batches of `circuits_per_batch`
    /// executions, separated by `inter_batch_delay` seconds of classical
    /// think time (the optimizer update).
    RuntimeSession {
        /// Number of batches (≈ optimizer iterations).
        n_batches: u32,
        /// Circuit executions per batch.
        circuits_per_batch: u32,
        /// Classical think time between batches, seconds.
        inter_batch_delay: f64,
    },
}

impl JobKind {
    /// Total circuit executions the job nominally needs.
    pub fn total_circuits(&self) -> u64 {
        match *self {
            JobKind::Independent { n_circuits } => n_circuits as u64,
            JobKind::RuntimeSession {
                n_batches,
                circuits_per_batch,
                ..
            } => n_batches as u64 * circuits_per_batch as u64,
        }
    }

    /// Returns `true` for runtime sessions (the VQA-style jobs Qoncord
    /// phase-splits).
    pub fn is_session(&self) -> bool {
        matches!(self, JobKind::RuntimeSession { .. })
    }
}

/// A job submitted to the cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique id.
    pub id: usize,
    /// Arrival (submission) time, seconds.
    pub arrival: f64,
    /// Execution shape.
    pub kind: JobKind,
    /// Seconds per circuit execution on a reference-speed device (the 3×
    /// empirical variation of Sec. V-F is already folded in per job).
    pub seconds_per_circuit: f64,
    /// Whether this is a VQA workload (splittable into exploration and
    /// fine-tuning phases by the Qoncord policy).
    pub is_vqa: bool,
}

impl JobSpec {
    /// Total nominal circuit executions.
    pub fn total_circuits(&self) -> u64 {
        self.kind.total_circuits()
    }

    /// Nominal busy time on a reference-speed device, seconds (excluding
    /// think-time gaps).
    pub fn nominal_busy_time(&self) -> f64 {
        self.total_circuits() as f64 * self.seconds_per_circuit
    }
}

/// Outcome of one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job id.
    pub id: usize,
    /// Completion (last circuit finished) time, seconds.
    pub completion: f64,
    /// Circuit executions actually performed (≥ nominal for EQC).
    pub executed_circuits: u64,
    /// Effective execution fidelity delivered to the job.
    pub fidelity: f64,
}

impl JobOutcome {
    /// Turnaround time given the job's arrival.
    pub fn turnaround(&self, spec: &JobSpec) -> f64 {
        self.completion - spec.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let ind = JobKind::Independent { n_circuits: 7 };
        assert_eq!(ind.total_circuits(), 7);
        assert!(!ind.is_session());
        let sess = JobKind::RuntimeSession {
            n_batches: 10,
            circuits_per_batch: 4,
            inter_batch_delay: 2.0,
        };
        assert_eq!(sess.total_circuits(), 40);
        assert!(sess.is_session());
    }

    #[test]
    fn busy_time_scales_with_circuits() {
        let spec = JobSpec {
            id: 0,
            arrival: 0.0,
            kind: JobKind::Independent { n_circuits: 10 },
            seconds_per_circuit: 0.5,
            is_vqa: false,
        };
        assert!((spec.nominal_busy_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn turnaround_subtracts_arrival() {
        let spec = JobSpec {
            id: 1,
            arrival: 3.0,
            kind: JobKind::Independent { n_circuits: 1 },
            seconds_per_circuit: 1.0,
            is_vqa: false,
        };
        let outcome = JobOutcome {
            id: 1,
            completion: 10.0,
            executed_circuits: 1,
            fidelity: 0.8,
        };
        assert!((outcome.turnaround(&spec) - 7.0).abs() < 1e-12);
    }
}
