//! # qoncord-cloud
//!
//! Discrete-event quantum-cloud queue simulation for the Qoncord
//! reproduction (Sec. V-F and Fig. 12 of the paper):
//!
//! - [`job`] — independent tasks and runtime sessions (batches with
//!   think-time gaps).
//! - [`device`] — interval-scheduled devices with gap filling, plus the
//!   10-device hypothetical fleet (fidelities 0.3–0.9).
//! - [`workload`] — the 1000-job pseudo workload with a sweepable VQA ratio
//!   and 3× execution-time variation.
//! - [`policy`] — Least Busy, Load Weighted, Fidelity Weighted, Best
//!   Fidelity, EQC, and Qoncord placement.
//! - [`sim`] — the simulator producing (throughput, relative fidelity)
//!   points.
//!
//! ## Example
//!
//! ```
//! use qoncord_cloud::device::hypothetical_fleet;
//! use qoncord_cloud::policy::Policy;
//! use qoncord_cloud::sim::simulate;
//! use qoncord_cloud::workload::{generate_workload, WorkloadConfig};
//!
//! let jobs = generate_workload(&WorkloadConfig { n_jobs: 100, ..WorkloadConfig::default() });
//! let fleet = hypothetical_fleet(10, 0.3, 0.9);
//! let result = simulate(Policy::Qoncord, &jobs, &fleet, 7);
//! assert!(result.throughput() > 0.0);
//! assert!(result.mean_relative_fidelity(0.9) > 0.5);
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod fairshare;
pub mod job;
pub mod policy;
pub mod reference;
pub mod sim;
pub mod workload;

pub use device::{hypothetical_fleet, CloudDevice};
pub use fairshare::{
    FairShareError, FairShareQueue, FairShareWeights, QueueOpStats, QueuedRequest,
};
pub use job::{JobKind, JobOutcome, JobSpec};
pub use policy::{
    estimate_feasibility, estimate_feasibility_decayed, merge_shard_results, place_job,
    projected_dispatch_order, split_restarts, FeasibilityEstimate, Placement, Policy, QueueModel,
    ShardPlacement, UsageDecayModel,
};
pub use reference::ReferenceFairShareQueue;
pub use sim::{simulate, SimulationResult};
pub use workload::{generate_workload, WorkloadConfig};
