//! The cloud scheduling policies of Sec. V-A: Least Busy, Load Weighted,
//! Fidelity Weighted, Best Fidelity, EQC (ensemble/asynchronous execution),
//! and Qoncord (phase splitting).

use crate::device::CloudDevice;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// A cloud scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Always the least-loaded device (throughput-first).
    LeastBusy,
    /// Random, weighted toward less-loaded devices.
    LoadWeighted,
    /// Random, weighted toward higher-fidelity devices (the organic user
    /// access pattern).
    FidelityWeighted,
    /// Always one of the highest-fidelity devices (quality-first).
    BestFidelity,
    /// EQC-style ensemble execution: least-busy placement but 2× circuit
    /// executions for VQA jobs, with quality limited by the fidelity
    /// *average* of the ensemble.
    Eqc,
    /// Qoncord: exploration circuits on a low-fidelity low-load device,
    /// fine-tuning circuits on a high-fidelity device; early termination
    /// trims the exploration tail.
    Qoncord,
}

impl Policy {
    /// All six policies, in the paper's presentation order.
    pub fn all() -> [Policy; 6] {
        [
            Policy::LeastBusy,
            Policy::LoadWeighted,
            Policy::FidelityWeighted,
            Policy::BestFidelity,
            Policy::Eqc,
            Policy::Qoncord,
        ]
    }

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::LeastBusy => "Least Busy",
            Policy::LoadWeighted => "Load Weighted",
            Policy::FidelityWeighted => "Fidelity Weighted",
            Policy::BestFidelity => "Best Fidelity",
            Policy::Eqc => "EQC",
            Policy::Qoncord => "Qoncord",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Fraction of a VQA job's circuits Qoncord runs as exploration on the
/// low-fidelity device (Fig. 14 measures ≈ 70 % of executions on the LF
/// device).
pub const QONCORD_EXPLORATION_FRACTION: f64 = 0.7;

/// Fraction of exploration circuits Qoncord's restart triage eliminates
/// (Fig. 13: 31 of 50 restarts are cut after exploration, trimming their
/// fine-tuning work; net execution savings land near 15 %).
pub const QONCORD_TERMINATION_SAVINGS: f64 = 0.15;

/// Quality mixing for Qoncord jobs: solution quality tracks the fine-tuning
/// device (the paper's central claim), with a small exploration residue.
pub const QONCORD_FINETUNE_WEIGHT: f64 = 0.92;

/// EQC's circuit-execution multiplier (the paper: "twice the number of
/// tasks... the minimum overhead for a 1-layer QAOA").
pub const EQC_CIRCUIT_MULTIPLIER: f64 = 2.0;

/// One placement decision: a device, the circuits to run there, and the
/// fidelity weight those circuits contribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Target device index.
    pub device: usize,
    /// Circuit executions to run there.
    pub circuits: u64,
    /// Weight of this placement in the job's effective fidelity.
    pub quality_weight: f64,
}

/// Chooses placements for a job's `total_circuits` under `policy`.
///
/// `now` is the decision time (loads are evaluated at `now`). For split
/// policies (Qoncord) multiple placements are returned; their circuit counts
/// need not sum to `total_circuits` (EQC doubles, Qoncord trims).
///
/// # Panics
///
/// Panics if `devices` is empty.
pub fn place_job(
    policy: Policy,
    devices: &[CloudDevice],
    total_circuits: u64,
    is_vqa: bool,
    now: f64,
    rng: &mut StdRng,
) -> Vec<Placement> {
    assert!(!devices.is_empty(), "no devices available");
    match policy {
        Policy::LeastBusy => vec![Placement {
            device: least_busy(devices, now),
            circuits: total_circuits,
            quality_weight: 1.0,
        }],
        Policy::BestFidelity => {
            let best = devices
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.fidelity()
                        .partial_cmp(&b.1.fidelity())
                        .expect("finite fidelity")
                })
                .map(|(i, _)| i)
                .expect("non-empty");
            vec![Placement {
                device: best,
                circuits: total_circuits,
                quality_weight: 1.0,
            }]
        }
        Policy::LoadWeighted => {
            let weights: Vec<f64> = devices
                .iter()
                .map(|d| 1.0 / (1.0 + d.load_after(now)))
                .collect();
            vec![Placement {
                device: weighted_choice(&weights, rng),
                circuits: total_circuits,
                quality_weight: 1.0,
            }]
        }
        Policy::FidelityWeighted => {
            // Quadratic weighting mirrors users' strong preference for the
            // best machines.
            let weights: Vec<f64> = devices.iter().map(|d| d.fidelity().powi(2)).collect();
            vec![Placement {
                device: weighted_choice(&weights, rng),
                circuits: total_circuits,
                quality_weight: 1.0,
            }]
        }
        Policy::Eqc => {
            if !is_vqa {
                return vec![Placement {
                    device: least_busy(devices, now),
                    circuits: total_circuits,
                    quality_weight: 1.0,
                }];
            }
            // Ensemble over the two least-busy devices, 2× total circuits,
            // quality limited by the ensemble average.
            let first = least_busy(devices, now);
            let second = least_busy_excluding(devices, now, first);
            let doubled = (total_circuits as f64 * EQC_CIRCUIT_MULTIPLIER).round() as u64;
            let half = doubled / 2;
            vec![
                Placement {
                    device: first,
                    circuits: half,
                    quality_weight: 0.5,
                },
                Placement {
                    device: second,
                    circuits: doubled - half,
                    quality_weight: 0.5,
                },
            ]
        }
        Policy::Qoncord => {
            if !is_vqa {
                return vec![Placement {
                    device: least_busy(devices, now),
                    circuits: total_circuits,
                    quality_weight: 1.0,
                }];
            }
            // Exploration: least-busy device in the lower fidelity half.
            // Fine-tune: least-busy device within 5 % of the fleet's best
            // fidelity (the paper's "the high-fidelity device").
            let explore_dev =
                least_busy_among(devices, now, |d| d.fidelity() <= median_fidelity(devices))
                    .unwrap_or_else(|| least_busy(devices, now));
            let max_fidelity = devices.iter().map(|d| d.fidelity()).fold(0.0_f64, f64::max);
            let finetune_dev =
                least_busy_among(devices, now, |d| d.fidelity() >= 0.95 * max_fidelity)
                    .unwrap_or_else(|| least_busy(devices, now));
            let kept = 1.0 - QONCORD_TERMINATION_SAVINGS;
            let total_after_triage = total_circuits as f64 * kept;
            let explore = (total_after_triage * QONCORD_EXPLORATION_FRACTION).round() as u64;
            let finetune = (total_after_triage as u64).saturating_sub(explore).max(1);
            vec![
                Placement {
                    device: explore_dev,
                    circuits: explore,
                    quality_weight: 1.0 - QONCORD_FINETUNE_WEIGHT,
                },
                Placement {
                    device: finetune_dev,
                    circuits: finetune,
                    quality_weight: QONCORD_FINETUNE_WEIGHT,
                },
            ]
        }
    }
}

/// Projected timing of a job's placements over live device loads: when its
/// first placement could start, how much device time the job needs in total,
/// and when its last placement would finish.
///
/// This is the cost model deadline-aware admission control runs before
/// accepting a job: compare [`completion`](FeasibilityEstimate::completion)
/// (plus any safety margin) against the job's deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasibilityEstimate {
    /// Seconds between the decision time and the projected first start.
    pub queue_seconds: f64,
    /// Total device-seconds of service across all placements.
    pub service_seconds: f64,
    /// Projected completion time (absolute, same clock as `now`).
    pub completion: f64,
}

impl FeasibilityEstimate {
    /// Seconds of headroom left before `deadline` (negative when the job is
    /// projected to miss it).
    pub fn slack(&self, deadline: f64) -> f64 {
        deadline - self.completion
    }

    /// Whether the projected completion (inflated by `margin` seconds of
    /// safety) lands at or before `deadline`.
    pub fn meets(&self, deadline: f64, margin: f64) -> bool {
        self.completion + margin <= deadline
    }
}

/// Projects when a job placed as `placements` would complete, given each
/// device's committed backlog and per-circuit execution time.
///
/// Placements are assumed to run in order (Qoncord's exploration block
/// precedes its fine-tuning block): each starts once its device's backlog
/// has drained *and* the previous placement has finished.
///
/// # Panics
///
/// Panics if a placement's device index has no entry in `devices` /
/// `seconds_per_circuit`.
pub fn estimate_feasibility(
    placements: &[Placement],
    devices: &[CloudDevice],
    seconds_per_circuit: &[f64],
    now: f64,
) -> FeasibilityEstimate {
    assert_eq!(
        devices.len(),
        seconds_per_circuit.len(),
        "one per-circuit time per device"
    );
    let mut previous_finish = now;
    let mut first_start = None;
    let mut service_seconds = 0.0;
    for p in placements {
        let backlog_clear = now + devices[p.device].load_after(now);
        let start = backlog_clear.max(previous_finish);
        first_start.get_or_insert(start);
        let run = p.circuits as f64 * seconds_per_circuit[p.device];
        service_seconds += run;
        previous_finish = start + run;
    }
    FeasibilityEstimate {
        queue_seconds: first_start.unwrap_or(now) - now,
        service_seconds,
        completion: previous_finish,
    }
}

fn least_busy(devices: &[CloudDevice], now: f64) -> usize {
    devices
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.load_after(now)
                .partial_cmp(&b.1.load_after(now))
                .expect("finite load")
        })
        .map(|(i, _)| i)
        .expect("non-empty")
}

fn least_busy_excluding(devices: &[CloudDevice], now: f64, excluded: usize) -> usize {
    devices
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != excluded)
        .min_by(|a, b| {
            a.1.load_after(now)
                .partial_cmp(&b.1.load_after(now))
                .expect("finite load")
        })
        .map(|(i, _)| i)
        .unwrap_or(excluded)
}

fn least_busy_among(
    devices: &[CloudDevice],
    now: f64,
    filter: impl Fn(&CloudDevice) -> bool,
) -> Option<usize> {
    devices
        .iter()
        .enumerate()
        .filter(|(_, d)| filter(d))
        .min_by(|a, b| {
            a.1.load_after(now)
                .partial_cmp(&b.1.load_after(now))
                .expect("finite load")
        })
        .map(|(i, _)| i)
}

fn median_fidelity(devices: &[CloudDevice]) -> f64 {
    let mut f: Vec<f64> = devices.iter().map(|d| d.fidelity()).collect();
    f.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    f[f.len() / 2]
}

fn weighted_choice(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut r = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        r -= w;
        if r <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::hypothetical_fleet;
    use rand::SeedableRng;

    fn fleet() -> Vec<CloudDevice> {
        hypothetical_fleet(10, 0.3, 0.9)
    }

    #[test]
    fn least_busy_prefers_idle_device() {
        let mut devices = fleet();
        for d in devices.iter_mut().take(9) {
            d.schedule(0.0, 100.0);
        }
        let mut rng = StdRng::seed_from_u64(0);
        let p = place_job(Policy::LeastBusy, &devices, 10, true, 0.0, &mut rng);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].device, 9);
    }

    #[test]
    fn best_fidelity_always_picks_top_device() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            let p = place_job(Policy::BestFidelity, &devices, 10, false, 0.0, &mut rng);
            assert_eq!(p[0].device, 9);
        }
    }

    #[test]
    fn qoncord_splits_vqa_jobs_across_tiers() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(0);
        let p = place_job(Policy::Qoncord, &devices, 100, true, 0.0, &mut rng);
        assert_eq!(p.len(), 2);
        let (explore, finetune) = (&p[0], &p[1]);
        assert!(devices[explore.device].fidelity() < devices[finetune.device].fidelity());
        // ~70 % of (triage-trimmed) circuits on the LF device.
        assert!(explore.circuits > finetune.circuits);
        // Quality weighting is dominated by the fine-tune device.
        assert!(finetune.quality_weight > 0.9);
        // Termination savings: fewer total circuits than nominal.
        assert!(explore.circuits + finetune.circuits < 100);
    }

    #[test]
    fn qoncord_routes_non_vqa_like_least_busy() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(0);
        let p = place_job(Policy::Qoncord, &devices, 10, false, 0.0, &mut rng);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].circuits, 10);
    }

    #[test]
    fn eqc_doubles_vqa_circuits() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(0);
        let p = place_job(Policy::Eqc, &devices, 50, true, 0.0, &mut rng);
        let total: u64 = p.iter().map(|x| x.circuits).sum();
        assert_eq!(total, 100);
        assert_eq!(p.len(), 2);
        assert_ne!(p[0].device, p[1].device);
    }

    #[test]
    fn fidelity_weighted_skews_toward_good_devices() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits_top_half = 0;
        let n = 2000;
        for _ in 0..n {
            let p = place_job(Policy::FidelityWeighted, &devices, 1, false, 0.0, &mut rng);
            if p[0].device >= 5 {
                hits_top_half += 1;
            }
        }
        let frac = hits_top_half as f64 / n as f64;
        assert!(frac > 0.6, "expected skew toward high fidelity, got {frac}");
    }

    #[test]
    fn load_weighted_spreads_load() {
        let mut devices = fleet();
        devices[0].schedule(0.0, 1e6); // overloaded device
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits_loaded = 0;
        for _ in 0..500 {
            let p = place_job(Policy::LoadWeighted, &devices, 1, false, 0.0, &mut rng);
            if p[0].device == 0 {
                hits_loaded += 1;
            }
        }
        assert!(
            hits_loaded < 20,
            "overloaded device still chosen {hits_loaded} times"
        );
    }

    #[test]
    fn feasibility_sequences_placements_behind_backlogs() {
        let mut devices = vec![CloudDevice::new(0, 0.5, 1.0), CloudDevice::new(1, 0.9, 1.0)];
        devices[0].schedule(0.0, 4.0); // LF backlog clears at t=4
        let placements = [
            Placement {
                device: 0,
                circuits: 10,
                quality_weight: 0.1,
            },
            Placement {
                device: 1,
                circuits: 5,
                quality_weight: 0.9,
            },
        ];
        let secs = [1.0, 2.0];
        let est = estimate_feasibility(&placements, &devices, &secs, 0.0);
        // Exploration waits for the backlog, runs 10s; fine-tune starts when
        // exploration ends (its own device is idle) and runs 10s.
        assert_eq!(est.queue_seconds, 4.0);
        assert_eq!(est.service_seconds, 20.0);
        assert_eq!(est.completion, 24.0);
        assert!(est.meets(24.0, 0.0));
        assert!(!est.meets(24.0, 1.0));
        assert_eq!(est.slack(30.0), 6.0);
        assert_eq!(est.slack(20.0), -4.0);
    }

    #[test]
    fn feasibility_of_empty_placement_is_immediate() {
        let devices = vec![CloudDevice::new(0, 0.5, 1.0)];
        let est = estimate_feasibility(&[], &devices, &[1.0], 7.0);
        assert_eq!(est.queue_seconds, 0.0);
        assert_eq!(est.service_seconds, 0.0);
        assert_eq!(est.completion, 7.0);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(Policy::Qoncord.label(), "Qoncord");
        assert_eq!(Policy::all().len(), 6);
    }
}
