//! The cloud scheduling policies of Sec. V-A: Least Busy, Load Weighted,
//! Fidelity Weighted, Best Fidelity, EQC (ensemble/asynchronous execution),
//! and Qoncord (phase splitting) — plus the feasibility cost models
//! admission control projects job completions with, including the
//! decay-aware variant ([`estimate_feasibility_decayed`]) that ranks
//! queued work by projected fair-share dispatch order under virtual-time
//! usage decay.

use crate::device::CloudDevice;
use crate::fairshare::{FairShareQueue, QueuedRequest};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// A cloud scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Always the least-loaded device (throughput-first).
    LeastBusy,
    /// Random, weighted toward less-loaded devices.
    LoadWeighted,
    /// Random, weighted toward higher-fidelity devices (the organic user
    /// access pattern).
    FidelityWeighted,
    /// Always one of the highest-fidelity devices (quality-first).
    BestFidelity,
    /// EQC-style ensemble execution: least-busy placement but 2× circuit
    /// executions for VQA jobs, with quality limited by the fidelity
    /// *average* of the ensemble.
    Eqc,
    /// Qoncord: exploration circuits on a low-fidelity low-load device,
    /// fine-tuning circuits on a high-fidelity device; early termination
    /// trims the exploration tail.
    Qoncord,
}

impl Policy {
    /// All six policies, in the paper's presentation order.
    pub fn all() -> [Policy; 6] {
        [
            Policy::LeastBusy,
            Policy::LoadWeighted,
            Policy::FidelityWeighted,
            Policy::BestFidelity,
            Policy::Eqc,
            Policy::Qoncord,
        ]
    }

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::LeastBusy => "Least Busy",
            Policy::LoadWeighted => "Load Weighted",
            Policy::FidelityWeighted => "Fidelity Weighted",
            Policy::BestFidelity => "Best Fidelity",
            Policy::Eqc => "EQC",
            Policy::Qoncord => "Qoncord",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Fraction of a VQA job's circuits Qoncord runs as exploration on the
/// low-fidelity device (Fig. 14 measures ≈ 70 % of executions on the LF
/// device).
pub const QONCORD_EXPLORATION_FRACTION: f64 = 0.7;

/// Fraction of exploration circuits Qoncord's restart triage eliminates
/// (Fig. 13: 31 of 50 restarts are cut after exploration, trimming their
/// fine-tuning work; net execution savings land near 15 %).
pub const QONCORD_TERMINATION_SAVINGS: f64 = 0.15;

/// Quality mixing for Qoncord jobs: solution quality tracks the fine-tuning
/// device (the paper's central claim), with a small exploration residue.
pub const QONCORD_FINETUNE_WEIGHT: f64 = 0.92;

/// EQC's circuit-execution multiplier (the paper: "twice the number of
/// tasks... the minimum overhead for a 1-layer QAOA").
pub const EQC_CIRCUIT_MULTIPLIER: f64 = 2.0;

/// One placement decision: a device, the circuits to run there, and the
/// fidelity weight those circuits contribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Target device index.
    pub device: usize,
    /// Circuit executions to run there.
    pub circuits: u64,
    /// Weight of this placement in the job's effective fidelity.
    pub quality_weight: f64,
}

/// Chooses placements for a job's `total_circuits` under `policy`.
///
/// `now` is the decision time (loads are evaluated at `now`). For split
/// policies (Qoncord) multiple placements are returned; their circuit counts
/// need not sum to `total_circuits` (EQC doubles, Qoncord trims).
///
/// # Panics
///
/// Panics if `devices` is empty.
pub fn place_job(
    policy: Policy,
    devices: &[CloudDevice],
    total_circuits: u64,
    is_vqa: bool,
    now: f64,
    rng: &mut StdRng,
) -> Vec<Placement> {
    assert!(!devices.is_empty(), "no devices available");
    match policy {
        Policy::LeastBusy => vec![Placement {
            device: least_busy(devices, now),
            circuits: total_circuits,
            quality_weight: 1.0,
        }],
        Policy::BestFidelity => {
            let best = devices
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.fidelity()
                        .partial_cmp(&b.1.fidelity())
                        .expect("finite fidelity")
                })
                .map(|(i, _)| i)
                .expect("non-empty");
            vec![Placement {
                device: best,
                circuits: total_circuits,
                quality_weight: 1.0,
            }]
        }
        Policy::LoadWeighted => {
            let weights: Vec<f64> = devices
                .iter()
                .map(|d| 1.0 / (1.0 + d.load_after(now)))
                .collect();
            vec![Placement {
                device: weighted_choice(&weights, rng),
                circuits: total_circuits,
                quality_weight: 1.0,
            }]
        }
        Policy::FidelityWeighted => {
            // Quadratic weighting mirrors users' strong preference for the
            // best machines.
            let weights: Vec<f64> = devices.iter().map(|d| d.fidelity().powi(2)).collect();
            vec![Placement {
                device: weighted_choice(&weights, rng),
                circuits: total_circuits,
                quality_weight: 1.0,
            }]
        }
        Policy::Eqc => {
            if !is_vqa {
                return vec![Placement {
                    device: least_busy(devices, now),
                    circuits: total_circuits,
                    quality_weight: 1.0,
                }];
            }
            // Ensemble over the two least-busy devices, 2× total circuits,
            // quality limited by the ensemble average.
            let first = least_busy(devices, now);
            let second = least_busy_excluding(devices, now, first);
            let doubled = (total_circuits as f64 * EQC_CIRCUIT_MULTIPLIER).round() as u64;
            let half = doubled / 2;
            vec![
                Placement {
                    device: first,
                    circuits: half,
                    quality_weight: 0.5,
                },
                Placement {
                    device: second,
                    circuits: doubled - half,
                    quality_weight: 0.5,
                },
            ]
        }
        Policy::Qoncord => {
            if !is_vqa {
                return vec![Placement {
                    device: least_busy(devices, now),
                    circuits: total_circuits,
                    quality_weight: 1.0,
                }];
            }
            // Exploration: least-busy device in the lower fidelity half.
            // Fine-tune: least-busy device within 5 % of the fleet's best
            // fidelity (the paper's "the high-fidelity device").
            let explore_dev =
                least_busy_among(devices, now, |d| d.fidelity() <= median_fidelity(devices))
                    .unwrap_or_else(|| least_busy(devices, now));
            let max_fidelity = devices.iter().map(|d| d.fidelity()).fold(0.0_f64, f64::max);
            let finetune_dev =
                least_busy_among(devices, now, |d| d.fidelity() >= 0.95 * max_fidelity)
                    .unwrap_or_else(|| least_busy(devices, now));
            let kept = 1.0 - QONCORD_TERMINATION_SAVINGS;
            let total_after_triage = total_circuits as f64 * kept;
            let explore = (total_after_triage * QONCORD_EXPLORATION_FRACTION).round() as u64;
            let finetune = (total_after_triage as u64).saturating_sub(explore).max(1);
            vec![
                Placement {
                    device: explore_dev,
                    circuits: explore,
                    quality_weight: 1.0 - QONCORD_FINETUNE_WEIGHT,
                },
                Placement {
                    device: finetune_dev,
                    circuits: finetune,
                    quality_weight: QONCORD_FINETUNE_WEIGHT,
                },
            ]
        }
    }
}

/// Projected timing of a job's placements over live device loads: when its
/// first placement could start, how much device time the job needs in total,
/// and when its last placement would finish.
///
/// This is the cost model deadline-aware admission control runs before
/// accepting a job: compare [`completion`](FeasibilityEstimate::completion)
/// (plus any safety margin) against the job's deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasibilityEstimate {
    /// Seconds between the decision time and the projected first start.
    pub queue_seconds: f64,
    /// Total device-seconds of service across all placements.
    pub service_seconds: f64,
    /// Projected completion time (absolute, same clock as `now`).
    pub completion: f64,
}

impl FeasibilityEstimate {
    /// Seconds of headroom left before `deadline` (negative when the job is
    /// projected to miss it).
    pub fn slack(&self, deadline: f64) -> f64 {
        deadline - self.completion
    }

    /// Whether the projected completion (inflated by `margin` seconds of
    /// safety) lands at or before `deadline`.
    ///
    /// A *negative* margin deliberately loosens the check — a calibrated
    /// admission controller uses one when realized completions run
    /// systematically earlier than projections. A non-finite projected
    /// completion (`NaN` or `∞`) never meets any deadline: the comparison
    /// is `false` for every `NaN` operand, so a corrupted projection fails
    /// closed as infeasible rather than admitting on garbage.
    ///
    /// # Examples
    ///
    /// ```
    /// use qoncord_cloud::policy::FeasibilityEstimate;
    ///
    /// let est = FeasibilityEstimate {
    ///     queue_seconds: 4.0,
    ///     service_seconds: 16.0,
    ///     completion: 20.0,
    /// };
    /// assert!(est.meets(25.0, 0.0));
    /// assert!(!est.meets(25.0, 10.0), "margin tightens the check");
    /// assert!(est.meets(18.0, -5.0), "negative margin loosens it");
    /// let bad = FeasibilityEstimate { completion: f64::NAN, ..est };
    /// assert!(!bad.meets(f64::INFINITY, 0.0), "NaN fails closed");
    /// ```
    pub fn meets(&self, deadline: f64, margin: f64) -> bool {
        self.completion.is_finite() && self.completion + margin <= deadline
    }
}

/// Projects when a job placed as `placements` would complete, given each
/// device's committed backlog and per-circuit execution time.
///
/// Placements are assumed to run in order (Qoncord's exploration block
/// precedes its fine-tuning block): each starts once its device's backlog
/// has drained *and* the previous placement has finished.
///
/// # Panics
///
/// Panics if a placement's device index has no entry in `devices` /
/// `seconds_per_circuit`.
pub fn estimate_feasibility(
    placements: &[Placement],
    devices: &[CloudDevice],
    seconds_per_circuit: &[f64],
    now: f64,
) -> FeasibilityEstimate {
    let extra = vec![0.0; devices.len()];
    project_placements(placements, devices, seconds_per_circuit, now, &extra)
}

/// The shared projection walk: placements run in order, each starting once
/// its device's backlog (`load_after` plus `extra_delay` seconds of
/// additional queued work) has drained *and* the previous placement has
/// finished.
fn project_placements(
    placements: &[Placement],
    devices: &[CloudDevice],
    seconds_per_circuit: &[f64],
    now: f64,
    extra_delay: &[f64],
) -> FeasibilityEstimate {
    assert_eq!(
        devices.len(),
        seconds_per_circuit.len(),
        "one per-circuit time per device"
    );
    assert_eq!(
        devices.len(),
        extra_delay.len(),
        "one extra-delay entry per device"
    );
    let mut previous_finish = now;
    let mut first_start = None;
    let mut service_seconds = 0.0;
    for p in placements {
        let backlog_clear = now + devices[p.device].load_after(now) + extra_delay[p.device];
        let start = backlog_clear.max(previous_finish);
        first_start.get_or_insert(start);
        let run = p.circuits as f64 * seconds_per_circuit[p.device];
        service_seconds += run;
        previous_finish = start + run;
    }
    FeasibilityEstimate {
        queue_seconds: first_start.unwrap_or(now) - now,
        service_seconds,
        completion: previous_finish,
    }
}

/// Virtual-time usage-decay parameters, mirrored from the dispatcher that
/// ages fair-share balances: every `epoch_seconds` of the virtual clock,
/// every tenant's consumed-seconds balance is multiplied by `factor`.
///
/// Feasibility projections need the same model the dispatcher runs,
/// because decay between now and a job's projected start changes which
/// queued requests outrank it (a past-heavy tenant recovers priority while
/// the new job waits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageDecayModel {
    /// Virtual seconds between decay epochs (`f64::INFINITY` disables).
    pub epoch_seconds: f64,
    /// Multiplier applied to every balance at each epoch, in `[0, 1]`.
    pub factor: f64,
}

impl UsageDecayModel {
    /// No decay: balances never age (the identity model).
    pub fn none() -> Self {
        UsageDecayModel {
            epoch_seconds: f64::INFINITY,
            factor: 1.0,
        }
    }

    /// Decay by `factor` every `epoch_seconds` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_seconds` is not positive or `factor` lies outside
    /// `[0, 1]`.
    pub fn every(epoch_seconds: f64, factor: f64) -> Self {
        assert!(epoch_seconds > 0.0, "decay epoch must be positive");
        assert!(
            factor.is_finite() && (0.0..=1.0).contains(&factor),
            "decay factor must lie in [0, 1]"
        );
        UsageDecayModel {
            epoch_seconds,
            factor,
        }
    }

    /// Epoch boundaries crossed between virtual times `from` and `until`
    /// (absolute boundaries at multiples of the epoch length, matching a
    /// dispatcher that decays whenever `floor(now / epoch)` advances).
    pub fn epochs_between(&self, from: f64, until: f64) -> u32 {
        if !self.epoch_seconds.is_finite() || until <= from {
            return 0;
        }
        let crossed = (until / self.epoch_seconds).floor() - (from / self.epoch_seconds).floor();
        crossed.max(0.0).min(u32::MAX as f64) as u32
    }

    /// The compound decay factor applied to a balance between `from` and
    /// `until` (1.0 when no epoch boundary is crossed). Epoch counts beyond
    /// `i32::MAX` saturate (the factor is already ~0 long before that).
    pub fn factor_between(&self, from: f64, until: f64) -> f64 {
        self.factor
            .powi(self.epochs_between(from, until).min(i32::MAX as u32) as i32)
    }

    /// Whether any epoch will ever change a balance.
    pub fn is_enabled(&self) -> bool {
        self.epoch_seconds.is_finite() && self.factor < 1.0
    }
}

/// Decay disabled: the identity model ([`UsageDecayModel::none`]).
impl Default for UsageDecayModel {
    fn default() -> Self {
        UsageDecayModel::none()
    }
}

/// The order a [`FairShareQueue`]'s pending requests would pop in if every
/// balance were first aged by `decay_factor` — computed analytically from
/// the queue's balances and weights, without mutating (or popping) the
/// queue.
///
/// This is the projection admission control ranks an arriving job's queue
/// position with; a property test pins it to the queue's real
/// [`pop`](FairShareQueue::pop) order. Scoring replays dispatch exactly:
/// each projected pop releases its in-flight slot (recent-consumption
/// balances change only when work *runs*, which a projection cannot
/// observe), ties break FIFO on submission time.
///
/// # Panics
///
/// Panics if `decay_factor` lies outside `[0, 1]` or is not finite.
pub fn projected_dispatch_order(queue: &FairShareQueue, decay_factor: f64) -> Vec<usize> {
    queue.projected_pop_order(decay_factor)
}

/// The queue-side inputs of a decay-aware feasibility projection: the
/// fair-share queue as it stands (whose per-request device tags supply the
/// request-to-device mapping), the arriving job's hypothetical first
/// request, any fair-share credit the dispatcher would grant that request's
/// tenant at admission, and the dispatcher's decay model.
#[derive(Debug, Clone, Copy)]
pub struct QueueModel<'a> {
    /// The live fair-share queue (balances + pending requests + device
    /// tags + backlog summary).
    pub queue: &'a FairShareQueue,
    /// The arriving job's hypothetical first request. Its id must not
    /// collide with any queued request's.
    pub probe: &'a QueuedRequest,
    /// Fair-share seconds the dispatcher would credit the probe's tenant at
    /// admission (0 when no priority boost applies). Applied virtually
    /// before ranking, so the projection prices the boost without cloning
    /// and mutating the queue.
    pub probe_credit: f64,
    /// The dispatcher's virtual-time usage-decay parameters.
    pub decay: UsageDecayModel,
}

/// Decay-aware feasibility: like [`estimate_feasibility`], but the queued
/// (ungranted) work ahead of the job is ranked by projected fair-share
/// dispatch order instead of being charged wholesale.
///
/// `devices` must carry only *committed* backlog (granted work that runs
/// regardless of queue order); the [`QueueModel`] holds the ungranted
/// requests. Only queued work projected to pop *before* the probe delays
/// the job — work the job outranks under fair-share does not, which is
/// exactly how the dispatcher will treat it.
///
/// Decay enters as a fixed point: a first pass projects the start time
/// with un-decayed balances, the crossed epochs until that start give the
/// compound [`UsageDecayModel::factor_between`], and the final projection
/// ranks the queue with balances aged by that factor — so a past-heavy
/// tenant whose balance will have decayed by the time the job could start
/// is projected to outrank it, matching realized dispatch.
///
/// # Examples
///
/// ```
/// use qoncord_cloud::device::CloudDevice;
/// use qoncord_cloud::fairshare::{FairShareQueue, QueuedRequest};
/// use qoncord_cloud::policy::{
///     estimate_feasibility_decayed, Placement, QueueModel, UsageDecayModel,
/// };
///
/// // One idle device; a heavy tenant has 100s of queued work pending.
/// let devices = vec![CloudDevice::new(0, 0.9, 1.0)];
/// let mut queue = FairShareQueue::new();
/// queue.record_usage("heavy", 500.0).unwrap();
/// queue
///     .push_for_device(
///         QueuedRequest {
///             id: 0, user: "heavy".into(), requested_seconds: 100.0, submitted_at: 0.0,
///         },
///         0,
///     )
///     .unwrap();
/// let placements = [Placement { device: 0, circuits: 10, quality_weight: 1.0 }];
/// let probe = QueuedRequest {
///     id: 99, user: "light".into(), requested_seconds: 10.0, submitted_at: 1.0,
/// };
/// let est = estimate_feasibility_decayed(&placements, &devices, &[1.0], 1.0, QueueModel {
///     queue: &queue,
///     probe: &probe,
///     probe_credit: 0.0,
///     decay: UsageDecayModel::none(),
/// });
/// // The light tenant outranks the heavy backlog: no queue delay at all.
/// assert_eq!(est.queue_seconds, 0.0);
/// assert_eq!(est.completion, 11.0);
/// ```
pub fn estimate_feasibility_decayed(
    placements: &[Placement],
    devices: &[CloudDevice],
    seconds_per_circuit: &[f64],
    now: f64,
    model: QueueModel<'_>,
) -> FeasibilityEstimate {
    // Only the placements' own devices can delay this job, so the
    // projection is asked for exactly those — the rank-query fast path in
    // the queue then characterizes the outranking set directly (per-tenant
    // prefix maxima against the probe's, candidates enumerated off the
    // order-statistics ready index) instead of heap-replaying the whole
    // drain per admission decision. The exact replay survives as a
    // debug-assert oracle inside the queue, and a property test pins the
    // projection to the cloned-queue pop order bit for bit.
    let mut wanted: Vec<usize> = placements.iter().map(|p| p.device).collect();
    wanted.sort_unstable();
    wanted.dedup();
    let ahead = |factor: f64| -> Vec<f64> {
        model.queue.projected_backlog_for(
            model.probe,
            model.probe_credit,
            factor,
            devices.len(),
            &wanted,
        )
    };
    let naive = project_placements(placements, devices, seconds_per_circuit, now, &ahead(1.0));
    let factor = model.decay.factor_between(now, now + naive.queue_seconds);
    if factor >= 1.0 {
        return naive;
    }
    project_placements(
        placements,
        devices,
        seconds_per_circuit,
        now,
        &ahead(factor),
    )
}

/// One shard of a QuSplit-style restart split: a same-tier device plus the
/// restart indices assigned to it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlacement {
    /// Target device (the [`CloudDevice::id`] of the chosen device).
    pub device: usize,
    /// Restart indices this shard owns, in ascending order.
    pub restarts: Vec<usize>,
}

impl ShardPlacement {
    /// Number of restarts the shard owns (its width).
    pub fn width(&self) -> usize {
        self.restarts.len()
    }
}

/// Fans a job's `n_restarts` restarts across same-tier devices, the
/// QuSplit-style split the multi-device orchestrator runs restarts of one
/// job concurrently with.
///
/// Only devices whose fidelity is at least `tier_floor` are eligible — a
/// shard must never land below the job's quality tier. Of those, the
/// `max_fanout` least-loaded devices (load evaluated live at `now`) form
/// the candidate pool, and restarts are dealt greedily onto whichever
/// candidate has the earliest projected finish (`backlog + assigned ×
/// seconds_per_restart`), so the fan-out *width* emerges from live load: a
/// backlogged twin naturally receives few or zero restarts and drops out of
/// the plan. Devices left without restarts are omitted, shard restart lists
/// are ascending, and the widths of the returned shards always sum to
/// `n_restarts`.
///
/// Returns an empty plan when no device reaches `tier_floor` (the caller
/// should fall back to unsplit execution).
///
/// # Panics
///
/// Panics if `max_fanout` is zero or `seconds_per_restart` is negative or
/// not finite.
pub fn split_restarts(
    devices: &[CloudDevice],
    tier_floor: f64,
    n_restarts: usize,
    seconds_per_restart: f64,
    max_fanout: usize,
    now: f64,
) -> Vec<ShardPlacement> {
    assert!(max_fanout > 0, "fan-out must be at least 1");
    assert!(
        seconds_per_restart.is_finite() && seconds_per_restart >= 0.0,
        "seconds per restart must be a non-negative finite number"
    );
    let mut pool: Vec<(usize, f64)> = devices
        .iter()
        .filter(|d| d.fidelity() >= tier_floor)
        .map(|d| (d.id(), d.load_after(now)))
        .collect();
    if pool.is_empty() || n_restarts == 0 {
        return Vec::new();
    }
    // Least-loaded candidates first; device id breaks ties deterministically.
    pool.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite load")
            .then(a.0.cmp(&b.0))
    });
    pool.truncate(max_fanout);
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); pool.len()];
    for restart in 0..n_restarts {
        let winner = (0..pool.len())
            .min_by(|&a, &b| {
                let fa = pool[a].1 + assigned[a].len() as f64 * seconds_per_restart;
                let fb = pool[b].1 + assigned[b].len() as f64 * seconds_per_restart;
                fa.partial_cmp(&fb).expect("finite projections")
            })
            .expect("non-empty pool");
        assigned[winner].push(restart);
    }
    pool.iter()
        .zip(assigned)
        .filter(|(_, restarts)| !restarts.is_empty())
        .map(|(&(device, _), restarts)| ShardPlacement { device, restarts })
        .collect()
}

/// Merges per-restart shard outcomes back into restart order, independent
/// of the order shards finished in. `outcomes` yields `(restart index,
/// outcome)` pairs; the merge succeeds only when the indices form exactly
/// the permutation `0..n_restarts` — a missing, duplicate, or out-of-range
/// restart returns `None` instead of silently misattributing results.
pub fn merge_shard_results<T>(
    outcomes: impl IntoIterator<Item = (usize, T)>,
    n_restarts: usize,
) -> Option<Vec<T>> {
    let mut slots: Vec<Option<T>> = (0..n_restarts).map(|_| None).collect();
    let mut filled = 0;
    for (restart, outcome) in outcomes {
        let slot = slots.get_mut(restart)?;
        if slot.is_some() {
            return None;
        }
        *slot = Some(outcome);
        filled += 1;
    }
    if filled != n_restarts {
        return None;
    }
    Some(
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect(),
    )
}

fn least_busy(devices: &[CloudDevice], now: f64) -> usize {
    devices
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.load_after(now)
                .partial_cmp(&b.1.load_after(now))
                .expect("finite load")
        })
        .map(|(i, _)| i)
        .expect("non-empty")
}

fn least_busy_excluding(devices: &[CloudDevice], now: f64, excluded: usize) -> usize {
    devices
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != excluded)
        .min_by(|a, b| {
            a.1.load_after(now)
                .partial_cmp(&b.1.load_after(now))
                .expect("finite load")
        })
        .map(|(i, _)| i)
        .unwrap_or(excluded)
}

fn least_busy_among(
    devices: &[CloudDevice],
    now: f64,
    filter: impl Fn(&CloudDevice) -> bool,
) -> Option<usize> {
    devices
        .iter()
        .enumerate()
        .filter(|(_, d)| filter(d))
        .min_by(|a, b| {
            a.1.load_after(now)
                .partial_cmp(&b.1.load_after(now))
                .expect("finite load")
        })
        .map(|(i, _)| i)
}

fn median_fidelity(devices: &[CloudDevice]) -> f64 {
    let mut f: Vec<f64> = devices.iter().map(|d| d.fidelity()).collect();
    f.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    f[f.len() / 2]
}

fn weighted_choice(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut r = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        r -= w;
        if r <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::hypothetical_fleet;
    use rand::SeedableRng;

    fn fleet() -> Vec<CloudDevice> {
        hypothetical_fleet(10, 0.3, 0.9)
    }

    #[test]
    fn least_busy_prefers_idle_device() {
        let mut devices = fleet();
        for d in devices.iter_mut().take(9) {
            d.schedule(0.0, 100.0);
        }
        let mut rng = StdRng::seed_from_u64(0);
        let p = place_job(Policy::LeastBusy, &devices, 10, true, 0.0, &mut rng);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].device, 9);
    }

    #[test]
    fn best_fidelity_always_picks_top_device() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            let p = place_job(Policy::BestFidelity, &devices, 10, false, 0.0, &mut rng);
            assert_eq!(p[0].device, 9);
        }
    }

    #[test]
    fn qoncord_splits_vqa_jobs_across_tiers() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(0);
        let p = place_job(Policy::Qoncord, &devices, 100, true, 0.0, &mut rng);
        assert_eq!(p.len(), 2);
        let (explore, finetune) = (&p[0], &p[1]);
        assert!(devices[explore.device].fidelity() < devices[finetune.device].fidelity());
        // ~70 % of (triage-trimmed) circuits on the LF device.
        assert!(explore.circuits > finetune.circuits);
        // Quality weighting is dominated by the fine-tune device.
        assert!(finetune.quality_weight > 0.9);
        // Termination savings: fewer total circuits than nominal.
        assert!(explore.circuits + finetune.circuits < 100);
    }

    #[test]
    fn qoncord_routes_non_vqa_like_least_busy() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(0);
        let p = place_job(Policy::Qoncord, &devices, 10, false, 0.0, &mut rng);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].circuits, 10);
    }

    #[test]
    fn eqc_doubles_vqa_circuits() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(0);
        let p = place_job(Policy::Eqc, &devices, 50, true, 0.0, &mut rng);
        let total: u64 = p.iter().map(|x| x.circuits).sum();
        assert_eq!(total, 100);
        assert_eq!(p.len(), 2);
        assert_ne!(p[0].device, p[1].device);
    }

    #[test]
    fn fidelity_weighted_skews_toward_good_devices() {
        let devices = fleet();
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits_top_half = 0;
        let n = 2000;
        for _ in 0..n {
            let p = place_job(Policy::FidelityWeighted, &devices, 1, false, 0.0, &mut rng);
            if p[0].device >= 5 {
                hits_top_half += 1;
            }
        }
        let frac = hits_top_half as f64 / n as f64;
        assert!(frac > 0.6, "expected skew toward high fidelity, got {frac}");
    }

    #[test]
    fn load_weighted_spreads_load() {
        let mut devices = fleet();
        devices[0].schedule(0.0, 1e6); // overloaded device
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits_loaded = 0;
        for _ in 0..500 {
            let p = place_job(Policy::LoadWeighted, &devices, 1, false, 0.0, &mut rng);
            if p[0].device == 0 {
                hits_loaded += 1;
            }
        }
        assert!(
            hits_loaded < 20,
            "overloaded device still chosen {hits_loaded} times"
        );
    }

    #[test]
    fn feasibility_sequences_placements_behind_backlogs() {
        let mut devices = vec![CloudDevice::new(0, 0.5, 1.0), CloudDevice::new(1, 0.9, 1.0)];
        devices[0].schedule(0.0, 4.0); // LF backlog clears at t=4
        let placements = [
            Placement {
                device: 0,
                circuits: 10,
                quality_weight: 0.1,
            },
            Placement {
                device: 1,
                circuits: 5,
                quality_weight: 0.9,
            },
        ];
        let secs = [1.0, 2.0];
        let est = estimate_feasibility(&placements, &devices, &secs, 0.0);
        // Exploration waits for the backlog, runs 10s; fine-tune starts when
        // exploration ends (its own device is idle) and runs 10s.
        assert_eq!(est.queue_seconds, 4.0);
        assert_eq!(est.service_seconds, 20.0);
        assert_eq!(est.completion, 24.0);
        assert!(est.meets(24.0, 0.0));
        assert!(!est.meets(24.0, 1.0));
        assert_eq!(est.slack(30.0), 6.0);
        assert_eq!(est.slack(20.0), -4.0);
    }

    #[test]
    fn meets_edge_cases_fail_closed() {
        let est = |completion: f64| FeasibilityEstimate {
            queue_seconds: 0.0,
            service_seconds: 1.0,
            completion,
        };
        // Zero margin: boundary inclusive.
        assert!(est(10.0).meets(10.0, 0.0));
        // Negative margin loosens the check past the deadline.
        assert!(est(12.0).meets(10.0, -3.0));
        assert!(!est(12.0).meets(10.0, -1.0));
        // An infinite deadline is met by any finite projection...
        assert!(est(1e300).meets(f64::INFINITY, 0.0));
        // ...but not by a non-finite one.
        assert!(!est(f64::INFINITY).meets(f64::INFINITY, 0.0));
        // NaN anywhere rejects as infeasible: every NaN comparison is false.
        assert!(!est(f64::NAN).meets(10.0, 0.0));
        assert!(!est(f64::NAN).meets(f64::INFINITY, -1e9));
        assert!(!est(10.0).meets(f64::NAN, 0.0));
        assert!(!est(10.0).meets(20.0, f64::NAN));
        // Slack mirrors the same orientation.
        assert_eq!(est(15.0).slack(20.0), 5.0);
        assert!(est(f64::NAN).slack(20.0).is_nan());
    }

    fn req(id: usize, user: &str, seconds: f64, at: f64) -> QueuedRequest {
        QueuedRequest {
            id,
            user: user.into(),
            requested_seconds: seconds,
            submitted_at: at,
        }
    }

    #[test]
    fn projected_order_matches_real_drain() {
        let mut q = FairShareQueue::new();
        q.record_usage("heavy", 400.0).unwrap();
        q.record_usage("light", 10.0).unwrap();
        q.push(req(0, "heavy", 5.0, 0.0)).unwrap();
        q.push(req(1, "light", 5.0, 1.0)).unwrap();
        q.push(req(2, "light", 5.0, 2.0)).unwrap();
        q.push(req(3, "fresh", 5.0, 3.0)).unwrap();
        let projected = projected_dispatch_order(&q, 1.0);
        let drained: Vec<usize> = q.clone().drain_ordered().iter().map(|r| r.id).collect();
        assert_eq!(projected, drained);
        assert_eq!(projected[0], 3, "the unburdened tenant pops first");
    }

    #[test]
    fn projected_order_breaks_full_ties_by_insertion() {
        // Identical user, size, and submission time: real dispatch pops in
        // insertion order (min_by keeps the first of equals), and the
        // projection must agree.
        let mut q = FairShareQueue::new();
        q.push(req(0, "a", 5.0, 1.0)).unwrap();
        q.push(req(1, "a", 5.0, 1.0)).unwrap();
        q.push(req(2, "a", 5.0, 1.0)).unwrap();
        let projected = projected_dispatch_order(&q, 1.0);
        let drained: Vec<usize> = q.clone().drain_ordered().iter().map(|r| r.id).collect();
        assert_eq!(projected, drained);
        assert_eq!(projected, vec![0, 1, 2]);
    }

    #[test]
    fn projected_order_shifts_under_decay() {
        // The heavy tenant's balance decays to nothing: with full amnesty
        // its earlier submission outranks the light tenant's.
        let mut q = FairShareQueue::new();
        q.record_usage("heavy", 1000.0).unwrap();
        q.push(req(0, "heavy", 5.0, 0.0)).unwrap();
        q.push(req(1, "light", 5.0, 1.0)).unwrap();
        assert_eq!(projected_dispatch_order(&q, 1.0), vec![1, 0]);
        assert_eq!(projected_dispatch_order(&q, 0.0), vec![0, 1]);
    }

    #[test]
    fn decayed_feasibility_charges_only_outranking_work() {
        let devices = vec![CloudDevice::new(0, 0.9, 1.0)];
        let placements = [Placement {
            device: 0,
            circuits: 10,
            quality_weight: 1.0,
        }];
        let mut q = FairShareQueue::new();
        q.record_usage("rival", 50.0).unwrap();
        q.push_for_device(req(0, "rival", 30.0, 0.0), 0).unwrap();
        // A probe from a tenant heavier than the rival queues behind the
        // rival's 30s of work; a lighter probe queues ahead of it.
        let heavy_probe = |mut queue: FairShareQueue| {
            queue.record_usage("newcomer", 500.0).unwrap();
            estimate_feasibility_decayed(
                &placements,
                &devices,
                &[1.0],
                0.0,
                QueueModel {
                    queue: &queue,
                    probe: &req(9, "newcomer", 10.0, 1.0),
                    probe_credit: 0.0,
                    decay: UsageDecayModel::none(),
                },
            )
        };
        let heavy = heavy_probe(q.clone());
        assert_eq!(heavy.queue_seconds, 30.0);
        assert_eq!(heavy.completion, 40.0);
        let light = estimate_feasibility_decayed(
            &placements,
            &devices,
            &[1.0],
            0.0,
            QueueModel {
                queue: &q,
                probe: &req(9, "newcomer", 10.0, 1.0),
                probe_credit: 0.0,
                decay: UsageDecayModel::none(),
            },
        );
        assert_eq!(light.queue_seconds, 0.0, "outranked work does not delay");
        assert_eq!(light.completion, 10.0);
        // A probe credit does virtually what a real admission-time credit
        // would: the heavy newcomer outranks the rival again.
        let mut credited_queue = q.clone();
        credited_queue.record_usage("newcomer", 500.0).unwrap();
        let boosted = estimate_feasibility_decayed(
            &placements,
            &devices,
            &[1.0],
            0.0,
            QueueModel {
                queue: &credited_queue,
                probe: &req(9, "newcomer", 10.0, 1.0),
                probe_credit: 500.0,
                decay: UsageDecayModel::none(),
            },
        );
        assert_eq!(boosted.queue_seconds, 0.0);
    }

    #[test]
    fn decayed_feasibility_projects_epochs_until_start() {
        // Committed backlog of 100s delays any start to t=100; with a decay
        // epoch of 30s every balance has decayed 3 times by then (factor
        // 0.125), which shrinks the rival's balance advantage below the
        // probe's larger request-size penalty — so the rival's queued work
        // is projected to outrank the probe after all.
        let mut devices = vec![CloudDevice::new(0, 0.9, 1.0)];
        devices[0].schedule(0.0, 100.0);
        let placements = [Placement {
            device: 0,
            circuits: 10,
            quality_weight: 1.0,
        }];
        let mut q = FairShareQueue::new();
        q.record_usage("rival", 120.0).unwrap();
        q.record_usage("newcomer", 20.0).unwrap();
        q.push_for_device(req(0, "rival", 4.0, 0.0), 0).unwrap();
        let probe = req(9, "newcomer", 30.0, 1.0);
        let undecayed = estimate_feasibility_decayed(
            &placements,
            &devices,
            &[1.0],
            0.0,
            QueueModel {
                queue: &q,
                probe: &probe,
                probe_credit: 0.0,
                decay: UsageDecayModel::none(),
            },
        );
        assert_eq!(
            undecayed.queue_seconds, 100.0,
            "without decay the probe outranks the heavier rival"
        );
        let decayed = estimate_feasibility_decayed(
            &placements,
            &devices,
            &[1.0],
            0.0,
            QueueModel {
                queue: &q,
                probe: &probe,
                probe_credit: 0.0,
                decay: UsageDecayModel::every(30.0, 0.5),
            },
        );
        assert_eq!(
            decayed.queue_seconds, 104.0,
            "by the projected start the rival outranks the probe"
        );
    }

    #[test]
    fn usage_decay_model_counts_epoch_boundaries() {
        let model = UsageDecayModel::every(10.0, 0.5);
        assert_eq!(model.epochs_between(0.0, 9.9), 0);
        assert_eq!(model.epochs_between(0.0, 10.0), 1);
        assert_eq!(model.epochs_between(12.0, 35.0), 2);
        assert_eq!(model.epochs_between(5.0, 5.0), 0);
        assert_eq!(
            model.epochs_between(20.0, 5.0),
            0,
            "time only moves forward"
        );
        assert_eq!(model.factor_between(0.0, 25.0), 0.25);
        let off = UsageDecayModel::none();
        assert_eq!(off.epochs_between(0.0, 1e12), 0);
        assert_eq!(off.factor_between(0.0, 1e12), 1.0);
    }

    #[test]
    fn feasibility_of_empty_placement_is_immediate() {
        let devices = vec![CloudDevice::new(0, 0.5, 1.0)];
        let est = estimate_feasibility(&[], &devices, &[1.0], 7.0);
        assert_eq!(est.queue_seconds, 0.0);
        assert_eq!(est.service_seconds, 0.0);
        assert_eq!(est.completion, 7.0);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(Policy::Qoncord.label(), "Qoncord");
        assert_eq!(Policy::all().len(), 6);
    }

    #[test]
    fn split_balances_restarts_over_idle_twins() {
        let devices = vec![
            CloudDevice::new(0, 0.5, 1.0),
            CloudDevice::new(1, 0.5, 1.0),
            CloudDevice::new(2, 0.9, 1.0),
        ];
        let plan = split_restarts(&devices, 0.5, 6, 10.0, 4, 0.0);
        // Only the two tier-eligible... all three are >= 0.5; the HF device
        // is eligible too (not *below* the tier) but everything is idle, so
        // the deal spreads evenly over the three.
        assert_eq!(plan.iter().map(ShardPlacement::width).sum::<usize>(), 6);
        assert_eq!(plan.len(), 3);
        for shard in &plan {
            assert_eq!(shard.width(), 2);
        }
    }

    #[test]
    fn split_respects_tier_floor_and_load() {
        let mut devices = vec![
            CloudDevice::new(0, 0.3, 1.0), // below tier
            CloudDevice::new(1, 0.6, 1.0),
            CloudDevice::new(2, 0.6, 1.0),
        ];
        devices[2].schedule(0.0, 1e6); // hopelessly backlogged twin
        let plan = split_restarts(&devices, 0.5, 4, 10.0, 4, 0.0);
        assert_eq!(plan.len(), 1, "backlogged twin receives nothing");
        assert_eq!(plan[0].device, 1);
        assert_eq!(plan[0].restarts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn split_with_no_eligible_device_is_empty() {
        let devices = vec![CloudDevice::new(0, 0.4, 1.0)];
        assert!(split_restarts(&devices, 0.5, 4, 1.0, 4, 0.0).is_empty());
        assert!(split_restarts(&devices, 0.3, 0, 1.0, 4, 0.0).is_empty());
    }

    #[test]
    fn split_honors_max_fanout() {
        let devices: Vec<CloudDevice> = (0..6).map(|i| CloudDevice::new(i, 0.7, 1.0)).collect();
        let plan = split_restarts(&devices, 0.5, 12, 5.0, 2, 0.0);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.iter().map(ShardPlacement::width).sum::<usize>(), 12);
    }

    #[test]
    fn merge_reorders_and_rejects_bad_permutations() {
        let merged = merge_shard_results([(2, "c"), (0, "a"), (1, "b")], 3).unwrap();
        assert_eq!(merged, vec!["a", "b", "c"]);
        assert!(
            merge_shard_results([(0, 1), (0, 2)], 2).is_none(),
            "duplicate"
        );
        assert!(merge_shard_results([(0, 1)], 2).is_none(), "missing");
        assert!(merge_shard_results([(5, 1)], 1).is_none(), "out of range");
        assert_eq!(merge_shard_results::<u8>([], 0), Some(vec![]));
    }
}
