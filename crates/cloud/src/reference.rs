//! The retained linear-scan fair-share queue — the behavioral oracle.
//!
//! This is the original (pre-index) implementation of
//! [`FairShareQueue`](crate::fairshare::FairShareQueue), kept verbatim so
//! the indexed rewrite stays honest: the equivalence property tests in
//! `tests/properties.rs` drive both queues through random op interleavings
//! and assert bit-identical pop sequences and balances, and the
//! `fleet_scale` bench measures the indexed queue's speedup against this
//! one. It is *not* a production path — every pop rescans the whole queue
//! and every cancellation shifts the pending tail.
//!
//! Two deliberate contract differences versus the indexed queue, both on
//! paths the oracle comparison never exercises: `push` is infallible (the
//! seed accepted non-finite requests and panicked later inside the pop
//! comparator — the indexed queue instead rejects them at push time), and
//! duplicate ids are not detected.

use std::collections::HashMap;

use crate::fairshare::{FairShareError, FairShareWeights, QueuedRequest, UserUsage};

/// The original `O(n)`-per-op fair-share queue, retained as a reference.
#[derive(Debug, Clone, Default)]
pub struct ReferenceFairShareQueue {
    weights: FairShareWeights,
    usage: HashMap<String, UserUsage>,
    pending: Vec<QueuedRequest>,
}

impl ReferenceFairShareQueue {
    /// Creates an empty queue with default weights.
    pub fn new() -> Self {
        ReferenceFairShareQueue::default()
    }

    /// Creates a queue with explicit weights.
    pub fn with_weights(weights: FairShareWeights) -> Self {
        ReferenceFairShareQueue {
            weights,
            ..ReferenceFairShareQueue::default()
        }
    }

    /// The scoring weights this queue dequeues by.
    pub fn weights(&self) -> FairShareWeights {
        self.weights
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Records `seconds` of consumption against `user`'s share.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::InvalidSeconds`] when `seconds` is negative
    /// or not finite.
    pub fn record_usage(&mut self, user: &str, seconds: f64) -> Result<(), FairShareError> {
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(FairShareError::InvalidSeconds(seconds));
        }
        self.usage
            .entry(user.to_owned())
            .or_default()
            .consumed_seconds += seconds;
        Ok(())
    }

    /// Grants `user` a fair-share credit of `seconds`.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::InvalidSeconds`] when `seconds` is negative
    /// or not finite.
    pub fn credit_usage(&mut self, user: &str, seconds: f64) -> Result<(), FairShareError> {
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(FairShareError::InvalidSeconds(seconds));
        }
        self.usage
            .entry(user.to_owned())
            .or_default()
            .consumed_seconds -= seconds;
        Ok(())
    }

    /// Ages all users' consumption by `factor`.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::DecayFactorOutOfRange`] when `factor` is
    /// outside `[0, 1]` or not finite.
    pub fn decay_usage(&mut self, factor: f64) -> Result<(), FairShareError> {
        if !(factor.is_finite() && (0.0..=1.0).contains(&factor)) {
            return Err(FairShareError::DecayFactorOutOfRange(factor));
        }
        for u in self.usage.values_mut() {
            u.consumed_seconds *= factor;
        }
        Ok(())
    }

    /// Current usage record for a user.
    pub fn usage(&self, user: &str) -> UserUsage {
        self.usage.get(user).copied().unwrap_or_default()
    }

    /// Iterates every user the queue has accounted, with their usage
    /// (arbitrary order).
    pub fn balances(&self) -> impl Iterator<Item = (&str, UserUsage)> {
        self.usage
            .iter()
            .map(|(user, usage)| (user.as_str(), *usage))
    }

    /// Iterates the pending requests in insertion order.
    pub fn pending(&self) -> impl Iterator<Item = &QueuedRequest> {
        self.pending.iter()
    }

    /// Enqueues a request and bumps the user's in-flight count.
    pub fn push(&mut self, request: QueuedRequest) {
        self.usage
            .entry(request.user.clone())
            .or_default()
            .jobs_in_flight += 1;
        self.pending.push(request);
    }

    /// Fair-share score of a request: lower dequeues sooner.
    pub fn score(&self, request: &QueuedRequest) -> f64 {
        let usage = self.usage(&request.user);
        self.weights.usage * usage.consumed_seconds
            + self.weights.in_flight * usage.jobs_in_flight as f64
            + self.weights.request_size * request.requested_seconds
    }

    /// Dequeues the request with the lowest score (FIFO on ties) and
    /// releases its in-flight slot.
    pub fn pop(&mut self) -> Option<QueuedRequest> {
        self.pop_where(|_| true)
    }

    /// Dequeues the lowest-score request among those matching `pred` (FIFO
    /// on ties), releasing its in-flight slot — via a full filtered
    /// min-scan, the behavior the indexed queue must reproduce.
    pub fn pop_where(&mut self, pred: impl Fn(&QueuedRequest) -> bool) -> Option<QueuedRequest> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, r)| pred(r))
            .min_by(|a, b| {
                let sa = self.score(a.1);
                let sb = self.score(b.1);
                sa.partial_cmp(&sb).expect("finite scores").then(
                    a.1.submitted_at
                        .partial_cmp(&b.1.submitted_at)
                        .expect("finite times"),
                )
            })
            .map(|(i, _)| i)?;
        let request = self.pending.remove(best);
        if let Some(u) = self.usage.get_mut(&request.user) {
            u.jobs_in_flight = u.jobs_in_flight.saturating_sub(1);
        }
        Some(request)
    }

    /// Requeues a request with a fair-share credit of `burned_seconds`.
    ///
    /// # Errors
    ///
    /// Returns [`FairShareError::InvalidSeconds`] when `burned_seconds` is
    /// negative or not finite; the request is not enqueued in that case.
    pub fn requeue_with_credit(
        &mut self,
        request: QueuedRequest,
        burned_seconds: f64,
    ) -> Result<(), FairShareError> {
        self.credit_usage(&request.user, burned_seconds)?;
        self.push(request);
        Ok(())
    }

    /// Removes every request matching `pred`, releasing the in-flight
    /// slots; returns the cancelled requests in queue order. This is the
    /// seed's quadratic `Vec::remove`-in-a-loop, kept as-is: the oracle
    /// must preserve the original behavior, inefficiency included.
    pub fn cancel_where(&mut self, pred: impl Fn(&QueuedRequest) -> bool) -> Vec<QueuedRequest> {
        let mut cancelled = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if pred(&self.pending[i]) {
                cancelled.push(self.pending.remove(i));
            } else {
                i += 1;
            }
        }
        for request in &cancelled {
            if let Some(u) = self.usage.get_mut(&request.user) {
                u.jobs_in_flight = u.jobs_in_flight.saturating_sub(1);
            }
        }
        cancelled
    }

    /// Drains the queue in fair-share order.
    pub fn drain_ordered(&mut self) -> Vec<QueuedRequest> {
        let mut out = Vec::with_capacity(self.pending.len());
        while let Some(r) = self.pop() {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, user: &str, seconds: f64, at: f64) -> QueuedRequest {
        QueuedRequest {
            id,
            user: user.into(),
            requested_seconds: seconds,
            submitted_at: at,
        }
    }

    #[test]
    fn reference_keeps_the_seed_ordering_contract() {
        let mut q = ReferenceFairShareQueue::new();
        q.record_usage("heavy", 500.0).unwrap();
        q.push(req(0, "heavy", 10.0, 0.0));
        q.push(req(1, "light", 10.0, 5.0));
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn reference_cancel_keeps_queue_order() {
        let mut q = ReferenceFairShareQueue::new();
        for i in 0..4 {
            q.push(req(i, "vqa", 10.0, i as f64));
        }
        let cancelled = q.cancel_where(|r| r.id >= 2);
        assert_eq!(cancelled.iter().map(|r| r.id).collect::<Vec<_>>(), [2, 3]);
        assert_eq!(q.usage("vqa").jobs_in_flight, 2);
    }
}
