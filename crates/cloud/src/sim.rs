//! The discrete-event queue simulation behind the paper's Fig. 12: jobs
//! arrive, a policy places their circuit batches on devices, runtime
//! sessions leave think-time gaps that other jobs can fill, and the outcome
//! is a (throughput, relative fidelity) point per policy.

use crate::device::CloudDevice;
use crate::job::{JobKind, JobOutcome, JobSpec};
use crate::policy::{place_job, Policy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Aggregate result of simulating one workload under one policy.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// The policy simulated.
    pub policy: Policy,
    /// Per-job outcomes.
    pub outcomes: Vec<JobOutcome>,
    /// Workload makespan: last circuit completion time.
    pub makespan: f64,
    /// Useful (nominal) circuits completed — EQC's duplicate executions are
    /// excluded here but occupy devices.
    pub useful_circuits: u64,
    /// All circuit executions performed, including policy overheads.
    pub executed_circuits: u64,
    /// Per-device busy seconds.
    pub device_busy: Vec<f64>,
    /// Per-device completed circuit executions.
    pub device_circuits: Vec<u64>,
}

impl SimulationResult {
    /// Throughput in useful circuits per second (the paper's Eq. 2).
    pub fn throughput(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.useful_circuits as f64 / self.makespan
    }

    /// Mean job fidelity relative to `best_fidelity` (the paper's y-axis).
    pub fn mean_relative_fidelity(&self, best_fidelity: f64) -> f64 {
        assert!(best_fidelity > 0.0);
        let sum: f64 = self.outcomes.iter().map(|o| o.fidelity).sum();
        sum / self.outcomes.len() as f64 / best_fidelity
    }

    /// Mean turnaround time over the workload.
    pub fn mean_turnaround(&self, jobs: &[JobSpec]) -> f64 {
        let total: f64 = self
            .outcomes
            .iter()
            .zip(jobs)
            .map(|(o, j)| o.turnaround(j))
            .sum();
        total / self.outcomes.len() as f64
    }

    /// Per-device utilization: busy seconds divided by the workload
    /// makespan, in device order. All zeros when nothing ran.
    pub fn utilization(&self) -> Vec<f64> {
        utilization(&self.device_busy, self.makespan)
    }

    /// Mean utilization across the fleet.
    pub fn mean_utilization(&self) -> f64 {
        mean_utilization(&self.device_busy, self.makespan)
    }

    /// Coefficient of variation of device busy time (load balance; lower is
    /// more balanced). Zero for an empty or entirely idle fleet.
    pub fn load_imbalance(&self) -> f64 {
        if self.device_busy.is_empty() {
            return 0.0;
        }
        let n = self.device_busy.len() as f64;
        let mean = self.device_busy.iter().sum::<f64>() / n;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = self
            .device_busy
            .iter()
            .map(|b| (b - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// Per-device utilization of a fleet: each device's busy seconds over the
/// shared makespan. All zeros when the makespan is zero. Shared by the
/// queue simulator and the multi-tenant orchestrator.
///
/// # Examples
///
/// ```
/// use qoncord_cloud::sim::{mean_utilization, utilization};
///
/// assert_eq!(utilization(&[5.0, 10.0], 10.0), vec![0.5, 1.0]);
/// assert_eq!(mean_utilization(&[5.0, 10.0], 10.0), 0.75);
/// assert_eq!(utilization(&[5.0], 0.0), vec![0.0], "idle fleet");
/// ```
pub fn utilization(device_busy: &[f64], makespan: f64) -> Vec<f64> {
    if makespan <= 0.0 {
        return vec![0.0; device_busy.len()];
    }
    device_busy.iter().map(|b| b / makespan).collect()
}

/// Mean of [`utilization`] across the fleet (0 for an empty fleet).
pub fn mean_utilization(device_busy: &[f64], makespan: f64) -> f64 {
    if device_busy.is_empty() {
        return 0.0;
    }
    utilization(device_busy, makespan).iter().sum::<f64>() / device_busy.len() as f64
}

/// Simulates `jobs` (sorted by arrival) on `devices` under `policy`.
///
/// Placement decisions happen at each job's arrival using current loads.
/// Runtime sessions run their batches sequentially with think-time gaps;
/// each batch's circuits are spread over the placements proportionally.
///
/// # Panics
///
/// Panics if `jobs` or `devices` is empty.
pub fn simulate(
    policy: Policy,
    jobs: &[JobSpec],
    devices: &[CloudDevice],
    seed: u64,
) -> SimulationResult {
    assert!(!jobs.is_empty(), "no jobs to simulate");
    assert!(!devices.is_empty(), "no devices to simulate");
    let mut devices: Vec<CloudDevice> = devices.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut useful = 0u64;
    let mut executed = 0u64;
    let mut makespan = 0.0_f64;
    for job in jobs {
        let placements = place_job(
            policy,
            &devices,
            job.total_circuits(),
            job.is_vqa,
            job.arrival,
            &mut rng,
        );
        let placed_total: u64 = placements.iter().map(|p| p.circuits).sum();
        // Effective fidelity: quality-weighted mix of the placement devices.
        let weight_total: f64 = placements.iter().map(|p| p.quality_weight).sum();
        let fidelity: f64 = placements
            .iter()
            .map(|p| devices[p.device].fidelity() * p.quality_weight)
            .sum::<f64>()
            / weight_total.max(1e-12);
        let mut completion = job.arrival;
        match job.kind {
            JobKind::Independent { .. } => {
                for p in &placements {
                    if p.circuits == 0 {
                        continue;
                    }
                    let dur = devices[p.device]
                        .scaled_duration(p.circuits as f64 * job.seconds_per_circuit);
                    let start = devices[p.device].schedule(job.arrival, dur);
                    devices[p.device].record_circuits(p.circuits);
                    completion = completion.max(start + dur);
                }
            }
            JobKind::RuntimeSession {
                n_batches,
                circuits_per_batch,
                inter_batch_delay,
            } => {
                // Spread each batch's circuits across placements
                // proportionally to their share; batches are serialized with
                // think-time gaps.
                let mut batch_ready = job.arrival;
                let scale = if placed_total == 0 {
                    0.0
                } else {
                    placed_total as f64 / job.total_circuits() as f64
                };
                for _ in 0..n_batches {
                    let mut batch_end = batch_ready;
                    for p in &placements {
                        if p.circuits == 0 {
                            continue;
                        }
                        let share = p.circuits as f64 / placed_total as f64;
                        let batch_circuits = (circuits_per_batch as f64 * scale * share).max(0.0);
                        if batch_circuits < 0.5 {
                            continue;
                        }
                        let n = batch_circuits.round() as u64;
                        let dur =
                            devices[p.device].scaled_duration(n as f64 * job.seconds_per_circuit);
                        let start = devices[p.device].schedule(batch_ready, dur);
                        devices[p.device].record_circuits(n);
                        batch_end = batch_end.max(start + dur);
                    }
                    batch_ready = batch_end + inter_batch_delay;
                    completion = completion.max(batch_end);
                }
            }
        }
        useful += job.total_circuits().min(placed_total.max(1));
        executed += placed_total;
        makespan = makespan.max(completion);
        outcomes.push(JobOutcome {
            id: job.id,
            completion,
            executed_circuits: placed_total,
            fidelity,
        });
    }
    SimulationResult {
        policy,
        outcomes,
        makespan,
        useful_circuits: useful,
        executed_circuits: executed,
        device_busy: devices.iter().map(|d| d.busy_time()).collect(),
        device_circuits: devices.iter().map(|d| d.completed_circuits()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::hypothetical_fleet;
    use crate::workload::{generate_workload, WorkloadConfig};

    fn small_workload(vqa_ratio: f64) -> Vec<JobSpec> {
        generate_workload(&WorkloadConfig {
            n_jobs: 200,
            vqa_ratio,
            ..WorkloadConfig::default()
        })
    }

    fn run(policy: Policy, vqa_ratio: f64) -> SimulationResult {
        simulate(
            policy,
            &small_workload(vqa_ratio),
            &hypothetical_fleet(10, 0.3, 0.9),
            7,
        )
    }

    #[test]
    fn all_policies_complete_all_jobs() {
        for policy in Policy::all() {
            let r = run(policy, 0.5);
            assert_eq!(r.outcomes.len(), 200, "{policy}");
            assert!(r.makespan > 0.0);
            assert!(r.throughput() > 0.0);
        }
    }

    #[test]
    fn best_fidelity_delivers_top_quality_but_low_throughput() {
        let bf = run(Policy::BestFidelity, 0.5);
        let lb = run(Policy::LeastBusy, 0.5);
        assert!(bf.mean_relative_fidelity(0.9) > 0.999);
        assert!(lb.mean_relative_fidelity(0.9) < 0.9);
        assert!(
            lb.throughput() > bf.throughput() * 1.5,
            "least busy {} vs best fidelity {}",
            lb.throughput(),
            bf.throughput()
        );
    }

    #[test]
    fn qoncord_nears_best_fidelity_quality_at_high_throughput() {
        // The Fig. 12 claim: Qoncord sits near the top-right corner — it
        // beats every policy except Best Fidelity on quality while keeping
        // throughput well above Best Fidelity.
        let q = run(Policy::Qoncord, 0.5);
        let bf = run(Policy::BestFidelity, 0.5);
        let q_fid = q.mean_relative_fidelity(0.9);
        for other in [
            Policy::LeastBusy,
            Policy::LoadWeighted,
            Policy::FidelityWeighted,
        ] {
            let o_fid = run(other, 0.5).mean_relative_fidelity(0.9);
            assert!(
                q_fid > o_fid,
                "Qoncord ({q_fid}) must beat {other} ({o_fid}) on quality"
            );
        }
        assert!(
            q.throughput() > bf.throughput(),
            "Qoncord throughput {} must beat best-fidelity {}",
            q.throughput(),
            bf.throughput()
        );
    }

    #[test]
    fn qoncord_quality_approaches_hf_as_vqa_ratio_grows() {
        // With a VQA-dominated workload nearly every job benefits from the
        // phase split; relative fidelity approaches the HF device's.
        let q = run(Policy::Qoncord, 0.9);
        let q_fid = q.mean_relative_fidelity(0.9);
        assert!(q_fid > 0.9, "fidelity {q_fid} at 90 % VQA ratio");
    }

    #[test]
    fn eqc_executes_extra_circuits() {
        let eqc = run(Policy::Eqc, 0.9);
        assert!(
            eqc.executed_circuits as f64 > eqc.useful_circuits as f64 * 1.5,
            "executed {} vs useful {}",
            eqc.executed_circuits,
            eqc.useful_circuits
        );
    }

    #[test]
    fn best_fidelity_has_worst_load_imbalance() {
        let bf = run(Policy::BestFidelity, 0.5);
        let lb = run(Policy::LeastBusy, 0.5);
        assert!(bf.load_imbalance() > lb.load_imbalance());
    }

    #[test]
    fn utilization_is_busy_over_makespan() {
        let r = run(Policy::LeastBusy, 0.5);
        let u = r.utilization();
        assert_eq!(u.len(), r.device_busy.len());
        for (ui, busy) in u.iter().zip(&r.device_busy) {
            assert!((0.0..=1.0 + 1e-9).contains(ui));
            assert!((ui * r.makespan - busy).abs() < 1e-9);
        }
        assert!(r.mean_utilization() > 0.0);
    }

    #[test]
    fn load_imbalance_is_zero_for_empty_or_idle_fleets() {
        let empty = SimulationResult {
            policy: Policy::LeastBusy,
            outcomes: vec![],
            makespan: 0.0,
            useful_circuits: 0,
            executed_circuits: 0,
            device_busy: vec![],
            device_circuits: vec![],
        };
        assert_eq!(empty.load_imbalance(), 0.0);
        assert!(!empty.load_imbalance().is_nan());
        let idle = SimulationResult {
            device_busy: vec![0.0, 0.0],
            device_circuits: vec![0, 0],
            ..empty
        };
        assert_eq!(idle.load_imbalance(), 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run(Policy::Qoncord, 0.3);
        let b = run(Policy::Qoncord, 0.3);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.executed_circuits, b.executed_circuits);
    }

    #[test]
    fn turnaround_positive() {
        let jobs = small_workload(0.5);
        let r = simulate(
            Policy::LeastBusy,
            &jobs,
            &hypothetical_fleet(10, 0.3, 0.9),
            7,
        );
        assert!(r.mean_turnaround(&jobs) > 0.0);
    }
}
