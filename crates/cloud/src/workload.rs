//! Workload generation per the paper's Sec. V-F: a pseudo workload of 1000
//! quantum jobs mixing independent tasks with runtime (VQA) sessions at a
//! configurable ratio, with execution times varying 3× between minimum and
//! maximum, and variable think-time delays inside sessions.

use crate::job::{JobKind, JobSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the pseudo-workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of jobs (the paper uses 1000).
    pub n_jobs: usize,
    /// Fraction of jobs that are VQA runtime sessions (the paper sweeps
    /// 0.1–0.9).
    pub vqa_ratio: f64,
    /// Mean inter-arrival time, seconds.
    pub mean_interarrival: f64,
    /// Minimum per-circuit execution time, seconds; the maximum is 3× this
    /// (the paper's empirical variation).
    pub min_seconds_per_circuit: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_jobs: 1000,
            vqa_ratio: 0.5,
            mean_interarrival: 1.0,
            min_seconds_per_circuit: 0.05,
            seed: 0xC10D,
        }
    }
}

/// Generates the job list, ordered by arrival time.
///
/// # Examples
///
/// ```
/// use qoncord_cloud::workload::{generate_workload, WorkloadConfig};
///
/// let jobs = generate_workload(&WorkloadConfig {
///     n_jobs: 50,
///     vqa_ratio: 0.4,
///     ..WorkloadConfig::default()
/// });
/// assert_eq!(jobs.len(), 50);
/// assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// assert!(jobs.iter().any(|j| j.is_vqa) && jobs.iter().any(|j| !j.is_vqa));
/// ```
///
/// # Panics
///
/// Panics if `vqa_ratio` is outside `[0, 1]` or `n_jobs == 0`.
pub fn generate_workload(config: &WorkloadConfig) -> Vec<JobSpec> {
    assert!(
        (0.0..=1.0).contains(&config.vqa_ratio),
        "vqa_ratio in [0,1]"
    );
    assert!(config.n_jobs > 0, "need at least one job");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut jobs = Vec::with_capacity(config.n_jobs);
    let mut clock = 0.0_f64;
    for id in 0..config.n_jobs {
        // Exponential inter-arrival times.
        let u: f64 = rng.random::<f64>().max(1e-12);
        clock += -config.mean_interarrival * u.ln();
        let is_vqa = rng.random::<f64>() < config.vqa_ratio;
        // Sec. V-F: execution times vary 3× between min and max.
        let seconds_per_circuit =
            config.min_seconds_per_circuit * (1.0 + 2.0 * rng.random::<f64>());
        let kind = if is_vqa {
            JobKind::RuntimeSession {
                n_batches: rng.random_range(5..=15),
                circuits_per_batch: rng.random_range(5..=20),
                inter_batch_delay: 1.0 + 4.0 * rng.random::<f64>(),
            }
        } else {
            JobKind::Independent {
                n_circuits: rng.random_range(1..=10),
            }
        };
        jobs.push(JobSpec {
            id,
            arrival: clock,
            kind,
            seconds_per_circuit,
            is_vqa,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let cfg = WorkloadConfig::default();
        assert_eq!(generate_workload(&cfg), generate_workload(&cfg));
    }

    #[test]
    fn arrival_times_are_sorted() {
        let jobs = generate_workload(&WorkloadConfig::default());
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn vqa_ratio_is_respected() {
        for ratio in [0.1, 0.5, 0.9] {
            let cfg = WorkloadConfig {
                vqa_ratio: ratio,
                n_jobs: 2000,
                ..WorkloadConfig::default()
            };
            let jobs = generate_workload(&cfg);
            let observed = jobs.iter().filter(|j| j.is_vqa).count() as f64 / jobs.len() as f64;
            assert!(
                (observed - ratio).abs() < 0.05,
                "ratio {ratio}: observed {observed}"
            );
        }
    }

    #[test]
    fn execution_times_vary_up_to_three_x() {
        let jobs = generate_workload(&WorkloadConfig {
            n_jobs: 3000,
            ..WorkloadConfig::default()
        });
        let min = jobs
            .iter()
            .map(|j| j.seconds_per_circuit)
            .fold(f64::INFINITY, f64::min);
        let max = jobs
            .iter()
            .map(|j| j.seconds_per_circuit)
            .fold(0.0_f64, f64::max);
        assert!(max / min > 2.5, "spread {}", max / min);
        assert!(max / min <= 3.0 + 1e-9);
    }

    #[test]
    fn vqa_jobs_are_sessions() {
        let jobs = generate_workload(&WorkloadConfig {
            vqa_ratio: 1.0,
            n_jobs: 50,
            ..WorkloadConfig::default()
        });
        assert!(jobs.iter().all(|j| j.kind.is_session()));
    }

    #[test]
    #[should_panic(expected = "vqa_ratio")]
    fn bad_ratio_rejected() {
        generate_workload(&WorkloadConfig {
            vqa_ratio: 1.5,
            ..WorkloadConfig::default()
        });
    }
}
