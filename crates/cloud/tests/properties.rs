//! Property-based tests of the queue simulator: conservation laws and
//! schedule validity under arbitrary workloads.

use proptest::prelude::*;
use qoncord_cloud::device::{hypothetical_fleet, CloudDevice};
use qoncord_cloud::policy::Policy;
use qoncord_cloud::sim::simulate;
use qoncord_cloud::workload::{generate_workload, WorkloadConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every policy completes every job, with completion ≥ arrival, and
    /// total busy time consistent with executed circuits.
    #[test]
    fn simulation_conservation_laws(
        vqa_ratio in 0.0..1.0f64,
        n_jobs in 20..120usize,
        seed in 0..1000u64,
    ) {
        let jobs = generate_workload(&WorkloadConfig {
            n_jobs,
            vqa_ratio,
            seed,
            ..WorkloadConfig::default()
        });
        let fleet = hypothetical_fleet(6, 0.3, 0.9);
        for policy in Policy::all() {
            let r = simulate(policy, &jobs, &fleet, seed);
            prop_assert_eq!(r.outcomes.len(), jobs.len());
            for (o, j) in r.outcomes.iter().zip(&jobs) {
                prop_assert!(o.completion >= j.arrival - 1e-9,
                    "{policy}: completion before arrival");
                prop_assert!((0.0..=1.0).contains(&o.fidelity));
            }
            prop_assert!(r.executed_circuits >= r.useful_circuits || r.useful_circuits == 0);
            let busy: f64 = r.device_busy.iter().sum();
            prop_assert!(busy > 0.0);
            prop_assert!(r.makespan > 0.0);
        }
    }

    /// Accounting invariants of the simulator itself: useful work never
    /// exceeds executed work, no device is busy past the makespan, and
    /// throughput is a finite non-negative rate.
    #[test]
    fn simulation_accounting_invariants(
        vqa_ratio in 0.0..1.0f64,
        n_jobs in 1..80usize,
        n_devices in 2..8usize,
        seed in 0..1000u64,
    ) {
        let jobs = generate_workload(&WorkloadConfig {
            n_jobs,
            vqa_ratio,
            seed,
            ..WorkloadConfig::default()
        });
        let fleet = hypothetical_fleet(n_devices, 0.3, 0.9);
        for policy in Policy::all() {
            let r = simulate(policy, &jobs, &fleet, seed);
            prop_assert!(r.useful_circuits <= r.executed_circuits,
                "{policy}: useful {} > executed {}", r.useful_circuits, r.executed_circuits);
            for (i, busy) in r.device_busy.iter().enumerate() {
                prop_assert!(*busy <= r.makespan + 1e-6,
                    "{policy}: device {i} busy {busy} exceeds makespan {}", r.makespan);
            }
            for u in r.utilization() {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "{policy}: utilization {u}");
            }
            let throughput = r.throughput();
            prop_assert!(throughput.is_finite(), "{policy}: throughput {throughput}");
            prop_assert!(throughput >= 0.0, "{policy}: throughput {throughput}");
        }
    }

    /// Device schedules never overlap: committed busy time within any
    /// window cannot exceed the window length.
    #[test]
    fn device_schedule_is_non_overlapping(
        durations in proptest::collection::vec(0.1..5.0f64, 1..30),
        releases in proptest::collection::vec(0.0..20.0f64, 1..30),
    ) {
        let mut dev = CloudDevice::new(0, 0.5, 1.0);
        let n = durations.len().min(releases.len());
        let mut total = 0.0;
        for i in 0..n {
            dev.schedule(releases[i], durations[i]);
            total += durations[i];
        }
        prop_assert!((dev.busy_time() - total).abs() < 1e-6,
            "busy {} vs scheduled {}", dev.busy_time(), total);
        prop_assert!(dev.horizon() >= total - 1e-9, "work cannot compress");
    }
}
