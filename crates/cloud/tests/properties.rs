//! Property-based tests of the queue simulator and the fair-share queue:
//! conservation laws, schedule validity, queue-accounting invariants under
//! arbitrary workloads, and the equivalence suite pinning the indexed
//! [`FairShareQueue`] to the retained linear-scan reference implementation
//! (bit-identical pop sequences and balances over random op interleavings).

use proptest::prelude::*;
use qoncord_cloud::device::{hypothetical_fleet, CloudDevice};
use qoncord_cloud::fairshare::{FairShareQueue, QueuedRequest};
use qoncord_cloud::policy::{
    merge_shard_results, projected_dispatch_order, split_restarts, Policy,
};
use qoncord_cloud::reference::ReferenceFairShareQueue;
use qoncord_cloud::sim::simulate;
use qoncord_cloud::workload::{generate_workload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Builds a queue holding `ids` as requests spread over a small user pool.
fn queue_of(ids: &[usize]) -> FairShareQueue {
    let mut q = FairShareQueue::new();
    for &id in ids {
        q.push(QueuedRequest {
            id,
            user: format!("user-{}", id % 3),
            requested_seconds: 1.0 + id as f64,
            submitted_at: id as f64,
        })
        .expect("finite fields and unique ids");
    }
    q
}

/// Sum of in-flight slots across every user the queue has seen.
fn total_in_flight(q: &FairShareQueue, users: usize) -> u32 {
    (0..users)
        .map(|u| q.usage(&format!("user-{u}")).jobs_in_flight)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every policy completes every job, with completion ≥ arrival, and
    /// total busy time consistent with executed circuits.
    #[test]
    fn simulation_conservation_laws(
        vqa_ratio in 0.0..1.0f64,
        n_jobs in 20..120usize,
        seed in 0..1000u64,
    ) {
        let jobs = generate_workload(&WorkloadConfig {
            n_jobs,
            vqa_ratio,
            seed,
            ..WorkloadConfig::default()
        });
        let fleet = hypothetical_fleet(6, 0.3, 0.9);
        for policy in Policy::all() {
            let r = simulate(policy, &jobs, &fleet, seed);
            prop_assert_eq!(r.outcomes.len(), jobs.len());
            for (o, j) in r.outcomes.iter().zip(&jobs) {
                prop_assert!(o.completion >= j.arrival - 1e-9,
                    "{policy}: completion before arrival");
                prop_assert!((0.0..=1.0).contains(&o.fidelity));
            }
            prop_assert!(r.executed_circuits >= r.useful_circuits || r.useful_circuits == 0);
            let busy: f64 = r.device_busy.iter().sum();
            prop_assert!(busy > 0.0);
            prop_assert!(r.makespan > 0.0);
        }
    }

    /// Accounting invariants of the simulator itself: useful work never
    /// exceeds executed work, no device is busy past the makespan, and
    /// throughput is a finite non-negative rate.
    #[test]
    fn simulation_accounting_invariants(
        vqa_ratio in 0.0..1.0f64,
        n_jobs in 1..80usize,
        n_devices in 2..8usize,
        seed in 0..1000u64,
    ) {
        let jobs = generate_workload(&WorkloadConfig {
            n_jobs,
            vqa_ratio,
            seed,
            ..WorkloadConfig::default()
        });
        let fleet = hypothetical_fleet(n_devices, 0.3, 0.9);
        for policy in Policy::all() {
            let r = simulate(policy, &jobs, &fleet, seed);
            prop_assert!(r.useful_circuits <= r.executed_circuits,
                "{policy}: useful {} > executed {}", r.useful_circuits, r.executed_circuits);
            for (i, busy) in r.device_busy.iter().enumerate() {
                prop_assert!(*busy <= r.makespan + 1e-6,
                    "{policy}: device {i} busy {busy} exceeds makespan {}", r.makespan);
            }
            for u in r.utilization() {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "{policy}: utilization {u}");
            }
            let throughput = r.throughput();
            prop_assert!(throughput.is_finite(), "{policy}: throughput {throughput}");
            prop_assert!(throughput >= 0.0, "{policy}: throughput {throughput}");
        }
    }

    /// `pop_where` with an all-rejecting predicate is a pure no-op: nothing
    /// is returned, the queue keeps its length, and no in-flight slot is
    /// released — and on an empty queue every operation is trivially inert.
    #[test]
    fn all_filtered_pop_and_cancel_are_noops(n in 0..24usize) {
        let ids: Vec<usize> = (0..n).collect();
        let mut q = queue_of(&ids);
        let in_flight_before = total_in_flight(&q, 3);
        prop_assert_eq!(in_flight_before as usize, n, "push tracks in-flight");

        prop_assert!(q.pop_where(|_| false).is_none());
        prop_assert_eq!(q.len(), n);
        prop_assert_eq!(total_in_flight(&q, 3), in_flight_before);

        prop_assert!(q.cancel_where(|_| false).is_empty());
        prop_assert_eq!(q.len(), n);
        prop_assert_eq!(total_in_flight(&q, 3), in_flight_before);

        // Empty-queue edge: drain everything, then poke the empty queue.
        while q.pop().is_some() {}
        prop_assert!(q.is_empty());
        prop_assert!(q.pop().is_none());
        prop_assert!(q.pop_where(|_| true).is_none());
        prop_assert!(q.cancel_where(|_| true).is_empty());
        prop_assert_eq!(total_in_flight(&q, 3), 0, "drain released every slot");
    }

    /// Cancelling an entry that was already popped neither removes anything
    /// else nor double-releases the popped request's in-flight slot.
    #[test]
    fn cancel_of_already_popped_entry_is_inert(n in 1..24usize, pick in 0..24usize) {
        let ids: Vec<usize> = (0..n).collect();
        let mut q = queue_of(&ids);
        let target = pick % n;
        let popped = q.pop_where(|r| r.id == target).expect("target is queued");
        prop_assert_eq!(popped.id, target);
        let len_after_pop = q.len();
        let in_flight_after_pop = total_in_flight(&q, 3);

        let cancelled = q.cancel_where(|r| r.id == target);
        prop_assert!(cancelled.is_empty(), "the entry is gone already");
        prop_assert_eq!(q.len(), len_after_pop);
        prop_assert_eq!(total_in_flight(&q, 3), in_flight_after_pop,
            "no double release of the popped slot");

        // A second cancel of everything still accounts exactly once.
        let swept = q.cancel_where(|_| true);
        prop_assert_eq!(swept.len(), n - 1);
        prop_assert_eq!(total_in_flight(&q, 3), 0);
    }

    /// Under any interleaving of pops and cancels, in-flight slots equal
    /// the number of requests still pending.
    #[test]
    fn in_flight_always_matches_pending(
        n in 0..24usize,
        ops in proptest::collection::vec((0..3u8, 0..24usize), 0..32),
    ) {
        let ids: Vec<usize> = (0..n).collect();
        let mut q = queue_of(&ids);
        for (op, arg) in ops {
            match op {
                0 => { q.pop(); }
                1 => { q.pop_where(|r| r.id % 4 == arg % 4); }
                _ => { q.cancel_where(|r| r.id == arg); }
            }
            prop_assert_eq!(total_in_flight(&q, 3) as usize, q.len());
        }
    }

    /// Invariants of QuSplit-style shard placement: shard widths sum to the
    /// restart count, no shard lands on a device below the job's tier, the
    /// fan-out bound holds, and the assigned indices form exactly the
    /// permutation `0..n_restarts`.
    #[test]
    fn split_placement_invariants(
        n_devices in 2..8usize,
        n_restarts in 0..40usize,
        max_fanout in 1..6usize,
        tier_floor in 0.2..0.95f64,
        seconds_per_restart in 0.0..20.0f64,
        backlogs in proptest::collection::vec(0.0..50.0f64, 8),
    ) {
        let mut devices = hypothetical_fleet(n_devices, 0.3, 0.9);
        for (device, backlog) in devices.iter_mut().zip(&backlogs) {
            device.schedule(0.0, *backlog);
        }
        let plan = split_restarts(
            &devices, tier_floor, n_restarts, seconds_per_restart, max_fanout, 0.0,
        );
        let eligible = devices.iter().filter(|d| d.fidelity() >= tier_floor).count();
        if eligible == 0 || n_restarts == 0 {
            prop_assert!(plan.is_empty());
        } else {
            prop_assert!(!plan.is_empty());
            let width_sum: usize = plan.iter().map(|s| s.width()).sum();
            prop_assert_eq!(width_sum, n_restarts, "shard widths sum to the restart count");
            prop_assert!(plan.len() <= max_fanout.min(eligible));
            for shard in &plan {
                let device = devices.iter().find(|d| d.id() == shard.device)
                    .expect("plan references a real device");
                prop_assert!(device.fidelity() >= tier_floor,
                    "shard landed below the job's tier");
                prop_assert!(shard.restarts.windows(2).all(|w| w[0] < w[1]),
                    "shard restart lists are ascending");
            }
            // The union of the shards is exactly 0..n_restarts.
            let merged = merge_shard_results(
                plan.iter().flat_map(|s| s.restarts.iter().map(|&r| (r, r))),
                n_restarts,
            );
            prop_assert_eq!(merged, Some((0..n_restarts).collect::<Vec<_>>()));
        }
    }

    /// Merging shard results is order-independent: any shuffle of the
    /// per-restart outcomes reassembles into the same restart-ordered list.
    #[test]
    fn shard_merge_is_order_independent(
        n_restarts in 1..40usize,
        n_shards in 1..6usize,
        seed in 0..1000u64,
    ) {
        // Deal restarts round-robin across shards, then flatten shard by
        // shard — already out of restart order — and additionally shuffle.
        let mut outcomes: Vec<(usize, usize)> = (0..n_shards)
            .flat_map(|s| {
                (0..n_restarts)
                    .filter(move |r| r % n_shards == s)
                    .map(|r| (r, r * 10))
            })
            .collect();
        let expected: Vec<usize> = (0..n_restarts).map(|r| r * 10).collect();
        prop_assert_eq!(
            merge_shard_results(outcomes.iter().copied(), n_restarts),
            Some(expected.clone())
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..outcomes.len()).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            outcomes.swap(i, j);
        }
        prop_assert_eq!(
            merge_shard_results(outcomes.iter().copied(), n_restarts),
            Some(expected)
        );
        // Dropping any single outcome breaks the permutation and the merge
        // refuses rather than misattributing.
        let partial = &outcomes[1..];
        prop_assert_eq!(merge_shard_results(partial.iter().copied(), n_restarts), None);
    }

    /// The decay-aware queue projection matches the fair-share queue's real
    /// pop order on random balances: ranking a *decayed copy* of the queue
    /// analytically (`projected_dispatch_order`) yields exactly the ids the
    /// queue itself would pop after `decay_usage` — the contract that lets
    /// admission-time feasibility reason about queue position without
    /// running the dispatcher.
    #[test]
    fn projected_queue_order_matches_pop_order(
        balances in proptest::collection::vec(0.0..500.0f64, 4),
        requests in proptest::collection::vec((0usize..4, 0..4u8), 1..24),
        decay_tenths in 0..11u32,
    ) {
        let decay_factor = decay_tenths as f64 / 10.0;
        let mut q = FairShareQueue::new();
        for (user, balance) in balances.iter().enumerate() {
            q.record_usage(&format!("user-{user}"), *balance).unwrap();
        }
        for (id, (user, size)) in requests.iter().enumerate() {
            q.push(QueuedRequest {
                id,
                user: format!("user-{user}"),
                // Sizes from a small discrete set, submission times shared
                // by consecutive triples: full score-and-time ties (which
                // real dispatch breaks by insertion order) are reachable.
                requested_seconds: [1.0, 2.0, 5.0, 10.0][*size as usize],
                submitted_at: (id / 3) as f64,
            })
            .unwrap();
        }
        let projected = projected_dispatch_order(&q, decay_factor);
        let mut realized = q.clone();
        realized.decay_usage(decay_factor).unwrap();
        let popped: Vec<usize> = realized.drain_ordered().iter().map(|r| r.id).collect();
        prop_assert_eq!(projected, popped);
    }

    /// Device schedules never overlap: committed busy time within any
    /// window cannot exceed the window length.
    #[test]
    fn device_schedule_is_non_overlapping(
        durations in proptest::collection::vec(0.1..5.0f64, 1..30),
        releases in proptest::collection::vec(0.0..20.0f64, 1..30),
    ) {
        let mut dev = CloudDevice::new(0, 0.5, 1.0);
        let n = durations.len().min(releases.len());
        let mut total = 0.0;
        for i in 0..n {
            dev.schedule(releases[i], durations[i]);
            total += durations[i];
        }
        prop_assert!((dev.busy_time() - total).abs() < 1e-6,
            "busy {} vs scheduled {}", dev.busy_time(), total);
        prop_assert!(dev.horizon() >= total - 1e-9, "work cannot compress");
    }
}

/// A request with tie-friendly discrete sizes and submission times shared by
/// consecutive pushes, so full score-and-time ties (which dispatch breaks by
/// insertion order) are reachable. The single byte picks both tenant and
/// size.
fn gen_req(id: usize, byte: u8, clock: usize) -> QueuedRequest {
    QueuedRequest {
        id,
        user: format!("user-{}", byte % 4),
        requested_seconds: [1.0, 2.0, 5.0, 10.0][(byte / 4 % 4) as usize],
        submitted_at: (clock / 2) as f64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The indexed [`FairShareQueue`] and the retained seed implementation
    /// ([`ReferenceFairShareQueue`]) produce bit-identical behavior over
    /// random op interleavings: every pop and cancel returns the same
    /// requests, lengths track each other after every op, and the final
    /// balances match to the last bit (`f64::to_bits`). The reference queue
    /// has no device lanes, so the test keeps a side table of each id's tag
    /// and expresses device pops as predicate pops — which is exactly what
    /// the seed orchestrator did before the indexed API existed.
    #[test]
    fn indexed_queue_matches_reference_on_random_interleavings(
        seed_balances in proptest::collection::vec(0.0..300.0f64, 4),
        ops in proptest::collection::vec((0..12u8, 0..255u8, 0..255u8), 1..48),
    ) {
        let mut q = FairShareQueue::new();
        let mut rq = ReferenceFairShareQueue::new();
        for (user, balance) in seed_balances.iter().enumerate() {
            q.record_usage(&format!("user-{user}"), *balance).unwrap();
            rq.record_usage(&format!("user-{user}"), *balance).unwrap();
        }
        // id -> (kind, device): 0 = free, 1 = device-targeted, 2 = hold.
        let mut tags: HashMap<usize, (u8, usize)> = HashMap::new();
        let mut next_id = 0usize;
        let mut clock = 0usize;
        for &(code, a, b) in &ops {
            match code {
                0..=2 => {
                    let r = gen_req(next_id, a, clock);
                    next_id += 1;
                    clock += 1;
                    let d = b as usize % 3;
                    match code {
                        0 => {
                            q.push(r.clone()).unwrap();
                            tags.insert(r.id, (0, 0));
                        }
                        1 => {
                            q.push_for_device(r.clone(), d).unwrap();
                            tags.insert(r.id, (1, d));
                        }
                        _ => {
                            q.push_hold(r.clone(), d).unwrap();
                            tags.insert(r.id, (2, d));
                        }
                    }
                    rq.push(r);
                }
                3 => prop_assert_eq!(q.pop(), rq.pop()),
                4 => {
                    let d = b as usize % 3;
                    let left = q.pop_for_device(d);
                    let right = rq.pop_where(|r| tags.get(&r.id) == Some(&(1, d)));
                    prop_assert_eq!(left, right);
                }
                5 => {
                    let k = b as usize % 3;
                    let left = q.pop_where(|r| r.id % 3 == k);
                    let right = rq.pop_where(|r| r.id % 3 == k);
                    prop_assert_eq!(left, right);
                }
                6 => {
                    let id = a as usize % next_id.max(1);
                    let left = q.pop_by_id(id);
                    let right = rq.pop_where(|r| r.id == id);
                    prop_assert_eq!(left, right);
                }
                7 => {
                    let id = a as usize % next_id.max(1);
                    let left: Vec<QueuedRequest> = q.cancel_by_id(id).into_iter().collect();
                    let right = rq.cancel_where(|r| r.id == id);
                    prop_assert_eq!(left, right);
                }
                8 => {
                    let k = b as usize % 4;
                    let left = q.cancel_where(|r| r.id % 4 == k);
                    let right = rq.cancel_where(|r| r.id % 4 == k);
                    prop_assert_eq!(left, right);
                }
                9 => {
                    let factor = (a % 11) as f64 / 10.0;
                    q.decay_usage(factor).unwrap();
                    rq.decay_usage(factor).unwrap();
                }
                10 => {
                    let user = format!("user-{}", b % 4);
                    let secs = (a % 60) as f64;
                    if a % 2 == 0 {
                        q.record_usage(&user, secs).unwrap();
                        rq.record_usage(&user, secs).unwrap();
                    } else {
                        q.credit_usage(&user, secs).unwrap();
                        rq.credit_usage(&user, secs).unwrap();
                    }
                }
                _ => {
                    let r = gen_req(next_id, a, clock);
                    next_id += 1;
                    clock += 1;
                    let burned = (b % 30) as f64;
                    tags.insert(r.id, (0, 0));
                    q.requeue_with_credit(r.clone(), burned).unwrap();
                    rq.requeue_with_credit(r, burned).unwrap();
                }
            }
            prop_assert_eq!(q.len(), rq.len());
        }
        for user in 0..4 {
            let name = format!("user-{user}");
            let (iu, ru) = (q.usage(&name), rq.usage(&name));
            prop_assert_eq!(
                iu.consumed_seconds.to_bits(), ru.consumed_seconds.to_bits(),
                "balance drift for {}: {} vs {}", name, iu.consumed_seconds, ru.consumed_seconds
            );
            prop_assert_eq!(iu.jobs_in_flight, ru.jobs_in_flight);
        }
        let pending_left: Vec<usize> = q.pending().map(|r| r.id).collect();
        let pending_right: Vec<usize> = rq.pending().map(|r| r.id).collect();
        prop_assert_eq!(pending_left, pending_right);
        prop_assert_eq!(q.drain_ordered(), rq.drain_ordered());
    }

    /// [`FairShareQueue::projected_backlog_ahead`] — the clone-free
    /// projection that admission control now consumes — matches a seed-style
    /// oracle bit for bit: clone the reference queue, apply the same credit
    /// and decay, enqueue the probe, and pop until it surfaces, charging
    /// each outranking request to its tagged device. Holds charge backlog;
    /// untargeted requests charge no device — on both sides.
    #[test]
    fn projected_backlog_matches_reference_clone_and_drain(
        seed_balances in proptest::collection::vec(0.0..300.0f64, 4),
        requests in proptest::collection::vec((0..4u8, 0..4u8, 0..3u8, 0..3u8), 1..24),
        probe_user in 0..4u8,
        credit_units in 0..40u32,
        decay_tenths in 0..11u32,
    ) {
        let factor = decay_tenths as f64 / 10.0;
        let credit = credit_units as f64 * 5.0;
        let n_devices = 3;
        let mut q = FairShareQueue::new();
        let mut rq = ReferenceFairShareQueue::new();
        for (user, balance) in seed_balances.iter().enumerate() {
            q.record_usage(&format!("user-{user}"), *balance).unwrap();
            rq.record_usage(&format!("user-{user}"), *balance).unwrap();
        }
        let mut tags: HashMap<usize, usize> = HashMap::new();
        for (id, &(user, size, kind, dev)) in requests.iter().enumerate() {
            let r = QueuedRequest {
                id,
                user: format!("user-{user}"),
                requested_seconds: [1.0, 2.0, 5.0, 10.0][size as usize],
                submitted_at: (id / 3) as f64,
            };
            let d = dev as usize;
            match kind {
                0 => q.push(r.clone()).unwrap(),
                1 => {
                    q.push_for_device(r.clone(), d).unwrap();
                    tags.insert(id, d);
                }
                _ => {
                    q.push_hold(r.clone(), d).unwrap();
                    tags.insert(id, d);
                }
            }
            rq.push(r);
        }
        let probe = QueuedRequest {
            id: usize::MAX,
            user: format!("user-{probe_user}"),
            requested_seconds: 4.0,
            submitted_at: requests.len() as f64,
        };
        let ahead = q.projected_backlog_ahead(&probe, credit, factor, n_devices);

        let mut oracle = rq.clone();
        oracle.credit_usage(&probe.user, credit).unwrap();
        oracle.decay_usage(factor).unwrap();
        oracle.push(probe.clone());
        let mut expect = vec![0.0f64; n_devices];
        while let Some(r) = oracle.pop() {
            if r.id == probe.id {
                break;
            }
            if let Some(&d) = tags.get(&r.id) {
                expect[d] += r.requested_seconds;
            }
        }
        let ahead_bits: Vec<u64> = ahead.iter().map(|v| v.to_bits()).collect();
        let expect_bits: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(ahead_bits, expect_bits);
        // The projection never mutates the real queue.
        prop_assert_eq!(q.len(), rq.len());
    }

    /// The rank-query projection under *forced full ties*: every tenant
    /// carries the identical balance, every request the identical size and
    /// submission time, so the cross-tenant key collapses to
    /// `(score, submitted_at, seq)` with score and time equal everywhere —
    /// only the insertion sequence separates requests. Round-robin pushes
    /// interleave the tenants so ties between tenant heads recur at every
    /// drain step, and the probe itself ties with the whole field. The
    /// clone-credit-decay-drain oracle must still agree bit for bit at each
    /// of the decay factors admission control actually uses (1.0 takes the
    /// ready-index fast path; the rest take the per-tenant head-test path).
    /// In debug builds every call additionally cross-checks the ranked
    /// answer against the exact-replay oracle internally.
    #[test]
    fn rank_projection_breaks_full_ties_by_insertion_order(
        n_users in 1..4usize,
        per_user in 1..8usize,
        decay_idx in 0..4usize,
        balance in 0.0..200.0f64,
        credit_units in 0..20u32,
    ) {
        let factor = [1.0, 0.9, 0.5, 0.0][decay_idx];
        let credit = credit_units as f64 * 5.0;
        let n_devices = 3;
        let mut q = FairShareQueue::new();
        let mut rq = ReferenceFairShareQueue::new();
        for user in 0..n_users {
            q.record_usage(&format!("user-{user}"), balance).unwrap();
            rq.record_usage(&format!("user-{user}"), balance).unwrap();
        }
        let mut id = 0usize;
        for _round in 0..per_user {
            for user in 0..n_users {
                let r = QueuedRequest {
                    id,
                    user: format!("user-{user}"),
                    requested_seconds: 5.0,
                    submitted_at: 0.0,
                };
                q.push_for_device(r.clone(), id % n_devices).unwrap();
                rq.push(r);
                id += 1;
            }
        }
        let probe = QueuedRequest {
            id: usize::MAX,
            user: "user-0".to_owned(),
            requested_seconds: 5.0,
            submitted_at: 0.0,
        };
        let ahead = q.projected_backlog_ahead(&probe, credit, factor, n_devices);

        let mut oracle = rq.clone();
        oracle.credit_usage(&probe.user, credit).unwrap();
        oracle.decay_usage(factor).unwrap();
        oracle.push(probe.clone());
        let mut expect = vec![0.0f64; n_devices];
        while let Some(r) = oracle.pop() {
            if r.id == probe.id {
                break;
            }
            expect[r.id % n_devices] += r.requested_seconds;
        }
        let ahead_bits: Vec<u64> = ahead.iter().map(|v| v.to_bits()).collect();
        let expect_bits: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(ahead_bits, expect_bits);
    }

    /// [`FairShareQueue::projected_backlog_for`] restricted to an arbitrary
    /// device subset (duplicates allowed — membership, not iteration,
    /// decides accumulation) agrees bitwise with the full projection on
    /// every listed device and reports exactly `0.0` for every unlisted
    /// one — the contract that lets admission price only a placement's
    /// devices without changing a single bit of the answer.
    #[test]
    fn filtered_backlog_projection_agrees_with_full(
        seed_balances in proptest::collection::vec(0.0..300.0f64, 4),
        requests in proptest::collection::vec((0..4u8, 0..4u8, 0..3u8, 0..4u8), 1..24),
        subset_mask in 0..16u8,
        probe_user in 0..4u8,
        credit_units in 0..20u32,
        decay_idx in 0..4usize,
    ) {
        let factor = [1.0, 0.9, 0.5, 0.0][decay_idx];
        let credit = credit_units as f64 * 5.0;
        let n_devices = 4;
        let mut q = FairShareQueue::new();
        for (user, balance) in seed_balances.iter().enumerate() {
            q.record_usage(&format!("user-{user}"), *balance).unwrap();
        }
        for (id, &(user, size, kind, dev)) in requests.iter().enumerate() {
            let r = QueuedRequest {
                id,
                user: format!("user-{user}"),
                requested_seconds: [1.0, 2.0, 5.0, 10.0][size as usize],
                submitted_at: (id / 3) as f64,
            };
            match kind {
                0 => q.push(r).unwrap(),
                1 => q.push_for_device(r, dev as usize).unwrap(),
                _ => q.push_hold(r, dev as usize).unwrap(),
            }
        }
        let probe = QueuedRequest {
            id: usize::MAX,
            user: format!("user-{probe_user}"),
            requested_seconds: 4.0,
            submitted_at: requests.len() as f64,
        };
        let mut devices: Vec<usize> = (0..n_devices)
            .filter(|d| subset_mask & (1 << d) != 0)
            .collect();
        if let Some(&first) = devices.first() {
            devices.push(first);
        }
        let full = q.projected_backlog_ahead(&probe, credit, factor, n_devices);
        let filtered = q.projected_backlog_for(&probe, credit, factor, n_devices, &devices);
        prop_assert_eq!(filtered.len(), full.len());
        for d in 0..n_devices {
            if devices.contains(&d) {
                prop_assert_eq!(
                    filtered[d].to_bits(), full[d].to_bits(),
                    "device {} listed but differs: {} vs {}", d, filtered[d], full[d]
                );
            } else {
                prop_assert_eq!(
                    filtered[d].to_bits(), 0.0f64.to_bits(),
                    "device {} unlisted but nonzero: {}", d, filtered[d]
                );
            }
        }
    }
}
