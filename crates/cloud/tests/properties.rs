//! Property-based tests of the queue simulator and the fair-share queue:
//! conservation laws, schedule validity, and queue-accounting invariants
//! under arbitrary workloads.

use proptest::prelude::*;
use qoncord_cloud::device::{hypothetical_fleet, CloudDevice};
use qoncord_cloud::fairshare::{FairShareQueue, QueuedRequest};
use qoncord_cloud::policy::{
    merge_shard_results, projected_dispatch_order, split_restarts, Policy,
};
use qoncord_cloud::sim::simulate;
use qoncord_cloud::workload::{generate_workload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a queue holding `ids` as requests spread over a small user pool.
fn queue_of(ids: &[usize]) -> FairShareQueue {
    let mut q = FairShareQueue::new();
    for &id in ids {
        q.push(QueuedRequest {
            id,
            user: format!("user-{}", id % 3),
            requested_seconds: 1.0 + id as f64,
            submitted_at: id as f64,
        });
    }
    q
}

/// Sum of in-flight slots across every user the queue has seen.
fn total_in_flight(q: &FairShareQueue, users: usize) -> u32 {
    (0..users)
        .map(|u| q.usage(&format!("user-{u}")).jobs_in_flight)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every policy completes every job, with completion ≥ arrival, and
    /// total busy time consistent with executed circuits.
    #[test]
    fn simulation_conservation_laws(
        vqa_ratio in 0.0..1.0f64,
        n_jobs in 20..120usize,
        seed in 0..1000u64,
    ) {
        let jobs = generate_workload(&WorkloadConfig {
            n_jobs,
            vqa_ratio,
            seed,
            ..WorkloadConfig::default()
        });
        let fleet = hypothetical_fleet(6, 0.3, 0.9);
        for policy in Policy::all() {
            let r = simulate(policy, &jobs, &fleet, seed);
            prop_assert_eq!(r.outcomes.len(), jobs.len());
            for (o, j) in r.outcomes.iter().zip(&jobs) {
                prop_assert!(o.completion >= j.arrival - 1e-9,
                    "{policy}: completion before arrival");
                prop_assert!((0.0..=1.0).contains(&o.fidelity));
            }
            prop_assert!(r.executed_circuits >= r.useful_circuits || r.useful_circuits == 0);
            let busy: f64 = r.device_busy.iter().sum();
            prop_assert!(busy > 0.0);
            prop_assert!(r.makespan > 0.0);
        }
    }

    /// Accounting invariants of the simulator itself: useful work never
    /// exceeds executed work, no device is busy past the makespan, and
    /// throughput is a finite non-negative rate.
    #[test]
    fn simulation_accounting_invariants(
        vqa_ratio in 0.0..1.0f64,
        n_jobs in 1..80usize,
        n_devices in 2..8usize,
        seed in 0..1000u64,
    ) {
        let jobs = generate_workload(&WorkloadConfig {
            n_jobs,
            vqa_ratio,
            seed,
            ..WorkloadConfig::default()
        });
        let fleet = hypothetical_fleet(n_devices, 0.3, 0.9);
        for policy in Policy::all() {
            let r = simulate(policy, &jobs, &fleet, seed);
            prop_assert!(r.useful_circuits <= r.executed_circuits,
                "{policy}: useful {} > executed {}", r.useful_circuits, r.executed_circuits);
            for (i, busy) in r.device_busy.iter().enumerate() {
                prop_assert!(*busy <= r.makespan + 1e-6,
                    "{policy}: device {i} busy {busy} exceeds makespan {}", r.makespan);
            }
            for u in r.utilization() {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "{policy}: utilization {u}");
            }
            let throughput = r.throughput();
            prop_assert!(throughput.is_finite(), "{policy}: throughput {throughput}");
            prop_assert!(throughput >= 0.0, "{policy}: throughput {throughput}");
        }
    }

    /// `pop_where` with an all-rejecting predicate is a pure no-op: nothing
    /// is returned, the queue keeps its length, and no in-flight slot is
    /// released — and on an empty queue every operation is trivially inert.
    #[test]
    fn all_filtered_pop_and_cancel_are_noops(n in 0..24usize) {
        let ids: Vec<usize> = (0..n).collect();
        let mut q = queue_of(&ids);
        let in_flight_before = total_in_flight(&q, 3);
        prop_assert_eq!(in_flight_before as usize, n, "push tracks in-flight");

        prop_assert!(q.pop_where(|_| false).is_none());
        prop_assert_eq!(q.len(), n);
        prop_assert_eq!(total_in_flight(&q, 3), in_flight_before);

        prop_assert!(q.cancel_where(|_| false).is_empty());
        prop_assert_eq!(q.len(), n);
        prop_assert_eq!(total_in_flight(&q, 3), in_flight_before);

        // Empty-queue edge: drain everything, then poke the empty queue.
        while q.pop().is_some() {}
        prop_assert!(q.is_empty());
        prop_assert!(q.pop().is_none());
        prop_assert!(q.pop_where(|_| true).is_none());
        prop_assert!(q.cancel_where(|_| true).is_empty());
        prop_assert_eq!(total_in_flight(&q, 3), 0, "drain released every slot");
    }

    /// Cancelling an entry that was already popped neither removes anything
    /// else nor double-releases the popped request's in-flight slot.
    #[test]
    fn cancel_of_already_popped_entry_is_inert(n in 1..24usize, pick in 0..24usize) {
        let ids: Vec<usize> = (0..n).collect();
        let mut q = queue_of(&ids);
        let target = pick % n;
        let popped = q.pop_where(|r| r.id == target).expect("target is queued");
        prop_assert_eq!(popped.id, target);
        let len_after_pop = q.len();
        let in_flight_after_pop = total_in_flight(&q, 3);

        let cancelled = q.cancel_where(|r| r.id == target);
        prop_assert!(cancelled.is_empty(), "the entry is gone already");
        prop_assert_eq!(q.len(), len_after_pop);
        prop_assert_eq!(total_in_flight(&q, 3), in_flight_after_pop,
            "no double release of the popped slot");

        // A second cancel of everything still accounts exactly once.
        let swept = q.cancel_where(|_| true);
        prop_assert_eq!(swept.len(), n - 1);
        prop_assert_eq!(total_in_flight(&q, 3), 0);
    }

    /// Under any interleaving of pops and cancels, in-flight slots equal
    /// the number of requests still pending.
    #[test]
    fn in_flight_always_matches_pending(
        n in 0..24usize,
        ops in proptest::collection::vec((0..3u8, 0..24usize), 0..32),
    ) {
        let ids: Vec<usize> = (0..n).collect();
        let mut q = queue_of(&ids);
        for (op, arg) in ops {
            match op {
                0 => { q.pop(); }
                1 => { q.pop_where(|r| r.id % 4 == arg % 4); }
                _ => { q.cancel_where(|r| r.id == arg); }
            }
            prop_assert_eq!(total_in_flight(&q, 3) as usize, q.len());
        }
    }

    /// Invariants of QuSplit-style shard placement: shard widths sum to the
    /// restart count, no shard lands on a device below the job's tier, the
    /// fan-out bound holds, and the assigned indices form exactly the
    /// permutation `0..n_restarts`.
    #[test]
    fn split_placement_invariants(
        n_devices in 2..8usize,
        n_restarts in 0..40usize,
        max_fanout in 1..6usize,
        tier_floor in 0.2..0.95f64,
        seconds_per_restart in 0.0..20.0f64,
        backlogs in proptest::collection::vec(0.0..50.0f64, 8),
    ) {
        let mut devices = hypothetical_fleet(n_devices, 0.3, 0.9);
        for (device, backlog) in devices.iter_mut().zip(&backlogs) {
            device.schedule(0.0, *backlog);
        }
        let plan = split_restarts(
            &devices, tier_floor, n_restarts, seconds_per_restart, max_fanout, 0.0,
        );
        let eligible = devices.iter().filter(|d| d.fidelity() >= tier_floor).count();
        if eligible == 0 || n_restarts == 0 {
            prop_assert!(plan.is_empty());
        } else {
            prop_assert!(!plan.is_empty());
            let width_sum: usize = plan.iter().map(|s| s.width()).sum();
            prop_assert_eq!(width_sum, n_restarts, "shard widths sum to the restart count");
            prop_assert!(plan.len() <= max_fanout.min(eligible));
            for shard in &plan {
                let device = devices.iter().find(|d| d.id() == shard.device)
                    .expect("plan references a real device");
                prop_assert!(device.fidelity() >= tier_floor,
                    "shard landed below the job's tier");
                prop_assert!(shard.restarts.windows(2).all(|w| w[0] < w[1]),
                    "shard restart lists are ascending");
            }
            // The union of the shards is exactly 0..n_restarts.
            let merged = merge_shard_results(
                plan.iter().flat_map(|s| s.restarts.iter().map(|&r| (r, r))),
                n_restarts,
            );
            prop_assert_eq!(merged, Some((0..n_restarts).collect::<Vec<_>>()));
        }
    }

    /// Merging shard results is order-independent: any shuffle of the
    /// per-restart outcomes reassembles into the same restart-ordered list.
    #[test]
    fn shard_merge_is_order_independent(
        n_restarts in 1..40usize,
        n_shards in 1..6usize,
        seed in 0..1000u64,
    ) {
        // Deal restarts round-robin across shards, then flatten shard by
        // shard — already out of restart order — and additionally shuffle.
        let mut outcomes: Vec<(usize, usize)> = (0..n_shards)
            .flat_map(|s| {
                (0..n_restarts)
                    .filter(move |r| r % n_shards == s)
                    .map(|r| (r, r * 10))
            })
            .collect();
        let expected: Vec<usize> = (0..n_restarts).map(|r| r * 10).collect();
        prop_assert_eq!(
            merge_shard_results(outcomes.iter().copied(), n_restarts),
            Some(expected.clone())
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..outcomes.len()).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            outcomes.swap(i, j);
        }
        prop_assert_eq!(
            merge_shard_results(outcomes.iter().copied(), n_restarts),
            Some(expected)
        );
        // Dropping any single outcome breaks the permutation and the merge
        // refuses rather than misattributing.
        let partial = &outcomes[1..];
        prop_assert_eq!(merge_shard_results(partial.iter().copied(), n_restarts), None);
    }

    /// The decay-aware queue projection matches the fair-share queue's real
    /// pop order on random balances: ranking a *decayed copy* of the queue
    /// analytically (`projected_dispatch_order`) yields exactly the ids the
    /// queue itself would pop after `decay_usage` — the contract that lets
    /// admission-time feasibility reason about queue position without
    /// running the dispatcher.
    #[test]
    fn projected_queue_order_matches_pop_order(
        balances in proptest::collection::vec(0.0..500.0f64, 4),
        requests in proptest::collection::vec((0usize..4, 0..4u8), 1..24),
        decay_tenths in 0..11u32,
    ) {
        let decay_factor = decay_tenths as f64 / 10.0;
        let mut q = FairShareQueue::new();
        for (user, balance) in balances.iter().enumerate() {
            q.record_usage(&format!("user-{user}"), *balance).unwrap();
        }
        for (id, (user, size)) in requests.iter().enumerate() {
            q.push(QueuedRequest {
                id,
                user: format!("user-{user}"),
                // Sizes from a small discrete set, submission times shared
                // by consecutive triples: full score-and-time ties (which
                // real dispatch breaks by insertion order) are reachable.
                requested_seconds: [1.0, 2.0, 5.0, 10.0][*size as usize],
                submitted_at: (id / 3) as f64,
            });
        }
        let projected = projected_dispatch_order(&q, decay_factor);
        let mut realized = q.clone();
        realized.decay_usage(decay_factor).unwrap();
        let popped: Vec<usize> = realized.drain_ordered().iter().map(|r| r.id).collect();
        prop_assert_eq!(projected, popped);
    }

    /// Device schedules never overlap: committed busy time within any
    /// window cannot exceed the window length.
    #[test]
    fn device_schedule_is_non_overlapping(
        durations in proptest::collection::vec(0.1..5.0f64, 1..30),
        releases in proptest::collection::vec(0.0..20.0f64, 1..30),
    ) {
        let mut dev = CloudDevice::new(0, 0.5, 1.0);
        let n = durations.len().min(releases.len());
        let mut total = 0.0;
        for i in 0..n {
            dev.schedule(releases[i], durations[i]);
            total += durations[i];
        }
        prop_assert!((dev.busy_time() - total).abs() < 1e-6,
            "busy {} vs scheduled {}", dev.busy_time(), total);
        prop_assert!(dev.horizon() >= total - 1e-9, "work cannot compress");
    }
}
