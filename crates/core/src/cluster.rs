//! Intermediate-value clustering for restart triage (Sec. IV-C/IV-H).
//!
//! The paper observes (Fig. 6) that restarts which eventually reach the
//! global optimum already cluster together in their intermediate expectation
//! values (~40 % through training). Qoncord therefore clusters the
//! intermediate values on the cheap device and promotes only the
//! best-performing cluster to higher-fidelity hardware.

/// Result of a 1-D k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster index per input value.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<f64>,
}

impl Clustering {
    /// Indices of inputs assigned to `cluster`.
    pub fn members(&self, cluster: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == cluster)
            .map(|(i, _)| i)
            .collect()
    }

    /// The cluster with the lowest centroid (best for minimization).
    pub fn best_cluster(&self) -> usize {
        self.centroids
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite centroids"))
            .map(|(i, _)| i)
            .expect("at least one cluster")
    }
}

/// Lloyd's k-means in one dimension with quantile-spread initialization.
///
/// # Panics
///
/// Panics if `values` is empty, `k == 0`, or `k > values.len()`.
pub fn kmeans_1d(values: &[f64], k: usize, max_iters: usize) -> Clustering {
    assert!(!values.is_empty(), "need at least one value");
    assert!(k > 0 && k <= values.len(), "k must be in 1..=len");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    // Initialize centroids at evenly spaced quantiles.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let pos = (i as f64 + 0.5) / k as f64 * (sorted.len() - 1) as f64;
            sorted[pos.round() as usize]
        })
        .collect();
    let mut assignments = vec![0usize; values.len()];
    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, &v) in values.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    (v - a.1)
                        .abs()
                        .partial_cmp(&(v - b.1).abs())
                        .expect("finite")
                })
                .map(|(c, _)| c)
                .expect("k >= 1");
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Update.
        for c in 0..k {
            let members: Vec<f64> = values
                .iter()
                .zip(&assignments)
                .filter(|(_, &a)| a == c)
                .map(|(&v, _)| v)
                .collect();
            if !members.is_empty() {
                centroids[c] = members.iter().sum::<f64>() / members.len() as f64;
            }
        }
        if !changed {
            break;
        }
    }
    Clustering {
        assignments,
        centroids,
    }
}

/// How Qoncord selects restarts to promote after exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionPolicy {
    /// Promote the members of the best intermediate-value cluster (the
    /// paper's scheme).
    TopCluster,
    /// Promote the k best restarts by raw intermediate value (the ablation
    /// of DESIGN.md item 3).
    TopK(usize),
    /// Promote everything (no triage).
    All,
}

impl SelectionPolicy {
    /// Upper bound on how many of `n_restarts` restarts can survive triage
    /// under this policy (TopCluster is data-dependent, so its bound is the
    /// full restart count). Capacity planners — e.g. the orchestrator's
    /// fine-tuning shard fan-out — size by this instead of the raw restart
    /// count, since only survivors ever fine-tune.
    pub fn max_survivors(&self, n_restarts: usize) -> usize {
        match self {
            SelectionPolicy::TopK(k) => (*k).clamp(1, n_restarts.max(1)),
            SelectionPolicy::TopCluster | SelectionPolicy::All => n_restarts,
        }
    }
}

/// Minimum centroid separation, relative to the mean |value|, for the triage
/// to act; closer clusters mean the restarts are statistically
/// indistinguishable and all are kept.
pub const MIN_CLUSTER_SEPARATION: f64 = 0.05;

/// Absolute floor on centroid separation (in expectation-value units) below
/// which triage never acts.
pub const MIN_ABS_SEPARATION: f64 = 0.02;

/// Selects the restart indices to promote, given per-restart intermediate
/// expectation values (lower = better).
///
/// With [`SelectionPolicy::TopCluster`], values are split by 2-means; if the
/// centroids are closer than [`MIN_CLUSTER_SEPARATION`] relative to the value
/// spread, everything is promoted.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn select_restarts(values: &[f64], policy: SelectionPolicy) -> Vec<usize> {
    assert!(!values.is_empty(), "no restarts to select from");
    match policy {
        SelectionPolicy::All => (0..values.len()).collect(),
        SelectionPolicy::TopK(k) => {
            let mut indexed: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
            indexed.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values"));
            indexed.into_iter().take(k.max(1)).map(|(i, _)| i).collect()
        }
        SelectionPolicy::TopCluster => {
            if values.len() < 4 {
                return (0..values.len()).collect();
            }
            let clustering = kmeans_1d(values, 2, 50);
            let mean_abs = values.iter().map(|v| v.abs()).sum::<f64>() / values.len() as f64;
            let spread = values.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
                - values.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let separation = (clustering.centroids[0] - clustering.centroids[1]).abs();
            // Two scales: a magnitude-relative floor for well-resolved
            // landscapes, tightened to the observed spread when noise
            // compresses all restarts into a narrow band.
            let required = (MIN_CLUSTER_SEPARATION * mean_abs)
                .min(0.5 * spread)
                .max(MIN_ABS_SEPARATION);
            if separation < required {
                return (0..values.len()).collect();
            }
            let best = clustering.best_cluster();
            let members = clustering.members(best);
            if members.is_empty() {
                (0..values.len()).collect()
            } else {
                members
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_separates_two_blobs() {
        let values = [-6.9, -6.8, -7.0, -3.1, -3.0, -2.9];
        let c = kmeans_1d(&values, 2, 100);
        let good = c.best_cluster();
        let members = c.members(good);
        assert_eq!(members, vec![0, 1, 2]);
        assert!((c.centroids[good] + 6.9).abs() < 0.1);
    }

    #[test]
    fn kmeans_single_cluster_is_mean() {
        let values = [1.0, 2.0, 3.0];
        let c = kmeans_1d(&values, 1, 10);
        assert!((c.centroids[0] - 2.0).abs() < 1e-12);
        assert_eq!(c.assignments, vec![0, 0, 0]);
    }

    #[test]
    fn top_cluster_promotes_good_restarts() {
        // Mirrors Fig. 13: ~19 of 50 restarts form the good cluster.
        let mut values = vec![-6.8; 19];
        values.extend(vec![-4.2; 31]);
        let selected = select_restarts(&values, SelectionPolicy::TopCluster);
        assert_eq!(selected.len(), 19);
        assert!(selected.iter().all(|&i| i < 19));
    }

    #[test]
    fn indistinguishable_values_keep_everything() {
        let values = vec![-5.0, -5.001, -4.999, -5.0005, -5.0, -4.9995];
        let selected = select_restarts(&values, SelectionPolicy::TopCluster);
        assert_eq!(selected.len(), values.len());
    }

    #[test]
    fn tiny_restart_sets_skip_triage() {
        let values = vec![-6.0, -2.0, -4.0];
        let selected = select_restarts(&values, SelectionPolicy::TopCluster);
        assert_eq!(selected.len(), 3, "fewer than 4 restarts are all kept");
    }

    #[test]
    fn top_k_selects_exactly_k_best() {
        let values = vec![-1.0, -5.0, -3.0, -4.0, -2.0];
        let selected = select_restarts(&values, SelectionPolicy::TopK(2));
        assert_eq!(selected, vec![1, 3]);
    }

    #[test]
    fn all_policy_keeps_order() {
        let values = vec![-1.0, -2.0];
        assert_eq!(select_restarts(&values, SelectionPolicy::All), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "no restarts")]
    fn empty_selection_panics() {
        select_restarts(&[], SelectionPolicy::All);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn kmeans_k_larger_than_data_panics() {
        kmeans_1d(&[1.0], 2, 10);
    }
}
