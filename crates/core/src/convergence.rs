//! The adaptive convergence checker (Sec. IV-F/IV-G of the paper).
//!
//! Qoncord terminates a training phase only when **both** the expectation
//! value and the Shannon entropy of the output distribution have saturated:
//! either signal alone can plateau while the other still shows headroom
//! (Fig. 10's entropy arc), so single-metric checks terminate prematurely.
//!
//! Two tiers exist (Sec. IV-G): a *relaxed* checker (shorter patience window)
//! for every device before the last — further fine-tuning downstream can
//! still improve the solution — and a *strict* checker on the final device.

use qoncord_vqa::restart::IterationRecord;

/// Whether training should continue or has saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceStatus {
    /// Keep iterating.
    Continue,
    /// Both metrics are flat; terminate the phase.
    Saturated,
}

/// Tuning of a [`ConvergenceChecker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceConfig {
    /// Number of trailing iterations that must be flat.
    pub window: usize,
    /// Maximum expectation-value range within the window to count as flat.
    pub expectation_tolerance: f64,
    /// Maximum entropy range (bits) within the window to count as flat.
    pub entropy_tolerance: f64,
    /// Minimum iterations before saturation may be declared.
    pub min_iterations: usize,
    /// When `false`, only the expectation is checked (the ablation of
    /// DESIGN.md item 1; the paper argues this terminates prematurely).
    pub joint: bool,
}

impl ConvergenceConfig {
    /// The strict (final-device) configuration: long patience window.
    pub fn strict() -> Self {
        ConvergenceConfig {
            window: 10,
            expectation_tolerance: 0.05,
            entropy_tolerance: 0.08,
            min_iterations: 15,
            joint: true,
        }
    }

    /// The relaxed (non-final device) configuration: half the patience, per
    /// the paper's example of triggering at five instead of ten stale
    /// iterations.
    pub fn relaxed() -> Self {
        ConvergenceConfig {
            window: 5,
            expectation_tolerance: 0.08,
            entropy_tolerance: 0.12,
            min_iterations: 8,
            joint: true,
        }
    }

    /// Returns a copy with joint checking disabled (expectation only).
    pub fn expectation_only(mut self) -> Self {
        self.joint = false;
        self
    }
}

/// Streaming saturation detector over (expectation, entropy) pairs.
///
/// # Examples
///
/// ```
/// use qoncord_core::convergence::{ConvergenceChecker, ConvergenceConfig, ConvergenceStatus};
///
/// let mut checker = ConvergenceChecker::new(ConvergenceConfig::relaxed());
/// // A flat signal saturates once min_iterations and the window are filled.
/// let mut status = ConvergenceStatus::Continue;
/// for _ in 0..20 {
///     status = checker.observe(-5.0, 2.0);
/// }
/// assert_eq!(status, ConvergenceStatus::Saturated);
/// ```
#[derive(Debug, Clone)]
pub struct ConvergenceChecker {
    config: ConvergenceConfig,
    history: Vec<(f64, f64)>,
}

impl ConvergenceChecker {
    /// Creates a checker with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or tolerances are negative.
    pub fn new(config: ConvergenceConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(
            config.expectation_tolerance >= 0.0 && config.entropy_tolerance >= 0.0,
            "tolerances must be non-negative"
        );
        ConvergenceChecker {
            config,
            history: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ConvergenceConfig {
        &self.config
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Returns `true` if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Feeds one iteration's metrics and reports the status.
    pub fn observe(&mut self, expectation: f64, entropy: f64) -> ConvergenceStatus {
        self.history.push((expectation, entropy));
        self.status()
    }

    /// Feeds an [`IterationRecord`] (convenience for training loops).
    pub fn observe_record(&mut self, record: &IterationRecord) -> ConvergenceStatus {
        self.observe(record.expectation, record.entropy)
    }

    /// The current status without adding an observation.
    pub fn status(&self) -> ConvergenceStatus {
        let n = self.history.len();
        if n < self.config.min_iterations || n < self.config.window {
            return ConvergenceStatus::Continue;
        }
        let window = &self.history[n - self.config.window..];
        let (mut e_min, mut e_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut s_min, mut s_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(e, s) in window {
            e_min = e_min.min(e);
            e_max = e_max.max(e);
            s_min = s_min.min(s);
            s_max = s_max.max(s);
        }
        let expectation_flat = e_max - e_min <= self.config.expectation_tolerance;
        let entropy_flat = s_max - s_min <= self.config.entropy_tolerance;
        let saturated = if self.config.joint {
            expectation_flat && entropy_flat
        } else {
            expectation_flat
        };
        if saturated {
            ConvergenceStatus::Saturated
        } else {
            ConvergenceStatus::Continue
        }
    }

    /// Last observed entropy, if any.
    pub fn last_entropy(&self) -> Option<f64> {
        self.history.last().map(|&(_, s)| s)
    }

    /// Best (minimum) expectation observed.
    pub fn best_expectation(&self) -> Option<f64> {
        self.history
            .iter()
            .map(|&(e, _)| e)
            .min_by(|a, b| a.partial_cmp(b).expect("finite expectations"))
    }

    /// Clears the history (e.g. when migrating to a new device).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(checker: &mut ConvergenceChecker, pairs: &[(f64, f64)]) -> ConvergenceStatus {
        let mut status = ConvergenceStatus::Continue;
        for &(e, s) in pairs {
            status = checker.observe(e, s);
        }
        status
    }

    #[test]
    fn flat_signal_saturates() {
        let mut c = ConvergenceChecker::new(ConvergenceConfig::strict());
        let status = feed(&mut c, &vec![(-3.0, 2.0); 20]);
        assert_eq!(status, ConvergenceStatus::Saturated);
    }

    #[test]
    fn improving_expectation_keeps_going() {
        let mut c = ConvergenceChecker::new(ConvergenceConfig::strict());
        let pairs: Vec<(f64, f64)> = (0..30).map(|i| (-(i as f64) * 0.2, 2.0)).collect();
        assert_eq!(feed(&mut c, &pairs), ConvergenceStatus::Continue);
    }

    #[test]
    fn moving_entropy_blocks_saturation_in_joint_mode() {
        // Expectation plateaus but entropy still falls: the paper's case for
        // joint checking — optimization is still making progress.
        let mut c = ConvergenceChecker::new(ConvergenceConfig::strict());
        let pairs: Vec<(f64, f64)> = (0..30).map(|i| (-3.0, 4.0 - 0.1 * i as f64)).collect();
        assert_eq!(feed(&mut c, &pairs), ConvergenceStatus::Continue);
    }

    #[test]
    fn expectation_only_ablation_terminates_prematurely() {
        // Same trajectory as above, but the ablated checker fires — the
        // premature termination DESIGN.md's ablation 1 documents.
        let cfg = ConvergenceConfig::strict().expectation_only();
        let mut c = ConvergenceChecker::new(cfg);
        let pairs: Vec<(f64, f64)> = (0..30).map(|i| (-3.0, 4.0 - 0.1 * i as f64)).collect();
        assert_eq!(feed(&mut c, &pairs), ConvergenceStatus::Saturated);
    }

    #[test]
    fn min_iterations_gate() {
        let mut c = ConvergenceChecker::new(ConvergenceConfig::relaxed());
        for _ in 0..7 {
            assert_eq!(c.observe(-1.0, 1.0), ConvergenceStatus::Continue);
        }
        assert_eq!(c.observe(-1.0, 1.0), ConvergenceStatus::Saturated);
    }

    #[test]
    fn relaxed_fires_before_strict() {
        let mut relaxed = ConvergenceChecker::new(ConvergenceConfig::relaxed());
        let mut strict = ConvergenceChecker::new(ConvergenceConfig::strict());
        let mut relaxed_at = None;
        let mut strict_at = None;
        for i in 0..40 {
            // Noisy-but-flat signal after iteration 5.
            let e = if i < 5 { -(i as f64) } else { -5.0 };
            if relaxed.observe(e, 2.0) == ConvergenceStatus::Saturated && relaxed_at.is_none() {
                relaxed_at = Some(i);
            }
            if strict.observe(e, 2.0) == ConvergenceStatus::Saturated && strict_at.is_none() {
                strict_at = Some(i);
            }
        }
        assert!(relaxed_at.unwrap() < strict_at.unwrap());
    }

    #[test]
    fn reset_clears_history() {
        let mut c = ConvergenceChecker::new(ConvergenceConfig::relaxed());
        feed(&mut c, &[(-1.0, 1.0); 10]);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.status(), ConvergenceStatus::Continue);
    }

    #[test]
    fn best_expectation_tracks_minimum() {
        let mut c = ConvergenceChecker::new(ConvergenceConfig::relaxed());
        feed(&mut c, &[(-1.0, 1.0), (-4.0, 1.5), (-2.0, 1.2)]);
        assert_eq!(c.best_expectation(), Some(-4.0));
        assert_eq!(c.last_entropy(), Some(1.2));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let cfg = ConvergenceConfig {
            window: 0,
            ..ConvergenceConfig::strict()
        };
        let _ = ConvergenceChecker::new(cfg);
    }
}
