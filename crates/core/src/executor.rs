//! Device lanes: the pairing of a calibration, a workload evaluator, and a
//! P_correct estimate that the scheduler's device ladder is built from.

use qoncord_device::calibration::Calibration;
use qoncord_device::fidelity;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_vqa::evaluator::CostEvaluator;
use std::fmt;

/// Builds a workload evaluator bound to a specific backend.
///
/// Implemented by the QAOA and VQE factories below and by any
/// `Fn(SimulatedBackend, u64) -> Box<dyn CostEvaluator>` closure.
pub trait EvaluatorFactory {
    /// Creates an evaluator running on `backend`, seeded with `seed`.
    fn make(&self, backend: SimulatedBackend, seed: u64) -> Box<dyn CostEvaluator>;
}

impl<F> EvaluatorFactory for F
where
    F: Fn(SimulatedBackend, u64) -> Box<dyn CostEvaluator>,
{
    fn make(&self, backend: SimulatedBackend, seed: u64) -> Box<dyn CostEvaluator> {
        self(backend, seed)
    }
}

/// Factory for QAOA Max-Cut evaluators.
#[derive(Debug, Clone)]
pub struct QaoaFactory {
    /// The Max-Cut instance.
    pub problem: qoncord_vqa::maxcut::MaxCut,
    /// QAOA depth.
    pub layers: usize,
}

impl EvaluatorFactory for QaoaFactory {
    fn make(&self, backend: SimulatedBackend, seed: u64) -> Box<dyn CostEvaluator> {
        Box::new(qoncord_vqa::evaluator::QaoaEvaluator::new(
            &self.problem,
            self.layers,
            backend,
            seed,
        ))
    }
}

/// Factory for VQE evaluators.
#[derive(Debug, Clone)]
pub struct VqeFactory {
    /// The observable to minimize.
    pub hamiltonian: qoncord_vqa::pauli::PauliSum,
    /// The parametric ansatz.
    pub ansatz: qoncord_circuit::circuit::Circuit,
}

impl EvaluatorFactory for VqeFactory {
    fn make(&self, backend: SimulatedBackend, seed: u64) -> Box<dyn CostEvaluator> {
        Box::new(qoncord_vqa::evaluator::VqeEvaluator::new(
            &self.hamiltonian,
            &self.ansatz,
            backend,
            seed,
        ))
    }
}

/// One rung of the device ladder: device, bound evaluator, and its
/// P_correct estimate for this workload.
pub struct DeviceLane {
    /// The device calibration.
    pub calibration: Calibration,
    /// The workload evaluator bound to this device (accumulates executions).
    pub evaluator: Box<dyn CostEvaluator>,
    /// Estimated execution fidelity (Eq. 1).
    pub p_correct: f64,
}

impl fmt::Debug for DeviceLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceLane")
            .field("device", &self.calibration.name())
            .field("p_correct", &self.p_correct)
            .field("executions", &self.evaluator.executions())
            .finish()
    }
}

/// Devices rejected while building the ladder, with the reason.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedDevice {
    /// Device name.
    pub device: String,
    /// Why it was rejected.
    pub reason: RejectionReason,
}

/// Why a device was excluded from the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectionReason {
    /// Fewer qubits than the workload needs.
    TooSmall,
    /// P_correct fell below the minimum fidelity threshold (Sec. IV-E).
    BelowMinFidelity {
        /// The estimate that failed the filter.
        estimate: f64,
    },
}

impl fmt::Display for RejectionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectionReason::TooSmall => write!(f, "too few qubits for the workload"),
            RejectionReason::BelowMinFidelity { estimate } => {
                write!(
                    f,
                    "P_correct {estimate:.4} below the minimum fidelity threshold"
                )
            }
        }
    }
}

impl fmt::Display for RejectedDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.device, self.reason)
    }
}

/// Builds the device ladder for a workload: instantiates an evaluator per
/// viable device, estimates P_correct from that device's own transpiled
/// footprint, filters by `min_fidelity`, and sorts ascending by fidelity
/// (exploration first, fine-tuning last).
///
/// Returns the ladder plus the rejected devices.
pub fn build_lanes(
    devices: &[Calibration],
    factory: &dyn EvaluatorFactory,
    min_fidelity: f64,
    seed: u64,
) -> (Vec<DeviceLane>, Vec<RejectedDevice>) {
    let mut lanes = Vec::new();
    let mut rejected = Vec::new();
    for (i, cal) in devices.iter().enumerate() {
        let backend = SimulatedBackend::from_calibration(cal.clone());
        // Probe the workload size cheaply via a trial evaluator on the
        // largest device; skip devices that are too small to transpile onto.
        let evaluator = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            factory.make(backend, seed.wrapping_add(i as u64 * 1009))
        })) {
            Ok(e) => e,
            Err(_) => {
                rejected.push(RejectedDevice {
                    device: cal.name().to_owned(),
                    reason: RejectionReason::TooSmall,
                });
                continue;
            }
        };
        let stats = evaluator.circuit_stats();
        let estimate = fidelity::p_correct(cal, &stats);
        if estimate < min_fidelity {
            rejected.push(RejectedDevice {
                device: cal.name().to_owned(),
                reason: RejectionReason::BelowMinFidelity { estimate },
            });
            continue;
        }
        lanes.push(DeviceLane {
            calibration: cal.clone(),
            evaluator,
            p_correct: estimate,
        });
    }
    lanes.sort_by(|a, b| {
        a.p_correct
            .partial_cmp(&b.p_correct)
            .expect("fidelities are finite")
    });
    (lanes, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoncord_device::catalog;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn factory(layers: usize) -> QaoaFactory {
        QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers,
        }
    }

    #[test]
    fn lanes_sorted_ascending_by_fidelity() {
        let devices = vec![catalog::ibmq_kolkata(), catalog::ibmq_toronto()];
        let (lanes, rejected) = build_lanes(&devices, &factory(1), 0.0, 1);
        assert_eq!(lanes.len(), 2);
        assert!(rejected.is_empty());
        assert_eq!(lanes[0].calibration.name(), "ibmq_toronto");
        assert_eq!(lanes[1].calibration.name(), "ibmq_kolkata");
        assert!(lanes[0].p_correct <= lanes[1].p_correct);
    }

    #[test]
    fn min_fidelity_filter_drops_noisy_device_at_depth() {
        // With depth, Toronto's estimate collapses below the 0.1 threshold
        // (the paper's Fig. 8 observation) while Kolkata survives. Our
        // transpiled circuits are somewhat heavier than the paper's, so the
        // crossover lands at 2 layers instead of 3.
        let devices = vec![catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
        let (lanes, rejected) = build_lanes(&devices, &factory(2), 0.1, 1);
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].calibration.name(), "ibmq_kolkata");
        assert_eq!(rejected.len(), 1);
        assert!(matches!(
            rejected[0].reason,
            RejectionReason::BelowMinFidelity { .. }
        ));
    }

    #[test]
    fn too_small_devices_rejected() {
        // A 7-qubit problem cannot fit a 3-qubit hypothetical device.
        let small = catalog::hypothetical_depolarizing("tiny", 3, 0.001, 0.001);
        let devices = vec![small, catalog::ibmq_kolkata()];
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panic
        let (lanes, rejected) = build_lanes(&devices, &factory(1), 0.0, 1);
        std::panic::set_hook(prev);
        assert_eq!(lanes.len(), 1);
        assert_eq!(rejected[0].reason, RejectionReason::TooSmall);
    }

    #[test]
    fn rejection_reasons_display_cleanly() {
        let small = RejectedDevice {
            device: "tiny".into(),
            reason: RejectionReason::TooSmall,
        };
        assert_eq!(small.to_string(), "tiny: too few qubits for the workload");
        let noisy = RejectedDevice {
            device: "fuzzy".into(),
            reason: RejectionReason::BelowMinFidelity { estimate: 0.0421 },
        };
        assert_eq!(
            noisy.to_string(),
            "fuzzy: P_correct 0.0421 below the minimum fidelity threshold"
        );
    }

    #[test]
    fn closure_factory_works() {
        let problem = MaxCut::new(Graph::paper_graph_7());
        let f = move |backend: SimulatedBackend, seed: u64| -> Box<dyn CostEvaluator> {
            Box::new(qoncord_vqa::evaluator::QaoaEvaluator::new(
                &problem, 1, backend, seed,
            ))
        };
        let (lanes, _) = build_lanes(&[catalog::ibmq_kolkata()], &f, 0.0, 0);
        assert_eq!(lanes.len(), 1);
    }
}
