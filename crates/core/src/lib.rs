//! # qoncord-core
//!
//! The Qoncord scheduler — the primary contribution of *"Qoncord: A
//! Multi-Device Job Scheduling Framework for Variational Quantum
//! Algorithms"* (MICRO 2024).
//!
//! Qoncord rests on two observations:
//!
//! 1. **Not all VQA iterations are equal** (Sec. IV-B): early *exploration*
//!    iterations tolerate noise; late *fine-tuning* iterations do not. So
//!    exploration runs on low-fidelity/low-load devices and only fine-tuning
//!    occupies high-fidelity/high-load ones.
//! 2. **Not all restarts are equal** (Sec. IV-C): restart quality is already
//!    visible in intermediate expectation values, which cluster. Poor
//!    restarts are terminated after cheap exploration.
//!
//! The pieces:
//!
//! - [`convergence`] — the adaptive joint (expectation ∧ entropy) saturation
//!   checker with relaxed/strict tiers (Sec. IV-F/IV-G).
//! - [`cluster`] — 1-D k-means triage of intermediate values (Sec. IV-H).
//! - [`executor`] — device lanes: evaluator + P_correct per device.
//! - [`phase`] — resumable per-batch training phases, the unit a
//!   multi-tenant orchestrator schedules as device reservations.
//! - [`scheduler`] — the ladder orchestration (Fig. 7) and single-device
//!   baselines.
//! - [`prof`] — wall-clock span profiling (re-export of `qoncord-prof`):
//!   install a [`prof::Profiler`] and every instrumented kernel from the
//!   simulator up through the orchestrator attributes its real CPU cost.
//!
//! ## Example
//!
//! ```no_run
//! use qoncord_core::executor::QaoaFactory;
//! use qoncord_core::scheduler::{QoncordConfig, QoncordScheduler};
//! use qoncord_device::catalog;
//! use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
//!
//! let factory = QaoaFactory { problem: MaxCut::new(Graph::paper_graph_7()), layers: 3 };
//! let scheduler = QoncordScheduler::new(QoncordConfig::default());
//! let devices = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
//! let report = scheduler.run(&devices, &factory, 50).unwrap();
//! println!(
//!     "best ratio {:.3}, {} restarts terminated early, {} total executions",
//!     report.best_approximation_ratio(),
//!     report.terminated_restarts(),
//!     report.total_executions(),
//! );
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod convergence;
pub mod executor;
pub mod phase;
pub mod scheduler;
pub mod timeline;

/// Wall-clock span profiling, shared by every layer of the workspace.
///
/// This is the canonical path to the profiler (`core::prof`); the
/// implementation lives in the dependency-free `qoncord-prof` crate so the
/// simulator, transpiler, and queue crates below `qoncord-core` can carry
/// spans too.
pub mod prof {
    pub use qoncord_prof::*;
}

pub use cluster::{kmeans_1d, select_restarts, Clustering, SelectionPolicy};
pub use convergence::{ConvergenceChecker, ConvergenceConfig, ConvergenceStatus};
pub use executor::{build_lanes, DeviceLane, EvaluatorFactory, QaoaFactory, VqeFactory};
pub use phase::{BatchOutcome, PhaseRunner};
pub use scheduler::{
    exploration_seed, finetune_seed, run_single_device, DeviceUsage, PhaseTrace, QoncordConfig,
    QoncordReport, QoncordScheduler, RestartReport, ScheduleError,
};
pub use timeline::{estimate_timeline, QueueModel, TimelineEstimate};
