//! Resumable per-batch training phases.
//!
//! [`crate::scheduler::QoncordScheduler`] runs each phase as a closed loop,
//! but a multi-tenant orchestrator cannot: when many jobs share a device
//! fleet, every optimizer batch is a separate device reservation and phases
//! from different tenants interleave. [`PhaseRunner`] carries the full state
//! of one phase — parameters, SPSA schedule, RNG, trace, and convergence
//! checker — between batches, so a phase can be suspended after any batch
//! and resumed later with identical results to the closed loop (see
//! `run_phase` in the scheduler, which is built on it).

use crate::convergence::{ConvergenceChecker, ConvergenceConfig, ConvergenceStatus};
use crate::scheduler::PhaseTrace;
use qoncord_vqa::evaluator::CostEvaluator;
use qoncord_vqa::optimizer::Spsa;
use qoncord_vqa::restart::{train_step, IterationRecord, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one batch (one optimizer iteration) of a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOutcome {
    /// The iteration's record (expectation + entropy at the new iterate).
    pub record: IterationRecord,
    /// Circuit executions the batch consumed on the device.
    pub executions: u64,
    /// Whether the phase is finished (saturated or out of budget).
    pub finished: bool,
}

/// A snapshot of the resume-relevant optimizer state of a phase at a batch
/// boundary: the iterate, how many iterations have run, and the circuit
/// executions consumed so far.
///
/// This is what a preemptible device lease carries as its "saved state":
/// because [`PhaseRunner`] only mutates between [`PhaseRunner::step`] calls,
/// evicting a job at (or before) a batch boundary and resuming the same
/// runner later replays the remaining iterations bit-identically — the
/// checkpoint certifies *where* the phase was when the lease was recalled.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCheckpoint {
    /// The iterate at the checkpoint.
    pub params: Vec<f64>,
    /// Iterations completed in the phase so far.
    pub iteration: usize,
    /// Circuit executions the phase has consumed so far.
    pub executions: u64,
}

impl PhaseCheckpoint {
    /// Serializes the checkpoint to a self-describing little-endian byte
    /// string (for audit logs or handing a lease record across processes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + 8 * self.params.len());
        out.extend_from_slice(&(self.iteration as u64).to_le_bytes());
        out.extend_from_slice(&self.executions.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for p in &self.params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Deserializes a checkpoint written by [`to_bytes`](Self::to_bytes).
    /// Returns `None` on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let word = |i: usize| -> Option<[u8; 8]> { bytes.get(8 * i..8 * i + 8)?.try_into().ok() };
        let iteration = usize::try_from(u64::from_le_bytes(word(0)?)).ok()?;
        let executions = u64::from_le_bytes(word(1)?);
        let n = usize::try_from(u64::from_le_bytes(word(2)?)).ok()?;
        let expected = n.checked_mul(8).and_then(|b| b.checked_add(24))?;
        if bytes.len() != expected {
            return None;
        }
        let params = (0..n)
            .map(|i| word(3 + i).map(f64::from_le_bytes))
            .collect::<Option<Vec<f64>>>()?;
        Some(PhaseCheckpoint {
            params,
            iteration,
            executions,
        })
    }
}

/// A [`PhaseCheckpoint`] tagged with the sub-lease coordinates that
/// produced it: which *shard* of the job held the device lease and which
/// *restart* the checkpointed phase belongs to.
///
/// A job split QuSplit-style holds several concurrent sub-leases, one per
/// shard; when one of them is evicted, the bare phase snapshot is no longer
/// enough to certify a lossless resume — the engine must also verify that
/// the re-granted batch belongs to the same shard and restart the recalled
/// lease was serving. This is the saved state every sub-lease carries.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Shard of the job the lease was serving (0 for unsplit jobs).
    pub shard: usize,
    /// Restart index the checkpointed phase belongs to.
    pub restart: usize,
    /// The phase snapshot itself.
    pub phase: PhaseCheckpoint,
}

impl ShardCheckpoint {
    /// Serializes the checkpoint (shard and restart words followed by the
    /// phase bytes of [`PhaseCheckpoint::to_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&(self.shard as u64).to_le_bytes());
        out.extend_from_slice(&(self.restart as u64).to_le_bytes());
        out.extend_from_slice(&self.phase.to_bytes());
        out
    }

    /// Deserializes a checkpoint written by [`to_bytes`](Self::to_bytes).
    /// Returns `None` on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let word = |i: usize| -> Option<[u8; 8]> { bytes.get(8 * i..8 * i + 8)?.try_into().ok() };
        let shard = usize::try_from(u64::from_le_bytes(word(0)?)).ok()?;
        let restart = usize::try_from(u64::from_le_bytes(word(1)?)).ok()?;
        let phase = PhaseCheckpoint::from_bytes(bytes.get(16..)?)?;
        Some(ShardCheckpoint {
            shard,
            restart,
            phase,
        })
    }
}

/// One training phase driven batch-by-batch.
///
/// # Examples
///
/// ```
/// use qoncord_core::convergence::ConvergenceConfig;
/// use qoncord_core::phase::PhaseRunner;
/// use qoncord_device::catalog;
/// use qoncord_device::noise_model::SimulatedBackend;
/// use qoncord_vqa::evaluator::QaoaEvaluator;
/// use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
///
/// let problem = MaxCut::new(Graph::new(3, &[(0, 1, 1.0), (1, 2, 1.0)]));
/// let backend = SimulatedBackend::ideal(catalog::ibmq_kolkata());
/// let mut eval = QaoaEvaluator::new(&problem, 1, backend, 0);
/// let mut runner = PhaseRunner::new(vec![0.3, 0.2], ConvergenceConfig::relaxed(), 5, 7);
/// while !runner.is_finished() {
///     runner.step(&mut eval);
/// }
/// let (params, phase) = runner.finish("ibmq_kolkata".to_owned());
/// assert_eq!(params.len(), 2);
/// assert_eq!(phase.trace.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct PhaseRunner {
    checker: ConvergenceChecker,
    optimizer: Spsa,
    rng: StdRng,
    params: Vec<f64>,
    trace: Trace,
    executions: u64,
    max_iterations: usize,
    saturated: bool,
}

impl PhaseRunner {
    /// Creates a runner starting from `initial`, converging per `checker`,
    /// with at most `max_iterations` batches; `seed` drives the SPSA
    /// perturbations (same seeding as the closed-loop scheduler).
    pub fn new(
        initial: Vec<f64>,
        checker: ConvergenceConfig,
        max_iterations: usize,
        seed: u64,
    ) -> Self {
        PhaseRunner {
            checker: ConvergenceChecker::new(checker),
            optimizer: Spsa::default(),
            rng: StdRng::seed_from_u64(seed),
            params: initial,
            trace: Trace::default(),
            executions: 0,
            max_iterations,
            saturated: false,
        }
    }

    /// Whether the phase is over: the checker saturated or the iteration
    /// budget is exhausted.
    pub fn is_finished(&self) -> bool {
        self.saturated || self.trace.len() >= self.max_iterations
    }

    /// Runs one batch (one optimizer iteration) on `evaluator`.
    ///
    /// # Panics
    ///
    /// Panics if the phase [`is_finished`](Self::is_finished).
    pub fn step(&mut self, evaluator: &mut dyn CostEvaluator) -> BatchOutcome {
        assert!(!self.is_finished(), "phase already finished");
        let before = evaluator.executions();
        let iteration = self.trace.len();
        let record = train_step(
            evaluator,
            &mut self.optimizer,
            &mut self.params,
            iteration,
            &mut self.rng,
        );
        self.trace.records.push(record);
        if self.checker.observe_record(&record) == ConvergenceStatus::Saturated {
            self.saturated = true;
        }
        let executions = evaluator.executions() - before;
        self.executions += executions;
        BatchOutcome {
            record,
            executions,
            finished: self.is_finished(),
        }
    }

    /// The current iterate.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Snapshots the resume-relevant state at the current batch boundary.
    pub fn checkpoint(&self) -> PhaseCheckpoint {
        PhaseCheckpoint {
            params: self.params.clone(),
            iteration: self.trace.len(),
            executions: self.executions,
        }
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Circuit executions consumed by the phase so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Consumes the runner into the final parameters and the phase trace
    /// attributed to `device`.
    pub fn finish(self, device: String) -> (Vec<f64>, PhaseTrace) {
        (
            self.params,
            PhaseTrace {
                device,
                trace: self.trace,
                executions: self.executions,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoncord_device::catalog;
    use qoncord_device::noise_model::SimulatedBackend;
    use qoncord_vqa::evaluator::QaoaEvaluator;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn evaluator() -> QaoaEvaluator {
        let problem = MaxCut::new(Graph::new(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]));
        QaoaEvaluator::new(
            &problem,
            1,
            SimulatedBackend::ideal(catalog::ibmq_kolkata()),
            0,
        )
    }

    #[test]
    fn runs_to_budget_and_counts_executions() {
        let mut eval = evaluator();
        let mut runner = PhaseRunner::new(vec![0.2, 0.2], ConvergenceConfig::strict(), 10, 4);
        let mut batches = 0;
        while !runner.is_finished() {
            let out = runner.step(&mut eval);
            assert_eq!(out.executions, 3, "SPSA: 2 evals + 1 trace eval");
            batches += 1;
        }
        assert_eq!(batches, 10);
        assert_eq!(runner.executions(), 30);
        assert_eq!(runner.trace().len(), 10);
        let (params, phase) = runner.finish("dev".to_owned());
        assert_eq!(params.len(), 2);
        assert_eq!(phase.executions, 30);
        assert_eq!(phase.device, "dev");
    }

    #[test]
    fn saturation_stops_early() {
        // A tolerant checker saturates as soon as min_iterations is hit.
        let cfg = ConvergenceConfig {
            window: 2,
            expectation_tolerance: 100.0,
            entropy_tolerance: 100.0,
            min_iterations: 3,
            joint: true,
        };
        let mut eval = evaluator();
        let mut runner = PhaseRunner::new(vec![0.1, 0.1], cfg, 50, 4);
        while !runner.is_finished() {
            runner.step(&mut eval);
        }
        assert_eq!(runner.trace().len(), 3);
    }

    #[test]
    fn checkpoint_tracks_progress_and_round_trips() {
        let mut eval = evaluator();
        let mut runner = PhaseRunner::new(vec![0.2, 0.3], ConvergenceConfig::strict(), 10, 4);
        assert_eq!(runner.checkpoint().iteration, 0);
        runner.step(&mut eval);
        runner.step(&mut eval);
        let ckpt = runner.checkpoint();
        assert_eq!(ckpt.iteration, 2);
        assert_eq!(ckpt.executions, 6);
        assert_eq!(ckpt.params, runner.params());
        let bytes = ckpt.to_bytes();
        assert_eq!(PhaseCheckpoint::from_bytes(&bytes), Some(ckpt));
        assert_eq!(PhaseCheckpoint::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert_eq!(PhaseCheckpoint::from_bytes(&[]), None);
        // A corrupt length word must not overflow the size check.
        let mut corrupt = bytes.clone();
        corrupt[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(PhaseCheckpoint::from_bytes(&corrupt), None);
    }

    #[test]
    fn shard_checkpoint_round_trips() {
        let ckpt = ShardCheckpoint {
            shard: 3,
            restart: 7,
            phase: PhaseCheckpoint {
                params: vec![0.25, 1.5],
                iteration: 4,
                executions: 12,
            },
        };
        let bytes = ckpt.to_bytes();
        assert_eq!(ShardCheckpoint::from_bytes(&bytes), Some(ckpt));
        assert_eq!(ShardCheckpoint::from_bytes(&bytes[..15]), None);
        assert_eq!(ShardCheckpoint::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert_eq!(ShardCheckpoint::from_bytes(&[]), None);
    }

    #[test]
    fn zero_budget_finishes_immediately() {
        let runner = PhaseRunner::new(vec![0.1], ConvergenceConfig::relaxed(), 0, 0);
        assert!(runner.is_finished());
    }

    #[test]
    #[should_panic(expected = "phase already finished")]
    fn stepping_a_finished_phase_panics() {
        let mut eval = evaluator();
        let mut runner = PhaseRunner::new(vec![0.1, 0.1], ConvergenceConfig::relaxed(), 0, 0);
        runner.step(&mut eval);
    }
}
