//! The Qoncord scheduler (Fig. 7 of the paper): fidelity-ranked device
//! ladder, exploration on the cheapest device, cluster-based restart triage,
//! and progressive fine-tuning with relaxed/strict convergence tiers.

use crate::cluster::{select_restarts, SelectionPolicy};
use crate::convergence::ConvergenceConfig;
use crate::executor::{build_lanes, DeviceLane, EvaluatorFactory, RejectedDevice};
use crate::phase::PhaseRunner;
use qoncord_device::calibration::Calibration;
use qoncord_device::fidelity::MIN_FIDELITY_THRESHOLD;
use qoncord_vqa::restart::{executions_for_iterations, random_initial_points, Trace};
use std::fmt;

/// Error returned when scheduling cannot proceed.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// Every candidate device was filtered out (too small or below the
    /// minimum fidelity threshold).
    NoViableDevice {
        /// The rejected devices and reasons.
        rejected: Vec<RejectedDevice>,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoViableDevice { rejected } => {
                write!(f, "no device passed the fidelity filter (")?;
                for (i, r) in rejected.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Tuning of the Qoncord scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct QoncordConfig {
    /// Minimum P_correct for a device to participate (Sec. IV-E; 0.1).
    pub min_fidelity: f64,
    /// Iteration budget of the exploration phase per restart.
    pub exploration_max_iterations: usize,
    /// Iteration budget of each fine-tuning phase per restart.
    pub finetune_max_iterations: usize,
    /// Convergence tier on non-final devices (Sec. IV-G).
    pub relaxed: ConvergenceConfig,
    /// Convergence tier on the final device.
    pub strict: ConvergenceConfig,
    /// Restart triage policy after exploration (Sec. IV-H).
    pub selection: SelectionPolicy,
    /// Check that entropy decreases when stepping up the ladder and skip the
    /// tier otherwise (Sec. IV-F's device-transition test).
    pub entropy_gate: bool,
    /// Extra entropy a higher tier may add before being skipped, in bits.
    pub entropy_gate_slack: f64,
    /// Base RNG seed (initial points, SPSA perturbations, trajectory noise).
    pub seed: u64,
}

impl Default for QoncordConfig {
    fn default() -> Self {
        QoncordConfig {
            min_fidelity: MIN_FIDELITY_THRESHOLD,
            exploration_max_iterations: 40,
            finetune_max_iterations: 60,
            relaxed: ConvergenceConfig::relaxed(),
            strict: ConvergenceConfig::strict(),
            selection: SelectionPolicy::TopCluster,
            entropy_gate: true,
            entropy_gate_slack: 0.15,
            seed: 0xC0C0,
        }
    }
}

impl QoncordConfig {
    /// A-priori estimate of the total circuit executions an `n_restarts` job
    /// will consume: every restart explores and (on a multi-device ladder)
    /// fine-tunes to its full iteration budget, at SPSA's fixed per-iteration
    /// execution cost. Triage pruning and convergence-driven early exits only
    /// shrink the real footprint, so this bounds it from above — the number
    /// placement and deadline-admission decisions size a job by before any
    /// circuit has run.
    pub fn estimated_total_executions(&self, n_restarts: usize) -> u64 {
        n_restarts as u64
            * executions_for_iterations(
                self.exploration_max_iterations + self.finetune_max_iterations,
            )
    }
}

/// RNG seed of a restart's exploration phase, derived from the scheduler's
/// base seed. Shared with the multi-tenant orchestrator so batch-wise
/// execution reproduces the closed loop exactly.
pub fn exploration_seed(base: u64, restart: usize) -> u64 {
    base ^ (restart as u64).wrapping_mul(0x9E37_79B9)
}

/// RNG seed of a restart's fine-tuning phase on ladder rung `lane`, derived
/// from the scheduler's base seed (see [`exploration_seed`]).
pub fn finetune_seed(base: u64, restart: usize, lane: usize) -> u64 {
    base ^ ((restart as u64) << 8) ^ (lane as u64)
}

/// One phase (device visit) of a restart's execution.
#[derive(Debug, Clone)]
pub struct PhaseTrace {
    /// The device the phase ran on.
    pub device: String,
    /// Per-iteration trace.
    pub trace: Trace,
    /// Circuit executions this phase consumed.
    pub executions: u64,
}

/// Full record of one restart under Qoncord.
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// Restart index.
    pub index: usize,
    /// Initial parameter vector.
    pub initial_params: Vec<f64>,
    /// Final parameter vector (post last phase it ran).
    pub final_params: Vec<f64>,
    /// The phases the restart went through, in order.
    pub phases: Vec<PhaseTrace>,
    /// Whether the restart survived triage and was fine-tuned.
    pub survived: bool,
    /// The intermediate (exploration) expectation used for triage.
    pub exploration_expectation: f64,
    /// Final expectation value.
    pub final_expectation: f64,
}

/// Per-device usage accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceUsage {
    /// Device name.
    pub device: String,
    /// P_correct estimate for this workload.
    pub p_correct: f64,
    /// Total circuit executions on the device.
    pub executions: u64,
}

/// The scheduler's full output.
#[derive(Debug, Clone)]
pub struct QoncordReport {
    /// Per-restart records.
    pub restarts: Vec<RestartReport>,
    /// Per-device usage, ladder order (ascending fidelity).
    pub devices: Vec<DeviceUsage>,
    /// Devices excluded by the fidelity filter.
    pub rejected: Vec<RejectedDevice>,
    /// Ground-truth minimum of the observable.
    pub ground_energy: f64,
}

impl QoncordReport {
    /// The best (minimum) final expectation across restarts.
    pub fn best_expectation(&self) -> f64 {
        self.restarts
            .iter()
            .map(|r| r.final_expectation)
            .min_by(|a, b| a.partial_cmp(b).expect("finite expectations"))
            .expect("at least one restart")
    }

    /// Approximation ratio of the best restart (Eq. 3).
    pub fn best_approximation_ratio(&self) -> f64 {
        qoncord_vqa::metrics::approximation_ratio(self.best_expectation(), self.ground_energy)
    }

    /// Approximation ratios of the restarts that survived triage.
    pub fn survivor_ratios(&self) -> Vec<f64> {
        self.restarts
            .iter()
            .filter(|r| r.survived)
            .map(|r| {
                qoncord_vqa::metrics::approximation_ratio(r.final_expectation, self.ground_energy)
            })
            .collect()
    }

    /// Total circuit executions across devices.
    pub fn total_executions(&self) -> u64 {
        self.devices.iter().map(|d| d.executions).sum()
    }

    /// Number of restarts terminated at triage.
    pub fn terminated_restarts(&self) -> usize {
        self.restarts.iter().filter(|r| !r.survived).count()
    }
}

/// The Qoncord multi-device job scheduler.
///
/// # Examples
///
/// ```
/// use qoncord_core::scheduler::{QoncordConfig, QoncordScheduler};
/// use qoncord_core::executor::QaoaFactory;
/// use qoncord_core::cluster::SelectionPolicy;
/// use qoncord_device::catalog;
/// use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
///
/// let factory = QaoaFactory { problem: MaxCut::new(Graph::paper_graph_7()), layers: 1 };
/// let mut config = QoncordConfig::default();
/// config.exploration_max_iterations = 10;
/// config.finetune_max_iterations = 10;
/// config.selection = SelectionPolicy::All;
/// let scheduler = QoncordScheduler::new(config);
/// let devices = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
/// let report = scheduler.run(&devices, &factory, 2).unwrap();
/// assert_eq!(report.restarts.len(), 2);
/// assert_eq!(report.devices.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct QoncordScheduler {
    config: QoncordConfig,
}

impl QoncordScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: QoncordConfig) -> Self {
        QoncordScheduler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &QoncordConfig {
        &self.config
    }

    /// Runs a multi-restart VQA task across `devices`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoViableDevice`] if every device is filtered
    /// out by the minimum-fidelity check.
    ///
    /// # Panics
    ///
    /// Panics if `n_restarts == 0`.
    pub fn run(
        &self,
        devices: &[Calibration],
        factory: &dyn EvaluatorFactory,
        n_restarts: usize,
    ) -> Result<QoncordReport, ScheduleError> {
        assert!(n_restarts > 0, "need at least one restart");
        let cfg = &self.config;
        let (mut lanes, rejected) = build_lanes(devices, factory, cfg.min_fidelity, cfg.seed);
        if lanes.is_empty() {
            return Err(ScheduleError::NoViableDevice { rejected });
        }
        let n_params = lanes[0].evaluator.n_params();
        let ground_energy = lanes[0].evaluator.ground_energy();
        let initials = random_initial_points(n_params, n_restarts, cfg.seed);

        // ---- Phase 1: exploration of every restart on the cheapest lane ----
        let multi_device = lanes.len() > 1;
        let mut reports: Vec<RestartReport> = Vec::with_capacity(n_restarts);
        for (index, initial) in initials.iter().enumerate() {
            let checker_cfg = if multi_device {
                cfg.relaxed
            } else {
                cfg.strict
            };
            let max_iters = if multi_device {
                cfg.exploration_max_iterations
            } else {
                cfg.exploration_max_iterations + cfg.finetune_max_iterations
            };
            let phase = run_phase(
                &mut lanes[0],
                initial.clone(),
                checker_cfg,
                max_iters,
                exploration_seed(cfg.seed, index),
            );
            let exploration_expectation =
                phase.1.trace.final_expectation().unwrap_or(f64::INFINITY);
            reports.push(RestartReport {
                index,
                initial_params: initial.clone(),
                final_params: phase.0,
                phases: vec![phase.1],
                survived: true,
                exploration_expectation,
                final_expectation: exploration_expectation,
            });
        }

        // ---- Phase 2: triage (not all restarts are equal) ----
        if multi_device {
            let intermediates: Vec<f64> =
                reports.iter().map(|r| r.exploration_expectation).collect();
            let keep = select_restarts(&intermediates, cfg.selection);
            for (i, report) in reports.iter_mut().enumerate() {
                report.survived = keep.contains(&i);
            }
        }

        // ---- Phase 3: progressive fine-tuning up the ladder ----
        for lane_idx in 1..lanes.len() {
            let is_final = lane_idx == lanes.len() - 1;
            let checker_cfg = if is_final { cfg.strict } else { cfg.relaxed };
            for report in reports.iter_mut().filter(|r| r.survived) {
                // Entropy gate: a higher tier must look *less* noisy at the
                // current iterate, else skip it (Sec. IV-F); the final tier
                // always runs so the strict check happens somewhere.
                if cfg.entropy_gate && !is_final {
                    let prev_entropy = report
                        .phases
                        .last()
                        .and_then(|p| p.trace.records.last())
                        .map(|r| r.entropy);
                    let probe = lanes[lane_idx].evaluator.evaluate(&report.final_params);
                    if let Some(prev) = prev_entropy {
                        if probe.entropy > prev + cfg.entropy_gate_slack {
                            continue;
                        }
                    }
                }
                let phase = run_phase(
                    &mut lanes[lane_idx],
                    report.final_params.clone(),
                    checker_cfg,
                    cfg.finetune_max_iterations,
                    finetune_seed(cfg.seed, report.index, lane_idx),
                );
                report.final_params = phase.0;
                if let Some(e) = phase.1.trace.final_expectation() {
                    report.final_expectation = e;
                }
                report.phases.push(phase.1);
            }
        }

        let devices_usage = lanes
            .iter()
            .map(|lane| DeviceUsage {
                device: lane.calibration.name().to_owned(),
                p_correct: lane.p_correct,
                executions: lane.evaluator.executions(),
            })
            .collect();
        Ok(QoncordReport {
            restarts: reports,
            devices: devices_usage,
            rejected,
            ground_energy,
        })
    }
}

/// Runs one training phase on a lane until the convergence checker fires or
/// the iteration budget is exhausted. Returns `(final_params, phase_trace)`.
///
/// This is the closed-loop driver over [`PhaseRunner`]; the multi-tenant
/// orchestrator drives the same runner batch-by-batch.
fn run_phase(
    lane: &mut DeviceLane,
    params: Vec<f64>,
    checker_cfg: ConvergenceConfig,
    max_iterations: usize,
    seed: u64,
) -> (Vec<f64>, PhaseTrace) {
    let mut runner = PhaseRunner::new(params, checker_cfg, max_iterations, seed);
    while !runner.is_finished() {
        runner.step(lane.evaluator.as_mut());
    }
    runner.finish(lane.calibration.name().to_owned())
}

/// Baseline: runs every restart end-to-end on one device with the strict
/// checker (the paper's LF-only / HF-only modes).
pub fn run_single_device(
    device: &Calibration,
    factory: &dyn EvaluatorFactory,
    n_restarts: usize,
    max_iterations: usize,
    seed: u64,
) -> QoncordReport {
    let backend = qoncord_device::noise_model::SimulatedBackend::from_calibration(device.clone());
    let evaluator = factory.make(backend, seed);
    let stats = evaluator.circuit_stats();
    let p_correct = qoncord_device::fidelity::p_correct(device, &stats);
    let n_params = evaluator.n_params();
    let ground_energy = evaluator.ground_energy();
    let initials = random_initial_points(n_params, n_restarts, seed);
    let mut lane = DeviceLane {
        calibration: device.clone(),
        evaluator,
        p_correct,
    };
    let mut reports = Vec::with_capacity(n_restarts);
    for (index, initial) in initials.iter().enumerate() {
        let phase = run_phase(
            &mut lane,
            initial.clone(),
            ConvergenceConfig::strict(),
            max_iterations,
            exploration_seed(seed, index),
        );
        let final_expectation = phase.1.trace.final_expectation().unwrap_or(f64::INFINITY);
        reports.push(RestartReport {
            index,
            initial_params: initial.clone(),
            final_params: phase.0,
            phases: vec![phase.1],
            survived: true,
            exploration_expectation: final_expectation,
            final_expectation,
        });
    }
    QoncordReport {
        restarts: reports,
        devices: vec![DeviceUsage {
            device: lane.calibration.name().to_owned(),
            p_correct: lane.p_correct,
            executions: lane.evaluator.executions(),
        }],
        rejected: Vec::new(),
        ground_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::QaoaFactory;
    use qoncord_device::catalog;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn factory() -> QaoaFactory {
        QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        }
    }

    fn small_config() -> QoncordConfig {
        QoncordConfig {
            exploration_max_iterations: 12,
            finetune_max_iterations: 15,
            seed: 11,
            ..QoncordConfig::default()
        }
    }

    #[test]
    fn two_device_run_produces_full_report() {
        let scheduler = QoncordScheduler::new(small_config());
        let devices = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
        let report = scheduler.run(&devices, &factory(), 6).unwrap();
        assert_eq!(report.restarts.len(), 6);
        assert_eq!(report.devices.len(), 2);
        // Ladder order: LF first.
        assert_eq!(report.devices[0].device, "ibmq_toronto");
        assert!(report.devices[0].p_correct <= report.devices[1].p_correct);
        // Everyone explored on the LF device.
        assert!(report.devices[0].executions > 0);
        // At least one survivor fine-tuned on the HF device.
        assert!(report.devices[1].executions > 0);
        let ratio = report.best_approximation_ratio();
        assert!((0.0..=1.0).contains(&ratio));
    }

    #[test]
    fn survivors_have_multiple_phases() {
        let scheduler = QoncordScheduler::new(small_config());
        let devices = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
        let report = scheduler.run(&devices, &factory(), 5).unwrap();
        for r in &report.restarts {
            if r.survived {
                assert!(
                    !r.phases.is_empty(),
                    "survivor must have at least the exploration phase"
                );
                if r.phases.len() > 1 {
                    assert_eq!(r.phases[0].device, "ibmq_toronto");
                    assert_eq!(r.phases.last().unwrap().device, "ibmq_kolkata");
                }
            } else {
                assert_eq!(r.phases.len(), 1, "terminated restarts stop at exploration");
            }
        }
    }

    #[test]
    fn single_device_fallback_uses_strict_checker() {
        let scheduler = QoncordScheduler::new(small_config());
        let devices = [catalog::ibmq_kolkata()];
        let report = scheduler.run(&devices, &factory(), 3).unwrap();
        assert_eq!(report.devices.len(), 1);
        assert!(report.restarts.iter().all(|r| r.survived));
    }

    #[test]
    fn all_devices_filtered_is_an_error() {
        let cfg = QoncordConfig {
            min_fidelity: 0.999, // nothing passes
            ..small_config()
        };
        let scheduler = QoncordScheduler::new(cfg);
        let err = scheduler
            .run(&[catalog::ibmq_toronto()], &factory(), 2)
            .unwrap_err();
        let ScheduleError::NoViableDevice { rejected } = err;
        assert_eq!(rejected.len(), 1);
    }

    #[test]
    fn schedule_error_display_is_human_readable() {
        let cfg = QoncordConfig {
            min_fidelity: 0.999,
            ..small_config()
        };
        let err = QoncordScheduler::new(cfg)
            .run(&[catalog::ibmq_toronto()], &factory(), 1)
            .unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("ibmq_toronto: P_correct"),
            "expected readable reason, got: {text}"
        );
        assert!(
            !text.contains("BelowMinFidelity"),
            "Debug formatting leaked into Display: {text}"
        );
    }

    #[test]
    fn phase_seeds_are_stable() {
        // The orchestrator reproduces the scheduler's runs from these seeds;
        // changing the derivation silently breaks cross-checking tests.
        assert_eq!(exploration_seed(0xC0C0, 0), 0xC0C0);
        assert_eq!(exploration_seed(7, 3), 7 ^ 3u64.wrapping_mul(0x9E37_79B9));
        assert_eq!(finetune_seed(7, 3, 1), 7 ^ (3 << 8) ^ 1);
    }

    #[test]
    fn triage_terminates_some_restarts_with_topk() {
        let cfg = QoncordConfig {
            selection: SelectionPolicy::TopK(2),
            ..small_config()
        };
        let scheduler = QoncordScheduler::new(cfg);
        let devices = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
        let report = scheduler.run(&devices, &factory(), 6).unwrap();
        assert_eq!(report.terminated_restarts(), 4);
        assert_eq!(report.survivor_ratios().len(), 2);
    }

    #[test]
    fn baseline_single_device_runs() {
        let report = run_single_device(&catalog::ibmq_kolkata(), &factory(), 3, 20, 5);
        assert_eq!(report.restarts.len(), 3);
        assert_eq!(report.devices.len(), 1);
        assert!(report.total_executions() > 0);
    }

    #[test]
    fn report_accounting_consistent() {
        let scheduler = QoncordScheduler::new(small_config());
        let devices = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
        let report = scheduler.run(&devices, &factory(), 4).unwrap();
        let per_phase: u64 = report
            .restarts
            .iter()
            .flat_map(|r| r.phases.iter().map(|p| p.executions))
            .sum();
        // Total device executions ≥ phase executions (entropy-gate probes add).
        assert!(report.total_executions() >= per_phase);
    }

    #[test]
    fn deterministic_given_seed() {
        let scheduler = QoncordScheduler::new(small_config());
        let devices = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
        let a = scheduler.run(&devices, &factory(), 3).unwrap();
        let b = scheduler.run(&devices, &factory(), 3).unwrap();
        assert_eq!(a.best_expectation(), b.best_expectation());
        assert_eq!(a.total_executions(), b.total_executions());
    }
}
