//! Wall-clock accounting for scheduler reports: converts per-device
//! execution counts into makespans under a queue-wait model, yielding the
//! paper's time-to-solution comparisons (Fig. 1's 2.14× and the headline
//! 17.4×).

use crate::scheduler::QoncordReport;
use qoncord_circuit::transpile::CircuitStats;
use qoncord_device::calibration::Calibration;
use std::collections::HashMap;

/// Queue-wait model: seconds of waiting added to every circuit execution on
/// a device (an effective per-execution stand-in for queue depth × mean job
/// time).
#[derive(Debug, Clone, Default)]
pub struct QueueModel {
    waits: HashMap<String, f64>,
    default_wait: f64,
}

impl QueueModel {
    /// Creates a model where unknown devices wait `default_wait` seconds per
    /// execution.
    ///
    /// # Panics
    ///
    /// Panics if `default_wait` is negative.
    pub fn new(default_wait: f64) -> Self {
        assert!(default_wait >= 0.0, "wait must be non-negative");
        QueueModel {
            waits: HashMap::new(),
            default_wait,
        }
    }

    /// Sets the per-execution wait of a device.
    ///
    /// # Panics
    ///
    /// Panics if `wait` is negative.
    pub fn with_wait(mut self, device: &str, wait: f64) -> Self {
        assert!(wait >= 0.0, "wait must be non-negative");
        self.waits.insert(device.to_owned(), wait);
        self
    }

    /// The wait applied to one execution on `device`.
    pub fn wait_for(&self, device: &str) -> f64 {
        self.waits.get(device).copied().unwrap_or(self.default_wait)
    }
}

/// Wall-clock breakdown of one report.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEstimate {
    /// Per-device `(name, busy seconds, queue-wait seconds)`.
    pub per_device: Vec<(String, f64, f64)>,
    /// Total busy (circuit execution) seconds.
    pub busy_seconds: f64,
    /// Total queue-wait seconds.
    pub wait_seconds: f64,
}

impl TimelineEstimate {
    /// Total makespan: busy + waiting (phases are serialized per restart
    /// and devices are visited in ladder order, so the sum is the model's
    /// end-to-end time).
    pub fn makespan(&self) -> f64 {
        self.busy_seconds + self.wait_seconds
    }
}

/// Estimates the wall-clock timeline of a report: per device, executions ×
/// (circuit time at `shots` + queue wait).
///
/// `calibrations` must contain every device named in the report; `stats`
/// are the transpiled footprint used for per-circuit duration.
///
/// # Panics
///
/// Panics if a report device is missing from `calibrations`.
pub fn estimate_timeline(
    report: &QoncordReport,
    calibrations: &[Calibration],
    stats: &CircuitStats,
    shots: u64,
    queue: &QueueModel,
) -> TimelineEstimate {
    let by_name: HashMap<&str, &Calibration> = calibrations.iter().map(|c| (c.name(), c)).collect();
    let mut per_device = Vec::with_capacity(report.devices.len());
    let mut busy = 0.0;
    let mut wait = 0.0;
    for usage in &report.devices {
        let cal = by_name
            .get(usage.device.as_str())
            .unwrap_or_else(|| panic!("no calibration for device {}", usage.device));
        let device_busy = usage.executions as f64 * cal.execution_time_s(stats, shots);
        let device_wait = usage.executions as f64 * queue.wait_for(&usage.device);
        busy += device_busy;
        wait += device_wait;
        per_device.push((usage.device.clone(), device_busy, device_wait));
    }
    TimelineEstimate {
        per_device,
        busy_seconds: busy,
        wait_seconds: wait,
    }
}

/// Speedup of `fast` relative to `slow` (makespan ratio).
///
/// # Panics
///
/// Panics if `fast`'s makespan is zero.
pub fn speedup(slow: &TimelineEstimate, fast: &TimelineEstimate) -> f64 {
    let denom = fast.makespan();
    assert!(denom > 0.0, "fast timeline has zero makespan");
    slow.makespan() / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{EvaluatorFactory, QaoaFactory};
    use crate::scheduler::{run_single_device, QoncordConfig, QoncordScheduler};
    use qoncord_device::catalog;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn factory() -> QaoaFactory {
        QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        }
    }

    fn stats() -> CircuitStats {
        let backend = qoncord_device::noise_model::SimulatedBackend::from_calibration(
            catalog::ibmq_kolkata(),
        );
        factory().make(backend, 0).circuit_stats()
    }

    #[test]
    fn queue_model_lookup_and_default() {
        let q = QueueModel::new(1.0).with_wait("fast_device", 0.1);
        assert_eq!(q.wait_for("fast_device"), 0.1);
        assert_eq!(q.wait_for("unknown"), 1.0);
    }

    #[test]
    fn timeline_accounts_all_devices() {
        let cfg = QoncordConfig {
            exploration_max_iterations: 10,
            finetune_max_iterations: 10,
            min_fidelity: 0.0,
            seed: 3,
            ..QoncordConfig::default()
        };
        let cals = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
        let report = QoncordScheduler::new(cfg)
            .run(&cals, &factory(), 4)
            .unwrap();
        let queue = QueueModel::new(0.0)
            .with_wait("ibmq_toronto", 0.3)
            .with_wait("ibmq_kolkata", 3.0);
        let t = estimate_timeline(&report, &cals, &stats(), 1000, &queue);
        assert_eq!(t.per_device.len(), 2);
        assert!(t.busy_seconds > 0.0);
        assert!(t.wait_seconds > 0.0);
        assert!(t.makespan() > t.busy_seconds);
    }

    #[test]
    fn qoncord_beats_hf_only_under_queue_gap() {
        // The Fig. 1 comparison expressed through the timeline model.
        let cals = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
        let queue = QueueModel::new(0.0)
            .with_wait("ibmq_toronto", 0.3)
            .with_wait("ibmq_kolkata", 3.0);
        let s = stats();
        let hf = run_single_device(&catalog::ibmq_kolkata(), &factory(), 3, 20, 3);
        let hf_time = estimate_timeline(&hf, &cals, &s, 1000, &queue);
        let cfg = QoncordConfig {
            exploration_max_iterations: 10,
            finetune_max_iterations: 10,
            min_fidelity: 0.0,
            selection: crate::cluster::SelectionPolicy::TopK(2),
            seed: 3,
            ..QoncordConfig::default()
        };
        let q = QoncordScheduler::new(cfg)
            .run(&cals, &factory(), 3)
            .unwrap();
        let q_time = estimate_timeline(&q, &cals, &s, 1000, &queue);
        assert!(
            speedup(&hf_time, &q_time) > 1.0,
            "Qoncord must be faster: hf {:.1}s vs q {:.1}s",
            hf_time.makespan(),
            q_time.makespan()
        );
    }

    #[test]
    #[should_panic(expected = "no calibration")]
    fn missing_calibration_panics() {
        let report = run_single_device(&catalog::ibmq_kolkata(), &factory(), 1, 5, 3);
        let queue = QueueModel::new(0.0);
        estimate_timeline(&report, &[], &stats(), 100, &queue);
    }
}
