//! Property-based tests of the scheduler's decision components.

use proptest::prelude::*;
use qoncord_core::cluster::{kmeans_1d, select_restarts, SelectionPolicy};
use qoncord_core::convergence::{ConvergenceChecker, ConvergenceConfig, ConvergenceStatus};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selection always returns a non-empty subset of valid indices.
    #[test]
    fn selection_returns_valid_subset(values in proptest::collection::vec(-10.0..0.0f64, 1..40)) {
        for policy in [SelectionPolicy::TopCluster, SelectionPolicy::TopK(3), SelectionPolicy::All] {
            let selected = select_restarts(&values, policy);
            prop_assert!(!selected.is_empty());
            prop_assert!(selected.iter().all(|&i| i < values.len()));
            // No duplicates.
            let mut s = selected.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), selected.len());
        }
    }

    /// The best restart (minimum value) always survives every policy.
    #[test]
    fn best_restart_always_survives(values in proptest::collection::vec(-10.0..0.0f64, 4..40)) {
        let best = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        for policy in [SelectionPolicy::TopCluster, SelectionPolicy::TopK(1), SelectionPolicy::All] {
            let selected = select_restarts(&values, policy);
            prop_assert!(selected.contains(&best), "{policy:?} dropped the best restart");
        }
    }

    /// K-means assignments reference valid centroids and every non-empty
    /// cluster's centroid lies within the data range.
    #[test]
    fn kmeans_invariants(values in proptest::collection::vec(-5.0..5.0f64, 2..50)) {
        let c = kmeans_1d(&values, 2, 50);
        prop_assert_eq!(c.assignments.len(), values.len());
        prop_assert!(c.assignments.iter().all(|&a| a < 2));
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for k in 0..2 {
            if !c.members(k).is_empty() {
                prop_assert!((lo - 1e-9..=hi + 1e-9).contains(&c.centroids[k]));
            }
        }
    }

    /// A monotone-improving expectation never saturates the strict checker
    /// when improvements exceed the tolerance each step.
    #[test]
    fn improving_signal_never_saturates(start in -1.0..0.0f64, n in 20..60usize) {
        let cfg = ConvergenceConfig::strict();
        let step = cfg.expectation_tolerance * 1.5;
        let mut checker = ConvergenceChecker::new(cfg);
        let mut status = ConvergenceStatus::Continue;
        for i in 0..n {
            status = checker.observe(start - step * i as f64, 2.0);
        }
        prop_assert_eq!(status, ConvergenceStatus::Continue);
    }

    /// A constant signal always saturates once past min_iterations.
    #[test]
    fn flat_signal_always_saturates(e in -10.0..0.0f64, s in 0.0..4.0f64) {
        let mut checker = ConvergenceChecker::new(ConvergenceConfig::relaxed());
        let mut fired_at = None;
        for i in 0..40 {
            if checker.observe(e, s) == ConvergenceStatus::Saturated {
                fired_at = Some(i);
                break;
            }
        }
        prop_assert!(fired_at.is_some());
        prop_assert!(fired_at.unwrap() >= 7, "cannot fire before min_iterations");
    }
}
