//! Device calibration data.
//!
//! The Qoncord paper consumes *average* device characteristics (Sec. V-D
//! quotes average two-qubit gate and readout error rates), so calibrations
//! here carry scalar averages plus the coupling map. These are exactly the
//! inputs of the P_correct estimator (Eq. 1) and of the noise-model builder.

use qoncord_circuit::coupling::CouplingMap;
use qoncord_circuit::transpile::CircuitStats;

/// Which physical technology a device uses; governs speed/fidelity trade-offs
/// (Sec. III-B1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Superconducting transmon qubits (IBM, Rigetti): fast, noisier.
    Superconducting,
    /// Trapped ions (IonQ): slow, higher fidelity, all-to-all coupling.
    TrappedIon,
    /// Synthetic device used in sensitivity studies.
    Hypothetical,
}

/// Averaged calibration snapshot of a quantum device.
///
/// # Examples
///
/// ```
/// use qoncord_device::calibration::{Calibration, Technology};
/// use qoncord_circuit::coupling::CouplingMap;
///
/// let cal = Calibration::builder("toy", CouplingMap::linear(3))
///     .technology(Technology::Hypothetical)
///     .error_1q(0.001)
///     .error_2q(0.01)
///     .readout_error(0.02)
///     .build();
/// assert_eq!(cal.n_qubits(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    name: String,
    coupling: CouplingMap,
    technology: Technology,
    /// Average single-qubit gate error rate (probability).
    error_1q: f64,
    /// Average two-qubit gate error rate.
    error_2q: f64,
    /// Average readout assignment error.
    readout_error: f64,
    /// Average relaxation time, microseconds.
    t1_us: f64,
    /// Average dephasing time, microseconds.
    t2_us: f64,
    /// Single-qubit gate duration, nanoseconds.
    gate_time_1q_ns: f64,
    /// Two-qubit gate duration, nanoseconds.
    gate_time_2q_ns: f64,
    /// Readout duration, nanoseconds.
    readout_time_ns: f64,
}

impl Calibration {
    /// Starts building a calibration with required name and coupling map.
    pub fn builder(name: impl Into<String>, coupling: CouplingMap) -> CalibrationBuilder {
        CalibrationBuilder {
            cal: Calibration {
                name: name.into(),
                coupling,
                technology: Technology::Superconducting,
                error_1q: 3e-4,
                error_2q: 1e-2,
                readout_error: 1.5e-2,
                t1_us: 100.0,
                t2_us: 90.0,
                gate_time_1q_ns: 35.0,
                gate_time_2q_ns: 400.0,
                readout_time_ns: 750.0,
            },
        }
    }

    /// Device name (e.g. `"ibmq_kolkata"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Qubit connectivity.
    pub fn coupling(&self) -> &CouplingMap {
        &self.coupling
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.coupling.n_qubits()
    }

    /// Qubit technology.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Average single-qubit gate error rate.
    pub fn error_1q(&self) -> f64 {
        self.error_1q
    }

    /// Average two-qubit gate error rate.
    pub fn error_2q(&self) -> f64 {
        self.error_2q
    }

    /// Average readout assignment error.
    pub fn readout_error(&self) -> f64 {
        self.readout_error
    }

    /// Average T1 (relaxation), microseconds.
    pub fn t1_us(&self) -> f64 {
        self.t1_us
    }

    /// Average T2 (dephasing), microseconds.
    pub fn t2_us(&self) -> f64 {
        self.t2_us
    }

    /// Single-qubit gate duration, nanoseconds.
    pub fn gate_time_1q_ns(&self) -> f64 {
        self.gate_time_1q_ns
    }

    /// Two-qubit gate duration, nanoseconds.
    pub fn gate_time_2q_ns(&self) -> f64 {
        self.gate_time_2q_ns
    }

    /// Readout duration, nanoseconds.
    pub fn readout_time_ns(&self) -> f64 {
        self.readout_time_ns
    }

    /// Serial execution time of one circuit run with `shots` repetitions,
    /// in seconds (gate latencies summed over the critical path approximated
    /// by total gate count, matching the coarse model the paper uses for
    /// throughput accounting).
    pub fn execution_time_s(&self, stats: &CircuitStats, shots: u64) -> f64 {
        let per_shot_ns = stats.n_1q as f64 * self.gate_time_1q_ns
            + stats.n_2q as f64 * self.gate_time_2q_ns
            + self.readout_time_ns;
        per_shot_ns * 1e-9 * shots as f64
    }

    /// Returns a copy with all error rates scaled by `factor` (clamped to
    /// valid probabilities); used for mitigation modelling and drift
    /// injection.
    pub fn with_error_scale(&self, factor: f64) -> Calibration {
        let mut out = self.clone();
        out.error_1q = (self.error_1q * factor).clamp(0.0, 1.0);
        out.error_2q = (self.error_2q * factor).clamp(0.0, 1.0);
        out.readout_error = (self.readout_error * factor).clamp(0.0, 0.5);
        out
    }

    /// Returns a copy with only the readout error scaled.
    pub fn with_readout_scale(&self, factor: f64) -> Calibration {
        let mut out = self.clone();
        out.readout_error = (self.readout_error * factor).clamp(0.0, 0.5);
        out
    }

    /// Returns a copy renamed to `name`.
    pub fn renamed(&self, name: impl Into<String>) -> Calibration {
        let mut out = self.clone();
        out.name = name.into();
        out
    }
}

/// Builder for [`Calibration`] (see [`Calibration::builder`]).
#[derive(Debug, Clone)]
pub struct CalibrationBuilder {
    cal: Calibration,
}

impl CalibrationBuilder {
    /// Sets the qubit technology.
    pub fn technology(mut self, t: Technology) -> Self {
        self.cal.technology = t;
        self
    }

    /// Sets the average single-qubit gate error rate.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn error_1q(mut self, e: f64) -> Self {
        assert!((0.0..=1.0).contains(&e));
        self.cal.error_1q = e;
        self
    }

    /// Sets the average two-qubit gate error rate.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn error_2q(mut self, e: f64) -> Self {
        assert!((0.0..=1.0).contains(&e));
        self.cal.error_2q = e;
        self
    }

    /// Sets the average readout assignment error.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 0.5]`.
    pub fn readout_error(mut self, e: f64) -> Self {
        assert!((0.0..=0.5).contains(&e));
        self.cal.readout_error = e;
        self
    }

    /// Sets T1/T2 in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if either is non-positive or `t2 > 2·t1`.
    pub fn coherence_us(mut self, t1: f64, t2: f64) -> Self {
        assert!(t1 > 0.0 && t2 > 0.0 && t2 <= 2.0 * t1, "unphysical T1/T2");
        self.cal.t1_us = t1;
        self.cal.t2_us = t2;
        self
    }

    /// Sets gate durations in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if any duration is non-positive.
    pub fn gate_times_ns(mut self, t_1q: f64, t_2q: f64, t_readout: f64) -> Self {
        assert!(t_1q > 0.0 && t_2q > 0.0 && t_readout > 0.0);
        self.cal.gate_time_1q_ns = t_1q;
        self.cal.gate_time_2q_ns = t_2q;
        self.cal.readout_time_ns = t_readout;
        self
    }

    /// Finishes building.
    pub fn build(self) -> Calibration {
        self.cal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Calibration {
        Calibration::builder("toy", CouplingMap::linear(4))
            .error_1q(0.001)
            .error_2q(0.02)
            .readout_error(0.03)
            .coherence_us(120.0, 100.0)
            .gate_times_ns(30.0, 300.0, 700.0)
            .build()
    }

    #[test]
    fn builder_round_trips_fields() {
        let c = toy();
        assert_eq!(c.name(), "toy");
        assert_eq!(c.n_qubits(), 4);
        assert_eq!(c.error_2q(), 0.02);
        assert_eq!(c.t1_us(), 120.0);
        assert_eq!(c.gate_time_2q_ns(), 300.0);
    }

    #[test]
    fn execution_time_scales_with_shots() {
        let c = toy();
        let stats = CircuitStats {
            n_1q: 10,
            n_2q: 5,
            depth: 8,
            swaps_inserted: 0,
            n_measured: 4,
        };
        let t1 = c.execution_time_s(&stats, 1);
        let t1000 = c.execution_time_s(&stats, 1000);
        assert!((t1000 / t1 - 1000.0).abs() < 1e-9);
        // 10*30 + 5*300 + 700 = 2500 ns
        assert!((t1 - 2.5e-6).abs() < 1e-12);
    }

    #[test]
    fn error_scaling_clamps() {
        let c = toy().with_error_scale(100.0);
        assert_eq!(c.error_2q(), 1.0);
        assert_eq!(c.readout_error(), 0.5);
    }

    #[test]
    fn readout_scale_leaves_gates() {
        let c = toy().with_readout_scale(0.1);
        assert!((c.readout_error() - 0.003).abs() < 1e-12);
        assert_eq!(c.error_2q(), 0.02);
    }

    #[test]
    #[should_panic(expected = "unphysical")]
    fn bad_coherence_panics() {
        let _ = Calibration::builder("bad", CouplingMap::linear(2)).coherence_us(10.0, 50.0);
    }

    #[test]
    fn renamed_copies() {
        let c = toy().renamed("toy2");
        assert_eq!(c.name(), "toy2");
        assert_eq!(c.error_2q(), toy().error_2q());
    }
}
