//! Catalog of named device calibrations and the cloud-market metadata behind
//! the paper's Tables I and II.
//!
//! The two anchor devices come straight from Sec. V-D of the paper:
//! ibmq_kolkata (high fidelity: 1.091 % two-qubit error, 1.22 % readout
//! error) and ibmq_toronto (low fidelity: 2.083 % two-qubit error, 4.48 %
//! readout error), both on the 27-qubit Falcon coupling map of Fig. 11, plus
//! the 36-qubit IonQ-Forte (0.74 % two-qubit, 0.5 % readout, all-to-all).
//! The Fig. 8 sweep devices (Guadalupe, Hanoi, Mumbai, Nairobi) use
//! representative averages from IBM's published calibration histories,
//! ordered to match the optimization-gain ranking the paper reports.

use crate::calibration::{Calibration, Technology};
use qoncord_circuit::coupling::CouplingMap;

/// ibmq_kolkata — the paper's high-fidelity (HF) 27-qubit device.
pub fn ibmq_kolkata() -> Calibration {
    Calibration::builder("ibmq_kolkata", CouplingMap::falcon_27())
        .technology(Technology::Superconducting)
        .error_1q(3.0e-4)
        .error_2q(0.01091) // paper: 1.091 %
        .readout_error(0.0122) // paper: 1.22 %
        .coherence_us(110.0, 95.0)
        .gate_times_ns(35.0, 400.0, 750.0)
        .build()
}

/// ibmq_toronto — the paper's low-fidelity (LF) 27-qubit device.
pub fn ibmq_toronto() -> Calibration {
    Calibration::builder("ibmq_toronto", CouplingMap::falcon_27())
        .technology(Technology::Superconducting)
        .error_1q(6.0e-4)
        .error_2q(0.02083) // paper: 2.083 %
        .readout_error(0.0448) // paper: 4.48 %
        .coherence_us(100.0, 80.0)
        .gate_times_ns(35.0, 450.0, 750.0)
        .build()
}

/// IonQ-Forte — the paper's 36-qubit all-to-all trapped-ion device
/// (0.74 % two-qubit error, 0.5 % readout error; ~970 µs per two-qubit gate
/// per Table II).
pub fn ionq_forte() -> Calibration {
    Calibration::builder("ionq_forte", CouplingMap::all_to_all(36))
        .technology(Technology::TrappedIon)
        .error_1q(2.0e-4)
        .error_2q(0.0074)
        .readout_error(0.005)
        // Trapped-ion coherence is effectively seconds; expressed in µs.
        .coherence_us(10_000_000.0, 1_000_000.0)
        .gate_times_ns(135_000.0, 970_000.0, 300_000.0)
        .build()
}

/// ibm_hanoi — best average fidelity of the Fig. 8 sweep.
pub fn ibm_hanoi() -> Calibration {
    Calibration::builder("ibm_hanoi", CouplingMap::falcon_27())
        .technology(Technology::Superconducting)
        .error_1q(2.5e-4)
        .error_2q(0.0095)
        .readout_error(0.010)
        .coherence_us(125.0, 105.0)
        .gate_times_ns(35.0, 380.0, 750.0)
        .build()
}

/// ibmq_mumbai — mid-tier 27-qubit device of the Fig. 8 sweep.
pub fn ibmq_mumbai() -> Calibration {
    Calibration::builder("ibmq_mumbai", CouplingMap::falcon_27())
        .technology(Technology::Superconducting)
        .error_1q(4.0e-4)
        .error_2q(0.0145)
        .readout_error(0.024)
        .coherence_us(105.0, 90.0)
        .gate_times_ns(35.0, 420.0, 750.0)
        .build()
}

/// ibmq_guadalupe — 16-qubit device of the Fig. 8 sweep.
pub fn ibmq_guadalupe() -> Calibration {
    Calibration::builder("ibmq_guadalupe", CouplingMap::guadalupe_16())
        .technology(Technology::Superconducting)
        .error_1q(3.5e-4)
        .error_2q(0.0130)
        .readout_error(0.022)
        .coherence_us(95.0, 85.0)
        .gate_times_ns(35.0, 410.0, 750.0)
        .build()
}

/// ibm_nairobi — 7-qubit device of the Fig. 8 sweep.
pub fn ibm_nairobi() -> Calibration {
    Calibration::builder("ibm_nairobi", CouplingMap::nairobi_7())
        .technology(Technology::Superconducting)
        .error_1q(3.0e-4)
        .error_2q(0.0115)
        .readout_error(0.018)
        .coherence_us(115.0, 100.0)
        .gate_times_ns(35.0, 400.0, 750.0)
        .build()
}

/// The six devices of the paper's Fig. 8 layer sweep, in the figure's order.
pub fn fig8_devices() -> Vec<Calibration> {
    vec![
        ibmq_guadalupe(),
        ibm_hanoi(),
        ibmq_kolkata(),
        ibmq_mumbai(),
        ibm_nairobi(),
        ibmq_toronto(),
    ]
}

/// A hypothetical all-to-all device with given two-qubit depolarizing and
/// readout error rates — the paper's 14-qubit sensitivity models
/// (Sec. VI-D uses 0.1 %, 0.5 %, and 1 %).
///
/// # Panics
///
/// Panics if rates are outside `[0, 1]` (via the builder's validation).
pub fn hypothetical_depolarizing(
    name: &str,
    n_qubits: usize,
    error_2q: f64,
    readout_error: f64,
) -> Calibration {
    Calibration::builder(name.to_owned(), CouplingMap::all_to_all(n_qubits))
        .technology(Technology::Hypothetical)
        .error_1q(error_2q / 10.0)
        .error_2q(error_2q)
        .readout_error(readout_error)
        .coherence_us(1e9, 1e9) // decoherence disabled: pure depolarizing models
        .gate_times_ns(35.0, 400.0, 750.0)
        .build()
}

/// Market-facing metadata used by the paper's Tables I and II.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketEntry {
    /// Cloud provider name.
    pub provider: &'static str,
    /// Device name.
    pub device: &'static str,
    /// Average two-qubit gate fidelity in percent (Table I).
    pub gate_fidelity_pct: f64,
    /// Algorithmic qubits (#AQ) where published (Table I).
    pub aq: Option<u32>,
    /// Average queue wait time in hours (Table I).
    pub wait_time_hours: f64,
    /// Two-qubit gate execution time in microseconds (Table II).
    pub time_per_gate_us: f64,
    /// Per-task access price in USD (Table II).
    pub price_per_task_usd: f64,
    /// Per-shot price in USD (Table II).
    pub price_per_shot_usd: f64,
}

/// The rows of Tables I and II.
pub fn market_entries() -> Vec<MarketEntry> {
    vec![
        MarketEntry {
            provider: "Rigetti",
            device: "Aspen-M-3",
            gate_fidelity_pct: 94.6,
            aq: None,
            wait_time_hours: 4.0,
            time_per_gate_us: 0.169,
            price_per_task_usd: 0.3,
            price_per_shot_usd: 0.00035,
        },
        MarketEntry {
            provider: "IonQ",
            device: "Harmony",
            gate_fidelity_pct: 97.1,
            aq: Some(25),
            wait_time_hours: 1.9 * 24.0,
            time_per_gate_us: 200.0,
            price_per_task_usd: 0.3,
            price_per_shot_usd: 0.01,
        },
        MarketEntry {
            provider: "IonQ",
            device: "Aria",
            gate_fidelity_pct: 98.9,
            aq: Some(25),
            wait_time_hours: 10.7 * 24.0,
            time_per_gate_us: 600.0,
            price_per_task_usd: 0.3,
            price_per_shot_usd: 0.03,
        },
        MarketEntry {
            provider: "IonQ",
            device: "Forte",
            gate_fidelity_pct: 99.4,
            aq: Some(29),
            wait_time_hours: 7.0 * 24.0,
            time_per_gate_us: 970.0,
            price_per_task_usd: 0.3,
            price_per_shot_usd: 0.03,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_devices_match_paper_numbers() {
        let k = ibmq_kolkata();
        assert!((k.error_2q() - 0.01091).abs() < 1e-9);
        assert!((k.readout_error() - 0.0122).abs() < 1e-9);
        let t = ibmq_toronto();
        assert!((t.error_2q() - 0.02083).abs() < 1e-9);
        assert!((t.readout_error() - 0.0448).abs() < 1e-9);
        let f = ionq_forte();
        assert!((f.error_2q() - 0.0074).abs() < 1e-9);
        assert_eq!(f.n_qubits(), 36);
    }

    #[test]
    fn kolkata_is_higher_fidelity_than_toronto() {
        assert!(ibmq_kolkata().error_2q() < ibmq_toronto().error_2q());
        assert!(ibmq_kolkata().readout_error() < ibmq_toronto().readout_error());
    }

    #[test]
    fn falcon_devices_share_coupling() {
        assert_eq!(ibmq_kolkata().coupling(), ibmq_toronto().coupling());
        assert_eq!(ibmq_kolkata().n_qubits(), 27);
    }

    #[test]
    fn fig8_sweep_has_six_devices() {
        let devs = fig8_devices();
        assert_eq!(devs.len(), 6);
        // Hanoi must rank best, Toronto worst, matching the paper's heatmap.
        let best = devs
            .iter()
            .min_by(|a, b| a.error_2q().partial_cmp(&b.error_2q()).unwrap())
            .unwrap();
        let worst = devs
            .iter()
            .max_by(|a, b| a.error_2q().partial_cmp(&b.error_2q()).unwrap())
            .unwrap();
        assert_eq!(best.name(), "ibm_hanoi");
        assert_eq!(worst.name(), "ibmq_toronto");
    }

    #[test]
    fn hypothetical_models_are_all_to_all() {
        let h = hypothetical_depolarizing("hf", 14, 0.001, 0.001);
        assert_eq!(h.n_qubits(), 14);
        assert_eq!(h.coupling().edges().len(), 14 * 13 / 2);
        assert_eq!(h.technology(), Technology::Hypothetical);
    }

    #[test]
    fn table1_wait_time_ratios_match_paper() {
        let entries = market_entries();
        let rigetti = &entries[0];
        let harmony = &entries[1];
        let aria = &entries[2];
        let forte = &entries[3];
        // Paper: noisier Rigetti waits are 10.9×–61.3× lower than IonQ's.
        let lo = harmony.wait_time_hours / rigetti.wait_time_hours;
        let hi = aria.wait_time_hours / rigetti.wait_time_hours;
        assert!((lo - 11.4).abs() < 1.0, "low ratio {lo}");
        assert!((hi - 64.2).abs() < 4.0, "high ratio {hi}");
        // Paper: Aria/Forte wait 3.7×–5.6× longer than Harmony.
        assert!((forte.wait_time_hours / harmony.wait_time_hours - 3.7).abs() < 0.1);
        assert!((aria.wait_time_hours / harmony.wait_time_hours - 5.6).abs() < 0.1);
    }

    #[test]
    fn table2_price_ratios_match_paper() {
        let entries = market_entries();
        let rigetti = &entries[0];
        let harmony = &entries[1];
        let aria = &entries[2];
        // Paper: Rigetti per-shot 28.6×–85.7× cheaper than IonQ.
        let lo = harmony.price_per_shot_usd / rigetti.price_per_shot_usd;
        let hi = aria.price_per_shot_usd / rigetti.price_per_shot_usd;
        assert!((lo - 28.6).abs() < 0.2, "low ratio {lo}");
        assert!((hi - 85.7).abs() < 0.5, "high ratio {hi}");
    }
}
