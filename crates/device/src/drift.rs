//! Calibration-drift detection (Sec. IV-I of the paper).
//!
//! Device calibrations go stale between (expensive, infrequent) full
//! calibration runs. The paper proposes that providers keep a sample of
//! historical optimization outcomes and compare fresh outcomes against that
//! baseline, flagging drift without extra executions. [`CalibrationTracker`]
//! implements that scheme with a Welch-style two-sample z-test on the means.

/// Tracks benchmark outcomes against a frozen baseline and reports drift.
///
/// # Examples
///
/// ```
/// use qoncord_device::drift::CalibrationTracker;
///
/// let baseline = vec![0.90, 0.91, 0.89, 0.90, 0.92, 0.90, 0.91, 0.89];
/// let mut tracker = CalibrationTracker::new("ibmq_kolkata", &baseline, 3.0);
/// for _ in 0..8 {
///     tracker.record(0.90);
/// }
/// assert!(!tracker.has_drifted());
/// for _ in 0..8 {
///     tracker.record(0.70); // device got much worse
/// }
/// assert!(tracker.has_drifted());
/// ```
#[derive(Debug, Clone)]
pub struct CalibrationTracker {
    device: String,
    baseline_mean: f64,
    baseline_var: f64,
    baseline_n: usize,
    recent: Vec<f64>,
    window: usize,
    z_threshold: f64,
}

impl CalibrationTracker {
    /// Default number of recent samples compared against the baseline.
    pub const DEFAULT_WINDOW: usize = 16;

    /// Creates a tracker from baseline outcome samples.
    ///
    /// `z_threshold` is the |z|-score above which drift is reported (3.0 is a
    /// conventional choice).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two baseline samples are supplied or the
    /// threshold is not positive.
    pub fn new(device: impl Into<String>, baseline: &[f64], z_threshold: f64) -> Self {
        assert!(baseline.len() >= 2, "need at least two baseline samples");
        assert!(z_threshold > 0.0, "threshold must be positive");
        let n = baseline.len() as f64;
        let mean = baseline.iter().sum::<f64>() / n;
        let var = baseline.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        CalibrationTracker {
            device: device.into(),
            baseline_mean: mean,
            baseline_var: var,
            baseline_n: baseline.len(),
            recent: Vec::new(),
            window: Self::DEFAULT_WINDOW,
            z_threshold,
        }
    }

    /// Overrides the comparison window size.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two samples");
        self.window = window;
        self
    }

    /// Device this tracker monitors.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Baseline mean outcome.
    pub fn baseline_mean(&self) -> f64 {
        self.baseline_mean
    }

    /// Records a fresh benchmark outcome (keeps only the trailing window).
    pub fn record(&mut self, outcome: f64) {
        self.recent.push(outcome);
        if self.recent.len() > self.window {
            let excess = self.recent.len() - self.window;
            self.recent.drain(..excess);
        }
    }

    /// Number of recent samples currently held.
    pub fn recent_len(&self) -> usize {
        self.recent.len()
    }

    /// The current drift z-score (`None` until at least two recent samples
    /// exist).
    pub fn z_score(&self) -> Option<f64> {
        if self.recent.len() < 2 {
            return None;
        }
        let n = self.recent.len() as f64;
        let mean = self.recent.iter().sum::<f64>() / n;
        let var = self.recent.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let se = (self.baseline_var / self.baseline_n as f64 + var / n).sqrt();
        if se == 0.0 {
            // Both samples are constant: drift iff means differ at all.
            return Some(if (mean - self.baseline_mean).abs() > f64::EPSILON {
                f64::INFINITY
            } else {
                0.0
            });
        }
        Some((mean - self.baseline_mean) / se)
    }

    /// Returns `true` once the recent mean deviates beyond the threshold.
    pub fn has_drifted(&self) -> bool {
        self.z_score()
            .map(|z| z.abs() >= self.z_threshold)
            .unwrap_or(false)
    }

    /// Clears recent samples (e.g. after a recalibration) and adopts the
    /// recent window as the new baseline when `adopt_recent` is set.
    pub fn reset(&mut self, adopt_recent: bool) {
        if adopt_recent && self.recent.len() >= 2 {
            let n = self.recent.len() as f64;
            let mean = self.recent.iter().sum::<f64>() / n;
            let var = self.recent.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            self.baseline_mean = mean;
            self.baseline_var = var;
            self.baseline_n = self.recent.len();
        }
        self.recent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Vec<f64> {
        vec![0.80, 0.82, 0.79, 0.81, 0.80, 0.83, 0.78, 0.81]
    }

    #[test]
    fn stable_outcomes_do_not_drift() {
        let mut t = CalibrationTracker::new("dev", &baseline(), 3.0);
        for x in [0.81, 0.79, 0.80, 0.82, 0.80, 0.81] {
            t.record(x);
        }
        assert!(!t.has_drifted());
    }

    #[test]
    fn large_shift_drifts() {
        let mut t = CalibrationTracker::new("dev", &baseline(), 3.0);
        for _ in 0..10 {
            t.record(0.55);
        }
        assert!(t.has_drifted());
        assert!(
            t.z_score().unwrap() < 0.0,
            "degradation is a negative shift"
        );
    }

    #[test]
    fn improvement_also_flags() {
        let mut t = CalibrationTracker::new("dev", &baseline(), 3.0);
        for _ in 0..10 {
            t.record(0.99);
        }
        assert!(t.has_drifted());
        assert!(t.z_score().unwrap() > 0.0);
    }

    #[test]
    fn needs_two_samples() {
        let mut t = CalibrationTracker::new("dev", &baseline(), 3.0);
        assert_eq!(t.z_score(), None);
        t.record(0.2);
        assert!(!t.has_drifted(), "one sample is not evidence");
    }

    #[test]
    fn window_bounds_memory() {
        let mut t = CalibrationTracker::new("dev", &baseline(), 3.0).with_window(4);
        for i in 0..20 {
            t.record(i as f64);
        }
        assert_eq!(t.recent_len(), 4);
    }

    #[test]
    fn reset_adopts_new_baseline() {
        let mut t = CalibrationTracker::new("dev", &baseline(), 3.0);
        for _ in 0..8 {
            t.record(0.60);
        }
        assert!(t.has_drifted());
        t.reset(true);
        assert!((t.baseline_mean() - 0.60).abs() < 1e-12);
        for _ in 0..8 {
            t.record(0.60);
        }
        assert!(!t.has_drifted(), "new baseline absorbs the shift");
    }

    #[test]
    #[should_panic(expected = "two baseline samples")]
    fn tiny_baseline_panics() {
        let _ = CalibrationTracker::new("dev", &[0.5], 3.0);
    }
}
