//! The P_correct execution-fidelity estimator (Eq. 1 of the paper).
//!
//! ```text
//! P_correct = exp(−CD · (µt_G1 + µt_G2)/2 / T_eff)
//!             · (1 − γ)^G1 · (1 − β)^G2 · (1 − ω)^M
//! ```
//!
//! where `CD` is circuit depth, `µt_G1/µt_G2` the average single-/two-qubit
//! gate latencies, `γ/β/ω` the single-qubit, two-qubit and measurement error
//! rates, and `G1/G2/M` the corresponding operation counts. The paper writes
//! the decoherence denominator as `T1 T2`; for dimensional consistency we use
//! the geometric mean `T_eff = √(T1·T2)` (a common reading of the EQC
//! formula the paper cites), which preserves the estimator's ordering across
//! devices — the only property Qoncord consumes.

use crate::calibration::Calibration;
use qoncord_circuit::transpile::CircuitStats;

/// Qoncord's default minimum acceptable execution fidelity (Sec. IV-E):
/// device/task pairs estimated below this are excluded.
pub const MIN_FIDELITY_THRESHOLD: f64 = 0.1;

/// Estimates P_correct for a transpiled circuit on a device.
///
/// # Examples
///
/// ```
/// use qoncord_device::catalog;
/// use qoncord_device::fidelity::p_correct;
/// use qoncord_circuit::transpile::CircuitStats;
///
/// let stats = CircuitStats { n_1q: 40, n_2q: 15, depth: 30, swaps_inserted: 0, n_measured: 7 };
/// let hf = p_correct(&catalog::ibmq_kolkata(), &stats);
/// let lf = p_correct(&catalog::ibmq_toronto(), &stats);
/// assert!(hf > lf, "higher-fidelity device must score higher");
/// ```
pub fn p_correct(cal: &Calibration, stats: &CircuitStats) -> f64 {
    let mean_gate_ns = 0.5 * (cal.gate_time_1q_ns() + cal.gate_time_2q_ns());
    let t_eff_ns = (cal.t1_us() * cal.t2_us()).sqrt() * 1e3;
    let decoherence = (-(stats.depth as f64) * mean_gate_ns / t_eff_ns).exp();
    let gates_1q = (1.0 - cal.error_1q()).powi(stats.n_1q as i32);
    let gates_2q = (1.0 - cal.error_2q()).powi(stats.n_2q as i32);
    let readout = (1.0 - cal.readout_error()).powi(stats.n_measured as i32);
    decoherence * gates_1q * gates_2q * readout
}

/// Returns `true` if the device clears Qoncord's minimum-fidelity filter for
/// this circuit.
pub fn passes_min_fidelity(cal: &Calibration, stats: &CircuitStats) -> bool {
    p_correct(cal, stats) >= MIN_FIDELITY_THRESHOLD
}

/// Ranks devices by estimated execution fidelity, ascending (Qoncord's
/// exploration→fine-tune order), dropping devices below
/// [`MIN_FIDELITY_THRESHOLD`] or too small for the circuit.
///
/// Returns indices into `devices` paired with their estimates.
pub fn rank_devices(devices: &[Calibration], stats: &CircuitStats) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> = devices
        .iter()
        .enumerate()
        .filter(|(_, d)| d.n_qubits() >= stats.n_measured)
        .map(|(i, d)| (i, p_correct(d, stats)))
        .filter(|&(_, f)| f >= MIN_FIDELITY_THRESHOLD)
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("fidelities are finite"));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn qaoa_stats(layers: usize) -> CircuitStats {
        // Representative 7-qubit Erdős–Rényi QAOA footprint after Falcon
        // transpilation: ~10 edges → ~21 CX plus routing SWAPs per layer.
        CircuitStats {
            n_1q: 60 * layers,
            n_2q: 45 * layers,
            depth: 50 * layers,
            swaps_inserted: 8 * layers,
            n_measured: 7,
        }
    }

    #[test]
    fn fidelity_in_unit_interval() {
        for layers in 1..=3 {
            for cal in catalog::fig8_devices() {
                let f = p_correct(&cal, &qaoa_stats(layers));
                assert!((0.0..=1.0).contains(&f), "{f} out of range");
            }
        }
    }

    #[test]
    fn fidelity_decreases_with_layers() {
        let cal = catalog::ibmq_kolkata();
        let f1 = p_correct(&cal, &qaoa_stats(1));
        let f2 = p_correct(&cal, &qaoa_stats(2));
        let f3 = p_correct(&cal, &qaoa_stats(3));
        assert!(f1 > f2 && f2 > f3, "{f1} {f2} {f3}");
    }

    #[test]
    fn kolkata_beats_toronto() {
        let s = qaoa_stats(1);
        assert!(p_correct(&catalog::ibmq_kolkata(), &s) > p_correct(&catalog::ibmq_toronto(), &s));
    }

    #[test]
    fn toronto_fails_threshold_at_three_layers() {
        // Mirrors the paper's Fig. 8: Toronto's estimate collapses below 0.1
        // by layer 3 while better devices stay above it.
        let s = qaoa_stats(3);
        assert!(!passes_min_fidelity(&catalog::ibmq_toronto(), &s));
        assert!(passes_min_fidelity(&catalog::ibm_hanoi(), &s));
    }

    #[test]
    fn rank_orders_ascending_and_filters() {
        let devices = vec![
            catalog::ibmq_toronto(),
            catalog::ibmq_kolkata(),
            catalog::ibm_hanoi(),
        ];
        let ranked = rank_devices(&devices, &qaoa_stats(1));
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // The best estimate must be Hanoi's.
        assert_eq!(ranked.last().unwrap().0, 2);
    }

    #[test]
    fn rank_skips_too_small_devices() {
        let devices = vec![catalog::ibm_nairobi(), catalog::ibmq_kolkata()];
        let mut stats = qaoa_stats(1);
        stats.n_measured = 9; // 9-qubit task cannot fit Nairobi's 7 qubits
        let ranked = rank_devices(&devices, &stats);
        assert!(ranked.iter().all(|&(i, _)| i == 1));
    }

    #[test]
    fn empty_circuit_has_perfect_fidelity() {
        let stats = CircuitStats::default();
        let f = p_correct(&catalog::ibmq_kolkata(), &stats);
        assert!((f - 1.0).abs() < 1e-12);
    }
}
