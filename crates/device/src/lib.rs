//! # qoncord-device
//!
//! NISQ device models for the Qoncord reproduction: averaged calibration
//! snapshots, a catalog of the paper's named backends (ibmq_toronto,
//! ibmq_kolkata, IonQ-Forte, and the Fig. 8 sweep devices), the P_correct
//! execution-fidelity estimator (Eq. 1), noise-model construction with
//! density-matrix and trajectory simulation backends, error-mitigation
//! modelling (Fig. 3), and calibration-drift tracking (Sec. IV-I).
//!
//! ## Example
//!
//! ```
//! use qoncord_device::{catalog, fidelity};
//! use qoncord_circuit::transpile::CircuitStats;
//!
//! // Rank the paper's two anchor devices for a 7-qubit QAOA footprint.
//! let devices = vec![catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
//! let stats = CircuitStats { n_1q: 40, n_2q: 16, depth: 28, swaps_inserted: 2, n_measured: 7 };
//! let ranked = fidelity::rank_devices(&devices, &stats);
//! // Ascending fidelity: exploration starts on Toronto, fine-tuning on Kolkata.
//! assert_eq!(ranked.first().unwrap().0, 0);
//! assert_eq!(ranked.last().unwrap().0, 1);
//! ```

#![warn(missing_docs)]

pub mod calibration;
pub mod catalog;
pub mod drift;
pub mod fidelity;
pub mod mitigation;
pub mod noise_model;

pub use calibration::{Calibration, CalibrationBuilder, Technology};
pub use drift::CalibrationTracker;
pub use fidelity::{p_correct, rank_devices, MIN_FIDELITY_THRESHOLD};
pub use mitigation::{Mitigation, MitigationStack};
pub use noise_model::{BackendKind, NoiseModel, SimulatedBackend};
