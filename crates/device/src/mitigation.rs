//! Error-mitigation modes for the paper's Fig. 3 trade-off study.
//!
//! Fig. 3 stacks mitigation techniques cumulatively — no mitigation, +DD,
//! +TREX, +Twirling, +ZNE — and shows expectation values approaching the
//! ideal while execution latency grows (ZNE alone costs ~3× latency for a
//! 57–70 % error reduction).
//!
//! **Substitution note (see DESIGN.md):** the paper measures these modes on
//! a 50-qubit ansatz on real hardware. We model each technique by its
//! *effect*: a scale on gate noise, a scale on readout noise, and a latency
//! multiplier, calibrated to the effect sizes the paper reports. The
//! simulated trade-off *shape* (fidelity ↑ with latency ↑) is what Fig. 3
//! demonstrates and what downstream scheduling consumes.

use crate::noise_model::NoiseModel;

/// A single error-mitigation technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mitigation {
    /// Dynamical decoupling: suppresses idle-time decoherence.
    DynamicalDecoupling,
    /// Twirled readout error extinction: removes readout bias at the cost of
    /// calibration circuits.
    Trex,
    /// Gate (Pauli) twirling: converts coherent errors into stochastic ones.
    Twirling,
    /// Zero-noise extrapolation: amplify-and-extrapolate; large latency cost.
    ZeroNoiseExtrapolation,
}

impl Mitigation {
    /// Multiplier on gate (depolarizing) noise.
    pub fn gate_error_scale(self) -> f64 {
        match self {
            Mitigation::DynamicalDecoupling => 0.85,
            Mitigation::Trex => 1.0,
            Mitigation::Twirling => 0.90,
            // The paper reports a 57–70 % error reduction for ZNE; model the midpoint.
            Mitigation::ZeroNoiseExtrapolation => 0.35,
        }
    }

    /// Multiplier on readout noise.
    pub fn readout_error_scale(self) -> f64 {
        match self {
            Mitigation::DynamicalDecoupling => 1.0,
            Mitigation::Trex => 0.12,
            Mitigation::Twirling => 1.0,
            Mitigation::ZeroNoiseExtrapolation => 1.0,
        }
    }

    /// Multiplier on execution latency.
    pub fn latency_multiplier(self) -> f64 {
        match self {
            Mitigation::DynamicalDecoupling => 1.05,
            Mitigation::Trex => 1.30,
            Mitigation::Twirling => 1.30,
            Mitigation::ZeroNoiseExtrapolation => 3.0,
        }
    }

    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::DynamicalDecoupling => "DD",
            Mitigation::Trex => "TREX",
            Mitigation::Twirling => "Twirling",
            Mitigation::ZeroNoiseExtrapolation => "ZNE",
        }
    }
}

/// A cumulative stack of mitigation techniques, applied in order.
///
/// # Examples
///
/// ```
/// use qoncord_device::mitigation::{Mitigation, MitigationStack};
///
/// let stack = MitigationStack::fig3_level(4); // + DD + TREX + Twirling + ZNE
/// assert!(stack.latency_multiplier() > 3.0);
/// assert!(stack.gate_error_scale() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MitigationStack {
    techniques: Vec<Mitigation>,
}

impl MitigationStack {
    /// An empty stack (no mitigation).
    pub fn none() -> Self {
        MitigationStack::default()
    }

    /// Builds a stack from techniques applied in order.
    pub fn new(techniques: Vec<Mitigation>) -> Self {
        MitigationStack { techniques }
    }

    /// The cumulative stacks of Fig. 3, by level: 0 = no mitigation,
    /// 1 = +DD, 2 = +TREX, 3 = +Twirling, 4 = +ZNE.
    ///
    /// # Panics
    ///
    /// Panics if `level > 4`.
    pub fn fig3_level(level: usize) -> Self {
        assert!(level <= 4, "Fig. 3 has five levels (0..=4)");
        let order = [
            Mitigation::DynamicalDecoupling,
            Mitigation::Trex,
            Mitigation::Twirling,
            Mitigation::ZeroNoiseExtrapolation,
        ];
        MitigationStack {
            techniques: order[..level].to_vec(),
        }
    }

    /// The techniques in application order.
    pub fn techniques(&self) -> &[Mitigation] {
        &self.techniques
    }

    /// Combined gate-error scale (product over the stack).
    pub fn gate_error_scale(&self) -> f64 {
        self.techniques
            .iter()
            .map(|t| t.gate_error_scale())
            .product()
    }

    /// Combined readout-error scale.
    pub fn readout_error_scale(&self) -> f64 {
        self.techniques
            .iter()
            .map(|t| t.readout_error_scale())
            .product()
    }

    /// Combined latency multiplier.
    pub fn latency_multiplier(&self) -> f64 {
        self.techniques
            .iter()
            .map(|t| t.latency_multiplier())
            .product()
    }

    /// Applies the stack to a noise model.
    pub fn apply(&self, noise: &NoiseModel) -> NoiseModel {
        noise.scaled(self.gate_error_scale(), self.readout_error_scale())
    }

    /// Human-readable label, e.g. `"+DD+TREX"`.
    pub fn label(&self) -> String {
        if self.techniques.is_empty() {
            "No Mitigation".to_owned()
        } else {
            self.techniques
                .iter()
                .map(|t| format!("+{}", t.label()))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn levels_monotonically_improve_fidelity_and_cost_latency() {
        let base = NoiseModel::from_calibration(&catalog::ibmq_toronto());
        let mut last_gate = f64::INFINITY;
        let mut last_latency = 0.0;
        for level in 0..=4 {
            let stack = MitigationStack::fig3_level(level);
            let nm = stack.apply(&base);
            assert!(
                nm.dep_2q <= last_gate + 1e-15,
                "gate noise must not increase with stacking"
            );
            assert!(stack.latency_multiplier() >= last_latency);
            last_gate = nm.dep_2q;
            last_latency = stack.latency_multiplier();
        }
    }

    #[test]
    fn zne_reduces_error_57_to_70_percent() {
        let scale = Mitigation::ZeroNoiseExtrapolation.gate_error_scale();
        assert!(
            (0.30..=0.43).contains(&scale),
            "1-scale in paper's 57-70 % band"
        );
        assert!((Mitigation::ZeroNoiseExtrapolation.latency_multiplier() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn trex_targets_readout_only() {
        let t = Mitigation::Trex;
        assert_eq!(t.gate_error_scale(), 1.0);
        assert!(t.readout_error_scale() < 0.5);
    }

    #[test]
    fn labels() {
        assert_eq!(MitigationStack::none().label(), "No Mitigation");
        assert_eq!(MitigationStack::fig3_level(2).label(), "+DD+TREX");
    }

    #[test]
    #[should_panic(expected = "five levels")]
    fn level_out_of_range_panics() {
        let _ = MitigationStack::fig3_level(5);
    }

    #[test]
    fn full_stack_latency_exceeds_three_x() {
        assert!(MitigationStack::fig3_level(4).latency_multiplier() > 3.0);
    }
}
