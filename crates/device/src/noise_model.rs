//! Noise-model construction and the simulated backends that execute
//! transpiled circuits under device noise — this crate's equivalent of
//! Qiskit's fake-backend + Aer pipeline.

use crate::calibration::Calibration;
use qoncord_circuit::transpile::TranspiledCircuit;
use qoncord_sim::density::DensityMatrix;
use qoncord_sim::dist::ProbDist;
use qoncord_sim::fuse::FusedOp;
use qoncord_sim::noise::{NoiseChannel, ReadoutError};
use qoncord_sim::statevector::StateVector;
use qoncord_sim::trajectory::{apply_stochastic, TrajectoryAccumulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Gate-level noise parameters derived from a calibration: depolarizing
/// probabilities per gate plus readout confusion.
///
/// The depolarizing probability is recovered from the average gate
/// infidelity `ε` via the standard dimension factors: `p = 2ε` for one qubit
/// and `p = (4/3)ε` for two (a depolarizing channel with probability `p` on a
/// `d`-dimensional system has average infidelity `p·(d−1)/d`... for d = 2 and
/// d = 4 respectively).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability applied after every single-qubit gate.
    pub dep_1q: f64,
    /// Depolarizing probability applied after every two-qubit gate.
    pub dep_2q: f64,
    /// Per-qubit readout confusion applied to the final distribution.
    pub readout: ReadoutError,
}

impl NoiseModel {
    /// Builds a noise model from a device calibration.
    pub fn from_calibration(cal: &Calibration) -> Self {
        NoiseModel {
            dep_1q: (2.0 * cal.error_1q()).clamp(0.0, 1.0),
            dep_2q: (4.0 / 3.0 * cal.error_2q()).clamp(0.0, 1.0),
            readout: ReadoutError::symmetric(cal.readout_error().min(0.5)),
        }
    }

    /// A noiseless model.
    pub fn ideal() -> Self {
        NoiseModel {
            dep_1q: 0.0,
            dep_2q: 0.0,
            readout: ReadoutError::default(),
        }
    }

    /// Returns `true` if every noise parameter is zero.
    pub fn is_ideal(&self) -> bool {
        self.dep_1q == 0.0 && self.dep_2q == 0.0 && self.readout.mean_error() == 0.0
    }

    /// Returns a copy with gate noise scaled by `gate_factor` and readout
    /// noise by `readout_factor` (clamped to valid probabilities); the basis
    /// of error-mitigation modelling and ZNE noise amplification.
    pub fn scaled(&self, gate_factor: f64, readout_factor: f64) -> Self {
        NoiseModel {
            dep_1q: (self.dep_1q * gate_factor).clamp(0.0, 1.0),
            dep_2q: (self.dep_2q * gate_factor).clamp(0.0, 1.0),
            readout: self.readout.scaled(readout_factor),
        }
    }
}

/// How a backend simulates noisy execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Noise-free statevector run.
    Ideal,
    /// Exact density-matrix evolution (practical to ~10 qubits).
    DensityMatrix,
    /// Monte-Carlo trajectory averaging with the given trajectory count.
    Trajectory {
        /// Number of stochastic trajectories to average.
        n_trajectories: u32,
    },
    /// Density matrix when the circuit is small, otherwise trajectories.
    Auto,
}

/// Register size above which [`BackendKind::Auto`] switches from exact
/// density matrices to trajectory sampling.
pub const AUTO_DENSITY_LIMIT: usize = 8;

/// Default trajectory count for [`BackendKind::Auto`].
pub const AUTO_TRAJECTORIES: u32 = 48;

/// A classically simulated quantum device: a calibration plus a noise model
/// and simulation strategy.
///
/// # Examples
///
/// ```
/// use qoncord_device::catalog;
/// use qoncord_device::noise_model::SimulatedBackend;
/// use qoncord_circuit::{Circuit, transpile::transpile};
///
/// let backend = SimulatedBackend::from_calibration(catalog::ibmq_toronto());
/// let mut qc = Circuit::new(2, 0);
/// qc.h(0).cx(0, 1);
/// let t = transpile(&qc, backend.calibration().coupling());
/// let dist = backend.run(&t, &[], 7);
/// // Noise leaks probability out of the Bell-state support.
/// assert!(dist.probabilities()[1] > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedBackend {
    calibration: Calibration,
    noise: NoiseModel,
    kind: BackendKind,
}

impl SimulatedBackend {
    /// Creates a backend with noise derived from the calibration and
    /// [`BackendKind::Auto`] strategy.
    pub fn from_calibration(calibration: Calibration) -> Self {
        let noise = NoiseModel::from_calibration(&calibration);
        SimulatedBackend {
            calibration,
            noise,
            kind: BackendKind::Auto,
        }
    }

    /// Creates a noiseless backend over the same coupling map (the paper's
    /// "noise-free" reference curves).
    pub fn ideal(calibration: Calibration) -> Self {
        SimulatedBackend {
            calibration,
            noise: NoiseModel::ideal(),
            kind: BackendKind::Ideal,
        }
    }

    /// Overrides the simulation strategy.
    pub fn with_kind(mut self, kind: BackendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the noise model (used by mitigation modelling).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// The device calibration.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The active noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The simulation strategy.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Executes a transpiled circuit with bound `params` and returns the
    /// outcome distribution over the *logical* qubits (readout error applied,
    /// routing permutation undone).
    ///
    /// `seed` makes trajectory backends deterministic; density and ideal
    /// backends ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `params` does not match the circuit's parameter count.
    pub fn run(&self, transpiled: &TranspiledCircuit, params: &[f64], seed: u64) -> ProbDist {
        let kind = self.effective_kind(transpiled.circuit.n_qubits());
        let physical = match kind {
            BackendKind::Ideal => {
                let sv = transpiled.circuit.simulate_ideal(params);
                ProbDist::new(sv.probabilities())
            }
            BackendKind::DensityMatrix => self.run_density(transpiled, params),
            BackendKind::Trajectory { n_trajectories } => {
                self.run_trajectories(transpiled, params, n_trajectories, seed)
            }
            BackendKind::Auto => unreachable!("resolved by effective_kind"),
        };
        let physical = if self.noise.readout.mean_error() > 0.0 {
            physical.with_uniform_readout_error(self.noise.readout)
        } else {
            physical
        };
        ProbDist::new(transpiled.remap_probabilities(physical.probabilities()))
    }

    fn effective_kind(&self, n_qubits: usize) -> BackendKind {
        match self.kind {
            BackendKind::Auto => {
                if n_qubits <= AUTO_DENSITY_LIMIT {
                    BackendKind::DensityMatrix
                } else {
                    BackendKind::Trajectory {
                        n_trajectories: AUTO_TRAJECTORIES,
                    }
                }
            }
            other => other,
        }
    }

    fn run_density(&self, transpiled: &TranspiledCircuit, params: &[f64]) -> ProbDist {
        let mut rho = DensityMatrix::zero_state(transpiled.circuit.n_qubits());
        // No fusion on the density path: the kernel-call sequence — and
        // therefore every bit of the result — matches the seed evolution.
        for op in transpiled.circuit.bind_ops(params) {
            rho.apply_op(&op);
            match op {
                FusedOp::One(_, q) | FusedOp::Rz(_, q) => {
                    rho.apply_depolarizing_1q(self.noise.dep_1q, q);
                }
                FusedOp::Two(_, a, b) | FusedOp::Cx(a, b) | FusedOp::Mono(_, _, a, b) => {
                    rho.apply_depolarizing_2q(self.noise.dep_2q, a, b);
                }
            }
        }
        rho.probabilities()
    }

    fn run_trajectories(
        &self,
        transpiled: &TranspiledCircuit,
        params: &[f64],
        n_trajectories: u32,
        seed: u64,
    ) -> ProbDist {
        assert!(n_trajectories > 0, "need at least one trajectory");
        let n = transpiled.circuit.n_qubits();
        let ch_1q = NoiseChannel::depolarizing_1q(self.noise.dep_1q);
        let ch_2q = NoiseChannel::depolarizing_2q(self.noise.dep_2q);
        let mut acc = TrajectoryAccumulator::new(n);
        // Resolve the gate sequence once; every trajectory replays the same
        // lowered ops (interleaved noise sites pin the op order, so no
        // fusion — the kernel-call sequence matches the seed bit-for-bit).
        let ops = transpiled.circuit.bind_ops(params);
        for t in 0..n_trajectories {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
            let mut sv = StateVector::zero_state(n);
            for op in &ops {
                sv.apply_op(op);
                match *op {
                    FusedOp::One(_, q) | FusedOp::Rz(_, q) => {
                        if self.noise.dep_1q > 0.0 {
                            apply_stochastic(&mut sv, &ch_1q, &[q], &mut rng);
                        }
                    }
                    FusedOp::Two(_, a, b) | FusedOp::Cx(a, b) | FusedOp::Mono(_, _, a, b) => {
                        if self.noise.dep_2q > 0.0 {
                            apply_stochastic(&mut sv, &ch_2q, &[a, b], &mut rng);
                        }
                    }
                }
            }
            acc.add(&sv);
        }
        acc.into_dist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use qoncord_circuit::transpile::transpile;
    use qoncord_circuit::Circuit;

    fn bell_transpiled(cal: &Calibration) -> TranspiledCircuit {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        transpile(&qc, cal.coupling())
    }

    #[test]
    fn noise_model_conversion_factors() {
        let cal = catalog::ibmq_kolkata();
        let nm = NoiseModel::from_calibration(&cal);
        assert!((nm.dep_1q - 2.0 * cal.error_1q()).abs() < 1e-12);
        assert!((nm.dep_2q - 4.0 / 3.0 * cal.error_2q()).abs() < 1e-12);
        assert!((nm.readout.mean_error() - cal.readout_error()).abs() < 1e-12);
    }

    #[test]
    fn ideal_backend_returns_clean_bell() {
        let cal = catalog::ibmq_kolkata();
        let t = bell_transpiled(&cal);
        let backend = SimulatedBackend::ideal(cal);
        let dist = backend.run(&t, &[], 0);
        assert!((dist.probabilities()[0] - 0.5).abs() < 1e-9);
        assert!((dist.probabilities()[3] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noisy_backend_degrades_bell() {
        let cal = catalog::ibmq_toronto();
        let t = bell_transpiled(&cal);
        let backend = SimulatedBackend::from_calibration(cal);
        let dist = backend.run(&t, &[], 0);
        let leaked = dist.probabilities()[1] + dist.probabilities()[2];
        assert!(leaked > 0.01, "expected noise leakage, got {leaked}");
        assert!(leaked < 0.3, "noise unreasonably strong: {leaked}");
    }

    #[test]
    fn kolkata_beats_toronto_on_fidelity() {
        let ideal = {
            let cal = catalog::ibmq_kolkata();
            let t = bell_transpiled(&cal);
            SimulatedBackend::ideal(cal).run(&t, &[], 0)
        };
        let run_on = |cal: Calibration| {
            let t = bell_transpiled(&cal);
            SimulatedBackend::from_calibration(cal).run(&t, &[], 0)
        };
        let hf = run_on(catalog::ibmq_kolkata());
        let lf = run_on(catalog::ibmq_toronto());
        assert!(ideal.hellinger_fidelity(&hf) > ideal.hellinger_fidelity(&lf));
    }

    #[test]
    fn trajectory_backend_approximates_density_backend() {
        let cal = catalog::ibmq_toronto();
        let t = bell_transpiled(&cal);
        let dense = SimulatedBackend::from_calibration(cal.clone())
            .with_kind(BackendKind::DensityMatrix)
            .run(&t, &[], 0);
        let traj = SimulatedBackend::from_calibration(cal)
            .with_kind(BackendKind::Trajectory {
                n_trajectories: 3000,
            })
            .run(&t, &[], 42);
        assert!(
            dense.total_variation(&traj) < 0.02,
            "tv = {}",
            dense.total_variation(&traj)
        );
    }

    #[test]
    fn auto_picks_density_for_small_circuits() {
        let backend = SimulatedBackend::from_calibration(catalog::ibmq_kolkata());
        assert_eq!(backend.effective_kind(7), BackendKind::DensityMatrix);
        assert_eq!(
            backend.effective_kind(14),
            BackendKind::Trajectory {
                n_trajectories: AUTO_TRAJECTORIES
            }
        );
    }

    #[test]
    fn scaled_noise_model_reduces_error() {
        let nm = NoiseModel::from_calibration(&catalog::ibmq_toronto());
        let s = nm.scaled(0.5, 0.1);
        assert!((s.dep_2q - nm.dep_2q * 0.5).abs() < 1e-12);
        assert!(s.readout.mean_error() < nm.readout.mean_error());
    }

    #[test]
    fn ideal_model_detection() {
        assert!(NoiseModel::ideal().is_ideal());
        assert!(!NoiseModel::from_calibration(&catalog::ibmq_kolkata()).is_ideal());
    }

    #[test]
    fn deterministic_given_seed() {
        let cal = catalog::ibmq_toronto();
        let t = bell_transpiled(&cal);
        let backend = SimulatedBackend::from_calibration(cal)
            .with_kind(BackendKind::Trajectory { n_trajectories: 64 });
        let a = backend.run(&t, &[], 9);
        let b = backend.run(&t, &[], 9);
        assert_eq!(a, b);
    }
}
