//! Deadline-aware admission control.
//!
//! Before a job is admitted to the fleet, the orchestrator projects its
//! completion time from the current fleet load using the cloud layer's cost
//! model ([`qoncord_cloud::policy::estimate_feasibility`] over the same
//! placements the dispatch policy chose). The [`AdmissionController`] then
//! compares the projection against the job's service-level deadline and
//! either admits the job, *downgrades* it to best-effort (deadline and
//! priority stripped, so an unkeepable promise is renegotiated instead of
//! silently broken), or *rejects* it outright — EFaaS-style QoS for the
//! fair-share queue.
//!
//! Deadlines are absolute virtual times, specified either directly
//! ([`Deadline::At`]) or as a [`DeadlineClass`] resolved at admission
//! against the job's own projected service time.
//!
//! Decay-aware projections
//! ([`qoncord_cloud::policy::estimate_feasibility_decayed`]) rank the
//! queued work ahead of the job analytically over the fair-share queue's
//! indexes — the engine no longer clones and drains the queue per
//! admission decision, so this controller stays cheap at fleet scale (see
//! the `fleet_scale` experiment's admission-throughput trajectory).

use qoncord_cloud::policy::FeasibilityEstimate;

/// A service-level tier mapping a job's projected service time to a
/// relative deadline. Resolved at admission: the concrete deadline is
/// `arrival + multiplier × projected service seconds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeadlineClass {
    /// Latency-sensitive: at most 2× its own service time end to end.
    Interactive,
    /// Ordinary work: 6× its service time.
    Standard,
    /// Throughput work: 20× its service time — effectively "eventually".
    Batch,
}

impl DeadlineClass {
    /// Allowed turnaround as a multiple of the job's service time.
    pub fn multiplier(&self) -> f64 {
        match self {
            DeadlineClass::Interactive => 2.0,
            DeadlineClass::Standard => 6.0,
            DeadlineClass::Batch => 20.0,
        }
    }

    /// The absolute deadline for a job of this class arriving at `arrival`
    /// with `service_seconds` of projected device time.
    pub fn deadline_for(&self, arrival: f64, service_seconds: f64) -> f64 {
        arrival + self.multiplier() * service_seconds
    }
}

/// A job's service-level deadline, as submitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Deadline {
    /// An absolute virtual time the job must complete by.
    At(f64),
    /// A class resolved against the job's projected service time at
    /// admission.
    Class(DeadlineClass),
}

impl Deadline {
    /// The absolute deadline, given the job's arrival and projected service
    /// seconds.
    pub fn resolve(&self, arrival: f64, service_seconds: f64) -> f64 {
        match *self {
            Deadline::At(t) => t,
            Deadline::Class(class) => class.deadline_for(arrival, service_seconds),
        }
    }
}

/// What the admission controller does with jobs whose deadline cannot be
/// met.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Admit everything; deadlines are recorded but never enforced
    /// (the pre-admission-control behavior).
    #[default]
    AdmitAll,
    /// Admit infeasible jobs as best-effort: deadline and priority are
    /// stripped, and the downgrade is recorded in telemetry.
    Downgrade,
    /// Refuse infeasible jobs outright; they never run.
    Reject,
    /// Like [`Reject`](AdmissionMode::Reject), but the static
    /// [`safety_margin`](AdmissionConfig::safety_margin) is replaced by the
    /// per-tier/per-class margin a
    /// [`MarginModel`](crate::calibration::MarginModel) has learned from
    /// realized estimate errors (the static margin remains the fallback
    /// until the model has samples).
    Calibrated,
}

/// Tuning of the admission controller.
///
/// All margins in this module are **seconds of virtual time**: a margin of
/// `m` demands the projected completion beat the deadline by at least `m`
/// seconds (negative `m` tolerates projections up to `-m` seconds past it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// What to do with jobs whose deadline the projection says will be
    /// missed.
    pub mode: AdmissionMode,
    /// Static safety margin, seconds: the projection must beat the deadline
    /// by at least this much to count as feasible (absorbs estimate
    /// error). Under [`AdmissionMode::Calibrated`] this is only the
    /// fallback while the margin model is still warming up.
    pub safety_margin: f64,
    /// Whether feasibility projections model the fair-share queue under
    /// virtual-time usage decay
    /// ([`estimate_feasibility_decayed`](qoncord_cloud::policy::estimate_feasibility_decayed)):
    /// queued work the job outranks no longer counts against it, and decay
    /// epochs projected to pass before its start re-rank the queue the way
    /// dispatch will. Off, projections charge every device's whole backlog
    /// (the pre-calibration behavior).
    pub decay_aware: bool,
}

/// The single source of the admission defaults: admit-all, a zero static
/// margin, and backlog-only (decay-blind) projections.
impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            mode: AdmissionMode::default(),
            safety_margin: 0.0,
            decay_aware: false,
        }
    }
}

impl AdmissionConfig {
    /// A controller in the given mode with the default margin and
    /// projection model — the literal `AdmissionConfig { mode, ..default }`
    /// every call site used to spell out.
    pub fn with_mode(mode: AdmissionMode) -> Self {
        AdmissionConfig {
            mode,
            ..AdmissionConfig::default()
        }
    }

    /// The calibrated closed loop: learned margins and decay-aware
    /// projections.
    pub fn calibrated() -> Self {
        AdmissionConfig {
            mode: AdmissionMode::Calibrated,
            decay_aware: true,
            ..AdmissionConfig::default()
        }
    }
}

/// The controller's verdict on one arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Run with the resolved deadline (or no deadline at all).
    Admit,
    /// Run, but as best-effort: the deadline was unkeepable.
    Downgrade,
    /// Do not run.
    Reject,
}

impl AdmissionDecision {
    /// Stable machine-readable name (trace serializations key on it).
    pub fn as_str(&self) -> &'static str {
        match self {
            AdmissionDecision::Admit => "admit",
            AdmissionDecision::Downgrade => "downgrade",
            AdmissionDecision::Reject => "reject",
        }
    }
}

/// The full outcome: decision, the deadline that survives it, the
/// feasibility projection that justified it, and the margin it was judged
/// under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionOutcome {
    /// The verdict.
    pub decision: AdmissionDecision,
    /// The deadline the job carries forward: the resolved deadline when
    /// admitted with one, `None` when the job had none or was downgraded
    /// to best-effort.
    pub deadline: Option<f64>,
    /// The resolved deadline that was assessed, regardless of verdict
    /// (`None` only for deadline-free jobs).
    pub assessed_deadline: Option<f64>,
    /// The load projection the verdict was based on.
    pub estimate: FeasibilityEstimate,
    /// The safety margin (seconds) the feasibility check applied — the
    /// static configuration value, or the learned per-tier margin under
    /// [`AdmissionMode::Calibrated`].
    pub margin: f64,
}

/// Deadline-aware admission control over fleet-load projections.
///
/// # Examples
///
/// ```
/// use qoncord_cloud::policy::FeasibilityEstimate;
/// use qoncord_orchestrator::admission::{
///     AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionMode, Deadline,
/// };
///
/// let ctl = AdmissionController::new(AdmissionConfig::with_mode(AdmissionMode::Reject));
/// let estimate = FeasibilityEstimate {
///     queue_seconds: 10.0,
///     service_seconds: 20.0,
///     completion: 30.0,
/// };
/// // Projected to finish at t=30: a t=40 deadline admits, t=25 rejects.
/// let ok = ctl.assess(0.0, Some(Deadline::At(40.0)), estimate);
/// assert_eq!(ok.decision, AdmissionDecision::Admit);
/// assert_eq!(ok.deadline, Some(40.0));
/// let late = ctl.assess(0.0, Some(Deadline::At(25.0)), estimate);
/// assert_eq!(late.decision, AdmissionDecision::Reject);
/// // A learned margin overrides the static one per assessment: −10s of
/// // margin (projections known to run 10s hot) admits the t=25 deadline.
/// let relearned = ctl.assess_with_margin(0.0, Some(Deadline::At(25.0)), estimate, -10.0);
/// assert_eq!(relearned.decision, AdmissionDecision::Admit);
/// assert_eq!(relearned.margin, -10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdmissionController {
    config: AdmissionConfig,
}

impl AdmissionController {
    /// Creates a controller with the given configuration.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController { config }
    }

    /// Assesses one arriving job: `deadline` is the job's submitted SLA (if
    /// any), `arrival` its submission time, and `estimate` the fleet-load
    /// projection of its placements. Feasibility uses the configured static
    /// [`safety_margin`](AdmissionConfig::safety_margin).
    pub fn assess(
        &self,
        arrival: f64,
        deadline: Option<Deadline>,
        estimate: FeasibilityEstimate,
    ) -> AdmissionOutcome {
        self.assess_with_margin(arrival, deadline, estimate, self.config.safety_margin)
    }

    /// Assesses one arriving job under an explicit safety `margin`
    /// (seconds; negative loosens the check). This is the entry point for
    /// [`AdmissionMode::Calibrated`]: the engine passes the margin its
    /// [`MarginModel`](crate::calibration::MarginModel) has learned for the
    /// job's tier and service class.
    pub fn assess_with_margin(
        &self,
        arrival: f64,
        deadline: Option<Deadline>,
        estimate: FeasibilityEstimate,
        margin: f64,
    ) -> AdmissionOutcome {
        let Some(deadline) = deadline.map(|d| d.resolve(arrival, estimate.service_seconds)) else {
            return AdmissionOutcome {
                decision: AdmissionDecision::Admit,
                deadline: None,
                assessed_deadline: None,
                estimate,
                margin,
            };
        };
        let feasible = estimate.meets(deadline, margin);
        let decision = match self.config.mode {
            AdmissionMode::AdmitAll => AdmissionDecision::Admit,
            _ if feasible => AdmissionDecision::Admit,
            AdmissionMode::Downgrade => AdmissionDecision::Downgrade,
            AdmissionMode::Reject | AdmissionMode::Calibrated => AdmissionDecision::Reject,
        };
        AdmissionOutcome {
            decision,
            deadline: match decision {
                AdmissionDecision::Admit => Some(deadline),
                AdmissionDecision::Downgrade | AdmissionDecision::Reject => None,
            },
            assessed_deadline: Some(deadline),
            estimate,
            margin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(queue: f64, service: f64, now: f64) -> FeasibilityEstimate {
        FeasibilityEstimate {
            queue_seconds: queue,
            service_seconds: service,
            completion: now + queue + service,
        }
    }

    #[test]
    fn classes_order_strictest_first() {
        assert!(DeadlineClass::Interactive.multiplier() < DeadlineClass::Standard.multiplier());
        assert!(DeadlineClass::Standard.multiplier() < DeadlineClass::Batch.multiplier());
        assert_eq!(DeadlineClass::Interactive.deadline_for(10.0, 5.0), 20.0);
    }

    #[test]
    fn deadline_free_jobs_always_admit() {
        let ctl = AdmissionController::new(AdmissionConfig::with_mode(AdmissionMode::Reject));
        let out = ctl.assess(0.0, None, estimate(1e9, 1.0, 0.0));
        assert_eq!(out.decision, AdmissionDecision::Admit);
        assert_eq!(out.deadline, None);
        assert_eq!(out.assessed_deadline, None);
    }

    #[test]
    fn feasible_deadlines_admit_in_every_mode() {
        for mode in [
            AdmissionMode::AdmitAll,
            AdmissionMode::Downgrade,
            AdmissionMode::Reject,
            AdmissionMode::Calibrated,
        ] {
            let ctl = AdmissionController::new(AdmissionConfig::with_mode(mode));
            let out = ctl.assess(0.0, Some(Deadline::At(100.0)), estimate(10.0, 20.0, 0.0));
            assert_eq!(out.decision, AdmissionDecision::Admit, "{mode:?}");
            assert_eq!(out.deadline, Some(100.0));
        }
    }

    #[test]
    fn infeasible_deadline_downgrades_or_rejects_by_mode() {
        let hopeless = estimate(50.0, 20.0, 0.0); // completes at 70
        let deadline = Some(Deadline::At(60.0));
        let admit_all = AdmissionController::default().assess(0.0, deadline, hopeless);
        assert_eq!(admit_all.decision, AdmissionDecision::Admit);
        assert_eq!(
            admit_all.deadline,
            Some(60.0),
            "AdmitAll keeps the SLA on record"
        );

        let downgrade =
            AdmissionController::new(AdmissionConfig::with_mode(AdmissionMode::Downgrade))
                .assess(0.0, deadline, hopeless);
        assert_eq!(downgrade.decision, AdmissionDecision::Downgrade);
        assert_eq!(downgrade.deadline, None, "downgrade strips the SLA");
        assert_eq!(downgrade.assessed_deadline, Some(60.0));

        let reject = AdmissionController::new(AdmissionConfig::with_mode(AdmissionMode::Reject))
            .assess(0.0, deadline, hopeless);
        assert_eq!(reject.decision, AdmissionDecision::Reject);
    }

    #[test]
    fn safety_margin_tightens_feasibility() {
        let ctl = |margin| {
            AdmissionController::new(AdmissionConfig {
                mode: AdmissionMode::Reject,
                safety_margin: margin,
                ..AdmissionConfig::default()
            })
        };
        let est = estimate(10.0, 10.0, 0.0); // completes at 20
        let deadline = Some(Deadline::At(25.0));
        assert_eq!(
            ctl(0.0).assess(0.0, deadline, est).decision,
            AdmissionDecision::Admit
        );
        assert_eq!(
            ctl(10.0).assess(0.0, deadline, est).decision,
            AdmissionDecision::Reject
        );
    }

    #[test]
    fn class_deadlines_resolve_against_projected_service() {
        let ctl = AdmissionController::new(AdmissionConfig::with_mode(AdmissionMode::Reject));
        // Interactive allows 2× service: 20s of service admits only if the
        // queue delay stays within another 20s.
        let ok = ctl.assess(
            5.0,
            Some(Deadline::Class(DeadlineClass::Interactive)),
            estimate(10.0, 20.0, 5.0),
        );
        assert_eq!(ok.decision, AdmissionDecision::Admit);
        assert_eq!(ok.deadline, Some(45.0));
        let late = ctl.assess(
            5.0,
            Some(Deadline::Class(DeadlineClass::Interactive)),
            estimate(25.0, 20.0, 5.0),
        );
        assert_eq!(late.decision, AdmissionDecision::Reject);
    }
}
