//! Closed-loop calibration of admission-time feasibility projections.
//!
//! The admission controller compares a job's projected completion against
//! its deadline with a safety margin. A *static* margin has to be guessed
//! once for the whole fleet: set it low and systematically optimistic
//! projections admit jobs that then miss their SLAs; set it high and every
//! tier pays the worst tier's penalty in false rejections. The
//! [`MarginModel`] closes the loop instead: every completed job contributes
//! one *estimate error* sample — realized completion minus the projection
//! recorded at admission — keyed by the job's device tier and service
//! class, and the margin applied to the next arrival of that key is a
//! sliding-window quantile (P90 by default) of those errors. Tiers whose
//! projections run hot earn a positive margin; tiers whose projections run
//! cold (e.g. because restart triage prunes most of the projected work)
//! earn a *negative* one, which is what eliminates false rejections.
//!
//! Denied jobs never realize a completion, so they contribute no error
//! sample — but they are recorded in the model's history, which is how
//! telemetry exposes the margin trajectory that produced each denial.
//!
//! [`AdmissionMode::Calibrated`](crate::admission::AdmissionMode::Calibrated)
//! switches the engine from the static margin to this model.

use std::collections::{HashMap, VecDeque};

use crate::admission::Deadline;

/// Tuning of the [`MarginModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// The error quantile the margin tracks, in `(0, 1]`. 0.9 means the
    /// margin absorbs the 90th-percentile estimate error of the key's
    /// recent jobs.
    pub quantile: f64,
    /// Sliding-window length per key: only the most recent `window` error
    /// samples of a key inform its margin, so the model tracks drift
    /// instead of averaging over the whole run.
    pub window: usize,
    /// Samples a key needs before its learned margin is trusted. Below
    /// this, the model falls back to the tier's pooled samples, then to
    /// all samples, then to the static fallback margin.
    pub min_samples: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            quantile: 0.9,
            window: 64,
            min_samples: 4,
        }
    }
}

/// The service class a job's deadline shape sorts it into — one axis of
/// the calibration key (estimate error differs systematically between,
/// say, interactive jobs that run at high priority and batch jobs that
/// get evicted for them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// [`DeadlineClass::Interactive`](crate::admission::DeadlineClass).
    Interactive,
    /// [`DeadlineClass::Standard`](crate::admission::DeadlineClass).
    Standard,
    /// [`DeadlineClass::Batch`](crate::admission::DeadlineClass).
    Batch,
    /// An absolute [`Deadline::At`] deadline.
    Absolute,
    /// No deadline at all. Best-effort jobs are never denied, which makes
    /// them unbiased error probes: their samples keep a key learning even
    /// while the controller is rejecting everything else in it.
    BestEffort,
}

impl ServiceClass {
    /// Stable machine-readable name (trace serializations key on it).
    pub fn as_str(&self) -> &'static str {
        match self {
            ServiceClass::Interactive => "interactive",
            ServiceClass::Standard => "standard",
            ServiceClass::Batch => "batch",
            ServiceClass::Absolute => "absolute",
            ServiceClass::BestEffort => "best_effort",
        }
    }

    /// The class of a job submitted with `deadline`.
    pub fn of(deadline: Option<Deadline>) -> Self {
        use crate::admission::DeadlineClass;
        match deadline {
            None => ServiceClass::BestEffort,
            Some(Deadline::At(_)) => ServiceClass::Absolute,
            Some(Deadline::Class(DeadlineClass::Interactive)) => ServiceClass::Interactive,
            Some(Deadline::Class(DeadlineClass::Standard)) => ServiceClass::Standard,
            Some(Deadline::Class(DeadlineClass::Batch)) => ServiceClass::Batch,
        }
    }
}

/// The calibration key: which error population a job's outcome feeds and
/// which learned margin its admission uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MarginKey {
    /// Device tier of the job's ladder entry device (tiers rank the
    /// fleet's distinct advertised fidelities, 0 = lowest). Estimates are
    /// tier-dependent — a QuSplit-style LF tier drains restarts it will
    /// later prune, an HF tier serves evicting interactive traffic — so
    /// margins must be too.
    pub tier: usize,
    /// Deadline shape of the job.
    pub class: ServiceClass,
}

/// One entry of the model's learning history: an ingested outcome and the
/// margin its key carries *after* ingesting it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginSnapshot {
    /// Virtual time of the outcome (completion or denial).
    pub time: f64,
    /// The key the outcome fed.
    pub key: MarginKey,
    /// Realized-minus-projected completion seconds, `None` for a denial
    /// (denied jobs never realize a completion).
    pub error: Option<f64>,
    /// The margin [`MarginModel::margin_for`] returns for this key after
    /// the outcome.
    pub margin: f64,
    /// Error samples in the key's window after the outcome.
    pub samples: usize,
}

/// Per-tier/per-class estimate-error quantiles that replace the static
/// admission safety margin.
///
/// # Examples
///
/// ```
/// use qoncord_orchestrator::calibration::{
///     CalibrationConfig, MarginKey, MarginModel, ServiceClass,
/// };
///
/// let key = MarginKey { tier: 0, class: ServiceClass::Batch };
/// let mut model = MarginModel::new(5.0, CalibrationConfig::default());
/// // Until enough outcomes arrive, the static fallback margin applies.
/// assert_eq!(model.margin_for(key), 5.0);
/// // Ten jobs complete ~40s *earlier* than projected: the estimates are
/// // systematically pessimistic, and the learned margin goes negative.
/// for job in 0..10 {
///     let projected = 100.0 * job as f64;
///     model.record_completion(projected, key, projected, projected - 40.0);
/// }
/// assert!(model.margin_for(key) < -35.0);
/// assert_eq!(model.history().len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct MarginModel {
    fallback_margin: f64,
    config: CalibrationConfig,
    windows: HashMap<MarginKey, VecDeque<f64>>,
    history: Vec<MarginSnapshot>,
    denials: u64,
}

impl MarginModel {
    /// Creates a model that answers `fallback_margin` (the static margin,
    /// seconds) until a key has accumulated enough samples.
    ///
    /// # Panics
    ///
    /// Panics if the quantile lies outside `(0, 1]`, the window is empty,
    /// `min_samples` is zero, or the fallback margin is not finite.
    pub fn new(fallback_margin: f64, config: CalibrationConfig) -> Self {
        assert!(
            config.quantile > 0.0 && config.quantile <= 1.0,
            "quantile must lie in (0, 1]"
        );
        assert!(config.window > 0, "window must hold at least one sample");
        assert!(config.min_samples > 0, "min_samples must be positive");
        assert!(
            fallback_margin.is_finite(),
            "fallback margin must be finite"
        );
        MarginModel {
            fallback_margin,
            config,
            windows: HashMap::new(),
            history: Vec::new(),
            denials: 0,
        }
    }

    /// The safety margin (seconds, possibly negative) admission should
    /// apply to a job of `key` right now: the configured quantile of the
    /// key's error window, falling back to the tier's pooled windows, then
    /// to all windows, then to the static fallback margin — whichever first
    /// holds at least [`CalibrationConfig::min_samples`] samples.
    pub fn margin_for(&self, key: MarginKey) -> f64 {
        let exact: Vec<f64> = self
            .windows
            .get(&key)
            .map(|w| w.iter().copied().collect())
            .unwrap_or_default();
        if exact.len() >= self.config.min_samples {
            return quantile(exact, self.config.quantile);
        }
        let tier: Vec<f64> = self
            .windows
            .iter()
            .filter(|(k, _)| k.tier == key.tier)
            .flat_map(|(_, w)| w.iter().copied())
            .collect();
        if tier.len() >= self.config.min_samples {
            return quantile(tier, self.config.quantile);
        }
        let all: Vec<f64> = self
            .windows
            .values()
            .flat_map(|w| w.iter().copied())
            .collect();
        if all.len() >= self.config.min_samples {
            return quantile(all, self.config.quantile);
        }
        self.fallback_margin
    }

    /// Ingests a completed job: `projected` is the completion the admission
    /// estimate promised, `realized` the virtual time it actually finished
    /// (SLA misses arrive through here too — a late completion *is* the
    /// miss signal, as a large positive error). `time` stamps the history
    /// entry.
    ///
    /// Returns the history entry the outcome produced (the flight recorder
    /// emits it as a calibration-update event).
    ///
    /// # Panics
    ///
    /// Panics if `projected` or `realized` is not finite.
    pub fn record_completion(
        &mut self,
        time: f64,
        key: MarginKey,
        projected: f64,
        realized: f64,
    ) -> &MarginSnapshot {
        assert!(
            projected.is_finite() && realized.is_finite(),
            "completions must be finite times"
        );
        let window = self.windows.entry(key).or_default();
        window.push_back(realized - projected);
        while window.len() > self.config.window {
            window.pop_front();
        }
        self.snapshot(time, key, Some(realized - projected))
    }

    /// Ingests a denied job. Denials carry no realized completion and feed
    /// no error window; they are recorded in the history so telemetry can
    /// correlate each denial with the margin that produced it. Returns the
    /// history entry, like [`record_completion`](Self::record_completion).
    pub fn record_denial(&mut self, time: f64, key: MarginKey) -> &MarginSnapshot {
        self.denials += 1;
        self.snapshot(time, key, None)
    }

    /// Error samples currently in `key`'s window.
    pub fn samples(&self, key: MarginKey) -> usize {
        self.windows.get(&key).map_or(0, VecDeque::len)
    }

    /// Denials ingested so far.
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// The full learning history, in ingestion order.
    pub fn history(&self) -> &[MarginSnapshot] {
        &self.history
    }

    /// Consumes the model into its history (end-of-run telemetry).
    pub fn into_history(self) -> Vec<MarginSnapshot> {
        self.history
    }

    fn snapshot(&mut self, time: f64, key: MarginKey, error: Option<f64>) -> &MarginSnapshot {
        let snapshot = MarginSnapshot {
            time,
            key,
            error,
            margin: self.margin_for(key),
            samples: self.samples(key),
        };
        self.history.push(snapshot);
        self.history.last().expect("just pushed")
    }
}

/// Nearest-rank quantile of `values` (sorted internally, so callers may
/// pass pooled samples in any order).
fn quantile(mut values: Vec<f64>, q: f64) -> f64 {
    debug_assert!(!values.is_empty(), "quantile of an empty sample set");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let rank = (q * values.len() as f64).ceil() as usize;
    values[rank.clamp(1, values.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::DeadlineClass;

    fn key(tier: usize, class: ServiceClass) -> MarginKey {
        MarginKey { tier, class }
    }

    #[test]
    fn fallback_until_min_samples_then_quantile() {
        let k = key(0, ServiceClass::Batch);
        let mut model = MarginModel::new(7.5, CalibrationConfig::default());
        assert_eq!(model.margin_for(k), 7.5);
        for i in 0..3 {
            model.record_completion(i as f64, k, 10.0, 10.0 + i as f64);
        }
        assert_eq!(model.margin_for(k), 7.5, "3 samples < min_samples=4");
        model.record_completion(3.0, k, 10.0, 13.0);
        // Errors {0, 1, 2, 3}: P90 nearest-rank = 3.
        assert_eq!(model.margin_for(k), 3.0);
    }

    #[test]
    fn margins_are_per_key_with_tier_and_global_fallback() {
        let lf = key(0, ServiceClass::Batch);
        let lf_probe = key(0, ServiceClass::BestEffort);
        let hf = key(1, ServiceClass::Interactive);
        let mut model = MarginModel::new(0.0, CalibrationConfig::default());
        for i in 0..8 {
            model.record_completion(i as f64, lf, 100.0, 130.0); // +30 hot
            model.record_completion(i as f64, hf, 100.0, 90.0); // -10 cold
        }
        assert_eq!(model.margin_for(lf), 30.0);
        assert_eq!(model.margin_for(hf), -10.0);
        // A fresh class on the LF tier pools the tier's samples...
        assert_eq!(model.margin_for(lf_probe), 30.0);
        // ...and a fresh tier pools everything (P90 of {+30×8, −10×8}).
        assert_eq!(model.margin_for(key(9, ServiceClass::Standard)), 30.0);
    }

    #[test]
    fn sliding_window_forgets_old_bias() {
        let k = key(0, ServiceClass::Absolute);
        let mut model = MarginModel::new(
            0.0,
            CalibrationConfig {
                window: 4,
                min_samples: 2,
                ..CalibrationConfig::default()
            },
        );
        for i in 0..10 {
            model.record_completion(i as f64, k, 50.0, 90.0); // +40 era
        }
        assert_eq!(model.margin_for(k), 40.0);
        for i in 10..14 {
            model.record_completion(i as f64, k, 50.0, 45.0); // -5 era
        }
        assert_eq!(model.samples(k), 4);
        assert_eq!(model.margin_for(k), -5.0, "the +40 era has aged out");
    }

    #[test]
    fn history_tracks_completions_and_denials() {
        let k = key(1, ServiceClass::Batch);
        let mut model = MarginModel::new(2.0, CalibrationConfig::default());
        model.record_completion(5.0, k, 10.0, 16.0);
        model.record_denial(6.0, k);
        assert_eq!(model.denials(), 1);
        let history = model.history();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].error, Some(6.0));
        assert_eq!(history[0].samples, 1);
        assert_eq!(history[1].error, None, "denials carry no error sample");
        assert_eq!(history[1].samples, 1, "denials feed no window");
        assert_eq!(history[1].margin, 2.0, "still on the fallback margin");
    }

    #[test]
    fn service_class_of_every_deadline_shape() {
        assert_eq!(ServiceClass::of(None), ServiceClass::BestEffort);
        assert_eq!(
            ServiceClass::of(Some(Deadline::At(5.0))),
            ServiceClass::Absolute
        );
        for (class, expected) in [
            (DeadlineClass::Interactive, ServiceClass::Interactive),
            (DeadlineClass::Standard, ServiceClass::Standard),
            (DeadlineClass::Batch, ServiceClass::Batch),
        ] {
            assert_eq!(ServiceClass::of(Some(Deadline::Class(class))), expected);
        }
    }

    #[test]
    fn quantile_is_nearest_rank() {
        assert_eq!(quantile(vec![3.0, 1.0, 2.0], 1.0), 3.0);
        assert_eq!(quantile(vec![3.0, 1.0, 2.0], 0.5), 2.0);
        assert_eq!(quantile(vec![5.0], 0.9), 5.0);
        assert_eq!(quantile(vec![1.0, 2.0], 0.01), 1.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn invalid_quantile_rejected() {
        MarginModel::new(
            0.0,
            CalibrationConfig {
                quantile: 0.0,
                ..CalibrationConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_completion_rejected() {
        let mut model = MarginModel::new(0.0, CalibrationConfig::default());
        model.record_completion(0.0, key(0, ServiceClass::Batch), f64::NAN, 1.0);
    }
}
