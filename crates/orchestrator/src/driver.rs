//! The per-job state machine: replays the closed-loop Qoncord scheduler
//! (`qoncord_core::scheduler::QoncordScheduler::run`) one device batch at a
//! time, so the engine can interleave many tenants on a shared fleet.
//!
//! Every classical decision — triage, entropy-gate skips, lane transitions —
//! happens between batches and costs zero virtual time; every quantum batch
//! (one SPSA iteration, or one entropy-gate probe evaluation) is surfaced to
//! the engine as a device reservation. Because the per-lane evaluator call
//! order is identical to the closed loop's, a job's numeric results match
//! the sequential scheduler bit for bit.

use qoncord_core::executor::{build_lanes, DeviceLane, EvaluatorFactory, RejectedDevice};
use qoncord_core::phase::{PhaseCheckpoint, PhaseRunner};
use qoncord_core::scheduler::{
    exploration_seed, finetune_seed, DeviceUsage, QoncordConfig, QoncordReport, RestartReport,
};
use qoncord_core::select_restarts;
use qoncord_device::calibration::Calibration;
use qoncord_vqa::restart::{
    executions_for_iterations, random_initial_points, SPSA_EXECUTIONS_PER_ITERATION,
};
use std::collections::HashMap;

/// A-priori estimate of the circuit executions one batch consumes (SPSA's
/// fixed per-iteration cost); used to size reservations before they run.
pub(crate) const EXECUTIONS_PER_BATCH_ESTIMATE: f64 = SPSA_EXECUTIONS_PER_ITERATION as f64;

/// A fleet device handed to a job's ladder construction.
#[derive(Debug, Clone)]
pub(crate) struct SelectedDevice {
    /// Index of the device in the engine's fleet.
    pub fleet_index: usize,
    /// Its calibration.
    pub calibration: Calibration,
    /// Its relative speed.
    pub speed: f64,
}

/// One rung of the job's ladder bound to a fleet device.
struct DriverLane {
    lane: DeviceLane,
    fleet_index: usize,
    /// Wall-clock seconds one circuit execution occupies on the device.
    secs_per_execution: f64,
}

/// A ladder rung decomposed for reuse as a split shard lane: the bound
/// evaluator plus everything the split driver prices and reports by.
pub(crate) struct LadderLane {
    /// Index of the device in the engine's fleet.
    pub fleet_index: usize,
    /// The device name (report attribution).
    pub device_name: String,
    /// The workload evaluator bound to this device.
    pub evaluator: Box<dyn qoncord_vqa::evaluator::CostEvaluator>,
    /// Estimated execution fidelity (Eq. 1).
    pub p_correct: f64,
    /// Wall-clock seconds one circuit execution occupies on the device.
    pub secs_per_execution: f64,
}

enum Stage {
    /// The entropy-gate probe evaluation before a fine-tuning phase.
    Probe,
    /// The fine-tuning phase itself (boxed: a runner carries the full
    /// optimizer/trace state and dwarfs the probe variant).
    Train(Box<PhaseRunner>),
}

enum DriverState {
    Exploring {
        restart: usize,
        runner: PhaseRunner,
    },
    FineTuning {
        lane: usize,
        pos: usize,
        stage: Stage,
    },
    Done,
}

/// What one granted batch did, as the engine sees it.
#[derive(Debug, Clone)]
pub(crate) struct BatchResult {
    /// Fleet device the batch ran on.
    pub fleet_index: usize,
    /// Device-seconds the batch occupies.
    pub duration: f64,
    /// Circuit executions consumed.
    pub executions: u64,
    /// `Some(pruned restart indices)` when restart triage ran inside this
    /// batch's classical epilogue (empty vector = triage kept everything).
    pub pruned: Option<Vec<usize>>,
    /// Whether the job has no further batches.
    pub finished: bool,
}

pub(crate) struct JobDriver {
    cfg: QoncordConfig,
    lanes: Vec<DriverLane>,
    reports: Vec<RestartReport>,
    initials: Vec<Vec<f64>>,
    rejected: Vec<RejectedDevice>,
    ground_energy: f64,
    multi_device: bool,
    state: DriverState,
}

impl JobDriver {
    /// Builds the job's device ladder over `selected` fleet devices and
    /// positions the state machine at the first exploration batch.
    ///
    /// Returns the rejected-device list if no device survives the fidelity
    /// filter.
    ///
    /// # Panics
    ///
    /// Panics if `n_restarts` is zero or an iteration budget is zero (a
    /// zero-budget phase has no batch to reserve).
    pub(crate) fn new(
        cfg: QoncordConfig,
        n_restarts: usize,
        factory: &dyn EvaluatorFactory,
        selected: &[SelectedDevice],
        shots: u64,
    ) -> Result<Self, Vec<RejectedDevice>> {
        assert!(n_restarts > 0, "need at least one restart");
        assert!(
            cfg.exploration_max_iterations > 0,
            "exploration budget must be positive"
        );
        let cals: Vec<Calibration> = selected.iter().map(|s| s.calibration.clone()).collect();
        let (lanes, rejected) = build_lanes(&cals, factory, cfg.min_fidelity, cfg.seed);
        if lanes.is_empty() {
            return Err(rejected);
        }
        let by_name: HashMap<&str, (usize, f64)> = selected
            .iter()
            .map(|s| (s.calibration.name(), (s.fleet_index, s.speed)))
            .collect();
        let lanes: Vec<DriverLane> = lanes
            .into_iter()
            .map(|lane| {
                let stats = lane.evaluator.circuit_stats();
                let (fleet_index, speed) = by_name[lane.calibration.name()];
                let secs_per_execution = lane.calibration.execution_time_s(&stats, shots) / speed;
                DriverLane {
                    lane,
                    fleet_index,
                    secs_per_execution,
                }
            })
            .collect();
        let multi_device = lanes.len() > 1;
        assert!(
            !multi_device || cfg.finetune_max_iterations > 0,
            "fine-tuning budget must be positive on a multi-device ladder"
        );
        let n_params = lanes[0].lane.evaluator.n_params();
        let ground_energy = lanes[0].lane.evaluator.ground_energy();
        let initials = random_initial_points(n_params, n_restarts, cfg.seed);
        let mut driver = JobDriver {
            cfg,
            lanes,
            reports: Vec::with_capacity(n_restarts),
            initials,
            rejected,
            ground_energy,
            multi_device,
            state: DriverState::Done,
        };
        driver.state = DriverState::Exploring {
            restart: 0,
            runner: driver.exploration_phase(0),
        };
        Ok(driver)
    }

    pub(crate) fn is_multi_device(&self) -> bool {
        self.multi_device
    }

    /// Fleet device and estimated seconds of one restart's full fine-tuning
    /// block on the final rung (the size of a provisional reservation).
    pub(crate) fn finetune_hold_estimate(&self) -> (usize, f64) {
        let last = self.lanes.last().expect("non-empty ladder");
        let secs = executions_for_iterations(self.cfg.finetune_max_iterations) as f64
            * last.secs_per_execution;
        (last.fleet_index, secs)
    }

    /// Wall-clock seconds one circuit execution takes per fleet device (0.0
    /// for devices outside the job's ladder) — the per-circuit cost vector
    /// feasibility projections price the job's placements with.
    pub(crate) fn seconds_per_execution_by_fleet(&self, n_devices: usize) -> Vec<f64> {
        let mut secs = vec![0.0; n_devices];
        for lane in &self.lanes {
            secs[lane.fleet_index] = lane.secs_per_execution;
        }
        secs
    }

    /// The optimizer state the job would resume from if its pending batch
    /// were granted and then recalled: the active phase's checkpoint, or a
    /// parameter-only snapshot around an entropy-gate probe (probes carry no
    /// phase state of their own).
    pub(crate) fn checkpoint(&self) -> PhaseCheckpoint {
        match &self.state {
            DriverState::Exploring { runner, .. } => runner.checkpoint(),
            DriverState::FineTuning {
                stage: Stage::Train(runner),
                ..
            } => runner.checkpoint(),
            DriverState::FineTuning {
                stage: Stage::Probe,
                pos,
                ..
            } => PhaseCheckpoint {
                params: self.reports[*pos].final_params.clone(),
                iteration: 0,
                executions: 0,
            },
            DriverState::Done => PhaseCheckpoint {
                params: Vec::new(),
                iteration: 0,
                executions: 0,
            },
        }
    }

    /// Fleet device the next batch needs, or `None` when the job is done.
    pub(crate) fn current_device(&self) -> Option<usize> {
        match &self.state {
            DriverState::Exploring { .. } => Some(self.lanes[0].fleet_index),
            DriverState::FineTuning { lane, .. } => Some(self.lanes[*lane].fleet_index),
            DriverState::Done => None,
        }
    }

    /// Restart index the pending batch belongs to (0 when the job is done).
    pub(crate) fn current_restart(&self) -> usize {
        match &self.state {
            DriverState::Exploring { restart, .. } => *restart,
            DriverState::FineTuning { pos, .. } => *pos,
            DriverState::Done => 0,
        }
    }

    /// Fleet device of each ladder rung, ascending fidelity (exploration
    /// rung first, final fine-tuning rung last).
    pub(crate) fn ladder_fleet_indices(&self) -> Vec<usize> {
        self.lanes.iter().map(|l| l.fleet_index).collect()
    }

    /// Decomposes a fresh driver into its ladder lanes (ladder order) and
    /// the rejected-device list, so the split driver can reuse the
    /// already-built evaluators as the primary shard of each tier instead
    /// of constructing them twice.
    pub(crate) fn into_shard_parts(self) -> (Vec<LadderLane>, Vec<RejectedDevice>) {
        let lanes = self
            .lanes
            .into_iter()
            .map(|l| LadderLane {
                fleet_index: l.fleet_index,
                device_name: l.lane.calibration.name().to_owned(),
                evaluator: l.lane.evaluator,
                p_correct: l.lane.p_correct,
                secs_per_execution: l.secs_per_execution,
            })
            .collect();
        (lanes, self.rejected)
    }

    /// Estimated device-seconds of the next batch (for fair-share scoring).
    pub(crate) fn estimated_next_seconds(&self) -> f64 {
        match &self.state {
            DriverState::Exploring { .. } => {
                EXECUTIONS_PER_BATCH_ESTIMATE * self.lanes[0].secs_per_execution
            }
            DriverState::FineTuning {
                lane,
                stage: Stage::Probe,
                ..
            } => self.lanes[*lane].secs_per_execution,
            DriverState::FineTuning {
                lane,
                stage: Stage::Train(_),
                ..
            } => EXECUTIONS_PER_BATCH_ESTIMATE * self.lanes[*lane].secs_per_execution,
            DriverState::Done => 0.0,
        }
    }

    /// Runs the pending batch and advances through any classical epilogue
    /// (phase completion, triage, lane transitions) to the next batch.
    ///
    /// # Panics
    ///
    /// Panics if the job is already done.
    pub(crate) fn execute_batch(&mut self) -> BatchResult {
        let state = std::mem::replace(&mut self.state, DriverState::Done);
        match state {
            DriverState::Done => panic!("job has no pending batch"),
            DriverState::Exploring {
                restart,
                mut runner,
            } => {
                let out = runner.step(self.lanes[0].lane.evaluator.as_mut());
                let mut pruned = None;
                if out.finished {
                    let device = self.lanes[0].lane.calibration.name().to_owned();
                    let (params, phase) = runner.finish(device);
                    let exploration_expectation =
                        phase.trace.final_expectation().unwrap_or(f64::INFINITY);
                    self.reports.push(RestartReport {
                        index: restart,
                        initial_params: self.initials[restart].clone(),
                        final_params: params,
                        phases: vec![phase],
                        survived: true,
                        exploration_expectation,
                        final_expectation: exploration_expectation,
                    });
                    if restart + 1 < self.initials.len() {
                        self.state = DriverState::Exploring {
                            restart: restart + 1,
                            runner: self.exploration_phase(restart + 1),
                        };
                    } else if self.multi_device {
                        pruned = Some(self.triage());
                        self.advance_finetune(1, None);
                    } else {
                        self.state = DriverState::Done;
                    }
                } else {
                    self.state = DriverState::Exploring { restart, runner };
                }
                self.batch_result(0, out.executions, pruned)
            }
            DriverState::FineTuning {
                lane,
                pos,
                stage: Stage::Probe,
            } => {
                // Entropy gate (Sec. IV-F): one probe evaluation at the
                // current iterate on the candidate rung; skip the rung if it
                // looks noisier than where the restart left off.
                let evaluator = self.lanes[lane].lane.evaluator.as_mut();
                let before = evaluator.executions();
                let probe = evaluator.evaluate(&self.reports[pos].final_params);
                let executions = evaluator.executions() - before;
                let prev_entropy = self.reports[pos]
                    .phases
                    .last()
                    .and_then(|p| p.trace.records.last())
                    .map(|r| r.entropy);
                let skip = matches!(prev_entropy, Some(prev)
                    if probe.entropy > prev + self.cfg.entropy_gate_slack);
                if skip {
                    self.advance_finetune(lane, Some(pos));
                } else {
                    let runner =
                        self.finetune_phase(lane, pos, self.reports[pos].final_params.clone());
                    self.state = DriverState::FineTuning {
                        lane,
                        pos,
                        stage: Stage::Train(Box::new(runner)),
                    };
                }
                self.batch_result(lane, executions, None)
            }
            DriverState::FineTuning {
                lane,
                pos,
                stage: Stage::Train(mut runner),
            } => {
                let out = runner.step(self.lanes[lane].lane.evaluator.as_mut());
                if out.finished {
                    let device = self.lanes[lane].lane.calibration.name().to_owned();
                    let (params, phase) = (*runner).finish(device);
                    let report = &mut self.reports[pos];
                    report.final_params = params;
                    if let Some(e) = phase.trace.final_expectation() {
                        report.final_expectation = e;
                    }
                    report.phases.push(phase);
                    self.advance_finetune(lane, Some(pos));
                } else {
                    self.state = DriverState::FineTuning {
                        lane,
                        pos,
                        stage: Stage::Train(runner),
                    };
                }
                self.batch_result(lane, out.executions, None)
            }
        }
    }

    /// Consumes the driver into the same report the closed-loop scheduler
    /// produces.
    pub(crate) fn into_report(self) -> QoncordReport {
        QoncordReport {
            restarts: self.reports,
            devices: self
                .lanes
                .iter()
                .map(|l| DeviceUsage {
                    device: l.lane.calibration.name().to_owned(),
                    p_correct: l.lane.p_correct,
                    executions: l.lane.evaluator.executions(),
                })
                .collect(),
            rejected: self.rejected,
            ground_energy: self.ground_energy,
        }
    }

    fn batch_result(
        &self,
        lane: usize,
        executions: u64,
        pruned: Option<Vec<usize>>,
    ) -> BatchResult {
        BatchResult {
            fleet_index: self.lanes[lane].fleet_index,
            duration: executions as f64 * self.lanes[lane].secs_per_execution,
            executions,
            pruned,
            finished: matches!(self.state, DriverState::Done),
        }
    }

    fn exploration_phase(&self, restart: usize) -> PhaseRunner {
        exploration_runner(
            &self.cfg,
            self.initials[restart].clone(),
            self.multi_device,
            restart,
        )
    }

    fn finetune_phase(&self, lane: usize, restart: usize, params: Vec<f64>) -> PhaseRunner {
        finetune_runner(&self.cfg, params, lane, self.lanes.len(), restart)
    }

    fn triage(&mut self) -> Vec<usize> {
        triage_reports(&mut self.reports, self.cfg.selection)
    }

    /// Moves the cursor to the next survivor on `lane` after `after` (or the
    /// first survivor when `after` is `None`), rolling over to the next lane
    /// and to `Done` past the last one.
    fn advance_finetune(&mut self, mut lane: usize, after: Option<usize>) {
        let mut from = after.map_or(0, |i| i + 1);
        loop {
            if lane >= self.lanes.len() {
                self.state = DriverState::Done;
                return;
            }
            if let Some(pos) = (from..self.reports.len()).find(|&i| self.reports[i].survived) {
                let is_final = lane == self.lanes.len() - 1;
                self.state = if self.cfg.entropy_gate && !is_final {
                    DriverState::FineTuning {
                        lane,
                        pos,
                        stage: Stage::Probe,
                    }
                } else {
                    let runner =
                        self.finetune_phase(lane, pos, self.reports[pos].final_params.clone());
                    DriverState::FineTuning {
                        lane,
                        pos,
                        stage: Stage::Train(Box::new(runner)),
                    }
                };
                return;
            }
            lane += 1;
            from = 0;
        }
    }
}

/// The exploration phase runner of `restart` — checker tier, budget, and
/// seeding in one place, shared by the unsplit driver and the split
/// driver's exploration shards so the two execution paths cannot drift
/// (the split==unsplit bit-identity contract rests on this).
pub(crate) fn exploration_runner(
    cfg: &QoncordConfig,
    initial: Vec<f64>,
    multi_device: bool,
    restart: usize,
) -> PhaseRunner {
    // Same tiering as the closed loop: single-device jobs get the strict
    // checker and the combined budget.
    let checker = if multi_device {
        cfg.relaxed
    } else {
        cfg.strict
    };
    let budget = if multi_device {
        cfg.exploration_max_iterations
    } else {
        cfg.exploration_max_iterations + cfg.finetune_max_iterations
    };
    PhaseRunner::new(
        initial,
        checker,
        budget,
        exploration_seed(cfg.seed, restart),
    )
}

/// The fine-tuning phase runner of `restart` on ladder rung `lane` of
/// `n_lanes` — shared by both drivers (see [`exploration_runner`]).
pub(crate) fn finetune_runner(
    cfg: &QoncordConfig,
    params: Vec<f64>,
    lane: usize,
    n_lanes: usize,
    restart: usize,
) -> PhaseRunner {
    let checker = if lane == n_lanes - 1 {
        cfg.strict
    } else {
        cfg.relaxed
    };
    PhaseRunner::new(
        params,
        checker,
        cfg.finetune_max_iterations,
        finetune_seed(cfg.seed, restart, lane),
    )
}

/// Restart triage at the exploration/fine-tuning boundary, shared by both
/// drivers: marks survivors per `selection` over the exploration
/// expectations and returns the pruned restart indices.
pub(crate) fn triage_reports(
    reports: &mut [RestartReport],
    selection: qoncord_core::SelectionPolicy,
) -> Vec<usize> {
    let intermediates: Vec<f64> = reports.iter().map(|r| r.exploration_expectation).collect();
    let keep = select_restarts(&intermediates, selection);
    let mut pruned = Vec::new();
    for (i, report) in reports.iter_mut().enumerate() {
        report.survived = keep.contains(&i);
        if !report.survived {
            pruned.push(i);
        }
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoncord_core::executor::QaoaFactory;
    use qoncord_core::scheduler::QoncordScheduler;
    use qoncord_device::catalog;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn factory() -> QaoaFactory {
        QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        }
    }

    fn small_config() -> QoncordConfig {
        QoncordConfig {
            exploration_max_iterations: 10,
            finetune_max_iterations: 12,
            seed: 23,
            ..QoncordConfig::default()
        }
    }

    fn selected() -> Vec<SelectedDevice> {
        vec![
            SelectedDevice {
                fleet_index: 4,
                calibration: catalog::ibmq_toronto(),
                speed: 1.0,
            },
            SelectedDevice {
                fleet_index: 9,
                calibration: catalog::ibmq_kolkata(),
                speed: 1.0,
            },
        ]
    }

    /// Drives the job to completion in one go and returns its report.
    fn drain(mut driver: JobDriver) -> QoncordReport {
        let mut batches = 0;
        while driver.current_device().is_some() {
            let result = driver.execute_batch();
            assert!(result.duration > 0.0);
            assert!(result.executions > 0);
            batches += 1;
            assert!(batches < 100_000, "runaway driver");
        }
        driver.into_report()
    }

    #[test]
    fn batchwise_execution_matches_closed_loop_scheduler() {
        let cfg = small_config();
        let devices = [catalog::ibmq_toronto(), catalog::ibmq_kolkata()];
        let closed = QoncordScheduler::new(cfg.clone())
            .run(&devices, &factory(), 5)
            .unwrap();

        let driver = JobDriver::new(cfg, 5, &factory(), &selected(), 1000).unwrap();
        assert!(driver.is_multi_device());
        let batched = drain(driver);

        assert_eq!(batched.restarts.len(), closed.restarts.len());
        for (a, b) in batched.restarts.iter().zip(&closed.restarts) {
            assert_eq!(a.survived, b.survived);
            assert_eq!(a.exploration_expectation, b.exploration_expectation);
            assert_eq!(a.final_expectation, b.final_expectation);
            assert_eq!(a.final_params, b.final_params);
        }
        assert_eq!(batched.best_expectation(), closed.best_expectation());
        assert_eq!(batched.total_executions(), closed.total_executions());
        for (a, b) in batched.devices.iter().zip(&closed.devices) {
            assert_eq!(a.device, b.device);
            assert_eq!(a.executions, b.executions);
        }
    }

    #[test]
    fn single_device_job_matches_closed_loop() {
        let cfg = small_config();
        let closed = QoncordScheduler::new(cfg.clone())
            .run(&[catalog::ibmq_kolkata()], &factory(), 3)
            .unwrap();
        let one = vec![SelectedDevice {
            fleet_index: 0,
            calibration: catalog::ibmq_kolkata(),
            speed: 1.0,
        }];
        let driver = JobDriver::new(cfg, 3, &factory(), &one, 1000).unwrap();
        assert!(!driver.is_multi_device());
        let batched = drain(driver);
        assert_eq!(batched.best_expectation(), closed.best_expectation());
        assert_eq!(batched.total_executions(), closed.total_executions());
    }

    #[test]
    fn triage_surfaces_pruned_restarts_once() {
        let cfg = QoncordConfig {
            selection: qoncord_core::SelectionPolicy::TopK(2),
            ..small_config()
        };
        let mut driver = JobDriver::new(cfg, 6, &factory(), &selected(), 1000).unwrap();
        let mut triages = 0;
        let mut pruned_total = 0;
        while driver.current_device().is_some() {
            if let Some(pruned) = driver.execute_batch().pruned {
                triages += 1;
                pruned_total = pruned.len();
            }
        }
        assert_eq!(triages, 1, "triage runs exactly once");
        assert_eq!(pruned_total, 4, "TopK(2) of 6 restarts prunes 4");
    }

    #[test]
    fn checkpoint_advances_with_batches() {
        let mut driver = JobDriver::new(small_config(), 2, &factory(), &selected(), 1000).unwrap();
        assert_eq!(driver.checkpoint().iteration, 0);
        driver.execute_batch();
        let ckpt = driver.checkpoint();
        assert_eq!(ckpt.iteration, 1);
        assert_eq!(ckpt.executions, SPSA_EXECUTIONS_PER_ITERATION);
        assert!(!ckpt.params.is_empty());
    }

    #[test]
    fn per_fleet_execution_times_follow_the_ladder() {
        let driver = JobDriver::new(small_config(), 2, &factory(), &selected(), 1000).unwrap();
        let secs = driver.seconds_per_execution_by_fleet(12);
        assert!(secs[4] > 0.0, "exploration device priced");
        assert!(secs[9] > 0.0, "fine-tune device priced");
        assert_eq!(secs.iter().filter(|&&s| s > 0.0).count(), 2);
    }

    #[test]
    fn all_devices_rejected_reports_reasons() {
        let cfg = QoncordConfig {
            min_fidelity: 0.999,
            ..small_config()
        };
        let err = match JobDriver::new(cfg, 2, &factory(), &selected(), 1000) {
            Err(rejected) => rejected,
            Ok(_) => panic!("expected every device to be rejected"),
        };
        assert_eq!(err.len(), 2);
    }

    #[test]
    fn speed_scales_batch_duration() {
        let cfg = small_config();
        let mut fast = selected();
        fast[0].speed = 2.0;
        let mut a = JobDriver::new(cfg.clone(), 2, &factory(), &selected(), 1000).unwrap();
        let mut b = JobDriver::new(cfg, 2, &factory(), &fast, 1000).unwrap();
        let da = a.execute_batch().duration;
        let db = b.execute_batch().duration;
        assert!((da / db - 2.0).abs() < 1e-9, "2x speed halves duration");
    }
}
