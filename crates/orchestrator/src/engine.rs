//! The multi-tenant orchestration engine: a discrete-event loop over a
//! virtual clock in which every optimizer batch of every tenant's real
//! training run is a device reservation on the shared fleet.
//!
//! Dispatch reuses the cloud layer directly: ladder selection per arriving
//! job goes through [`qoncord_cloud::policy::place_job`] over live
//! [`CloudDevice`] load views, and contention at each device is resolved by
//! a fleet-wide [`FairShareQueue`] (heavy tenants sink, light tenants
//! float; priorities enter as usage credit). When restart triage prunes a
//! restart mid-flight, its provisional fine-tuning reservation is released
//! for the other tenants.

use crate::driver::{JobDriver, SelectedDevice};
use crate::events::{Event, EventQueue};
use crate::fleet::FleetDevice;
use crate::job::TenantJob;
use crate::telemetry::{
    DeviceTelemetry, FleetTelemetry, JobRecord, JobStatus, JobTelemetry, OrchestratorReport,
};
use qoncord_cloud::device::CloudDevice;
use qoncord_cloud::fairshare::{FairShareQueue, FairShareWeights, QueuedRequest};
use qoncord_cloud::policy::{place_job, Policy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// Tuning of the orchestration engine.
#[derive(Debug, Clone, PartialEq)]
pub struct OrchestratorConfig {
    /// Ladder-selection policy per arriving job, evaluated over live device
    /// loads: [`Policy::Qoncord`] picks an LF exploration device and an HF
    /// fine-tuning device; [`Policy::BestFidelity`] is the HF-only
    /// baseline; the other policies place single-device ladders.
    pub policy: Policy,
    /// Fair-share weights of the dispatch queue.
    pub weights: FairShareWeights,
    /// Shots per circuit execution, used to price batch durations.
    pub shots: u64,
    /// Device-seconds of fair-share usage credit granted per priority
    /// level, so higher-priority jobs dequeue sooner.
    pub priority_credit: f64,
    /// Seed of the placement RNG (only randomized policies consume it).
    pub seed: u64,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            policy: Policy::Qoncord,
            weights: FairShareWeights::default(),
            shots: 1000,
            priority_credit: 50.0,
            seed: 0x09C0,
        }
    }
}

/// The multi-tenant orchestrator over a fixed fleet.
///
/// # Examples
///
/// ```
/// use qoncord_core::executor::QaoaFactory;
/// use qoncord_core::scheduler::QoncordConfig;
/// use qoncord_orchestrator::{
///     fleet::two_lf_one_hf_fleet, Orchestrator, OrchestratorConfig, TenantJob,
/// };
/// use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
///
/// let cfg = QoncordConfig {
///     exploration_max_iterations: 4,
///     finetune_max_iterations: 5,
///     ..QoncordConfig::default()
/// };
/// let jobs: Vec<TenantJob> = (0..2)
///     .map(|i| {
///         let factory = QaoaFactory {
///             problem: MaxCut::new(Graph::new(3, &[(0, 1, 1.0), (1, 2, 1.0)])),
///             layers: 1,
///         };
///         TenantJob::new(i, format!("tenant-{i}"), 0.0, Box::new(factory))
///             .with_restarts(1)
///             .with_config(cfg.clone())
///     })
///     .collect();
/// let orchestrator = Orchestrator::new(OrchestratorConfig::default(), two_lf_one_hf_fleet());
/// let report = orchestrator.run(&jobs);
/// assert_eq!(report.completed(), 2);
/// assert!(report.makespan() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Orchestrator {
    config: OrchestratorConfig,
    fleet: Vec<FleetDevice>,
}

impl Orchestrator {
    /// Creates an orchestrator over `fleet`.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is empty or device names collide (names key the
    /// ladder-to-fleet mapping).
    pub fn new(config: OrchestratorConfig, fleet: Vec<FleetDevice>) -> Self {
        assert!(!fleet.is_empty(), "fleet must not be empty");
        let mut names = HashSet::new();
        for device in &fleet {
            assert!(
                names.insert(device.name().to_owned()),
                "duplicate fleet device name {}",
                device.name()
            );
        }
        Orchestrator { config, fleet }
    }

    /// The active configuration.
    pub fn config(&self) -> &OrchestratorConfig {
        &self.config
    }

    /// The fleet.
    pub fn fleet(&self) -> &[FleetDevice] {
        &self.fleet
    }

    /// Runs `jobs` to completion on the virtual clock and returns the full
    /// report (jobs in submission order).
    pub fn run(&self, jobs: &[TenantJob]) -> OrchestratorReport {
        let mut sim = Sim::new(&self.config, &self.fleet, jobs);
        sim.run_loop();
        sim.into_report()
    }
}

/// An in-flight lease: the granted batch occupying a device.
struct Lease {
    job: usize,
    /// Virtual time the batch completes (its `BatchDone` event).
    end: f64,
    result: crate::driver::BatchResult,
}

/// Runtime state of one fleet device.
struct DeviceState {
    busy: Option<Lease>,
    /// Estimated seconds of queued-but-ungranted batch work (feeds the
    /// placement load view).
    pending_estimate: f64,
    busy_seconds: f64,
    executions: u64,
}

enum Reservation {
    /// A granted-on-pop batch request.
    Batch {
        job: usize,
        device: usize,
        seconds: f64,
    },
    /// A provisional hold for a restart's future fine-tuning block; never
    /// granted, released (or silently converted) at triage. The owning job
    /// and restart live in `Sim::holds`.
    Hold,
}

struct Sim<'a> {
    config: &'a OrchestratorConfig,
    fleet: &'a [FleetDevice],
    jobs: &'a [TenantJob],
    rng: StdRng,
    queue: FairShareQueue,
    devices: Vec<DeviceState>,
    events: EventQueue,
    drivers: Vec<Option<JobDriver>>,
    telemetry: Vec<JobTelemetry>,
    status: Vec<Option<JobStatus>>,
    /// Per job: restart index → (reservation id, fleet device, estimated
    /// seconds).
    holds: Vec<HashMap<usize, (usize, usize, f64)>>,
    reservations: HashMap<usize, Reservation>,
    next_reservation: usize,
    makespan: f64,
}

impl<'a> Sim<'a> {
    fn new(
        config: &'a OrchestratorConfig,
        fleet: &'a [FleetDevice],
        jobs: &'a [TenantJob],
    ) -> Self {
        let mut events = EventQueue::new();
        for (j, job) in jobs.iter().enumerate() {
            events.push(job.arrival, Event::Arrival(j));
        }
        Sim {
            config,
            fleet,
            jobs,
            rng: StdRng::seed_from_u64(config.seed),
            queue: FairShareQueue::with_weights(config.weights),
            devices: fleet
                .iter()
                .map(|_| DeviceState {
                    busy: None,
                    pending_estimate: 0.0,
                    busy_seconds: 0.0,
                    executions: 0,
                })
                .collect(),
            events,
            drivers: jobs.iter().map(|_| None).collect(),
            telemetry: jobs
                .iter()
                .map(|job| JobTelemetry::new(job.arrival, fleet.len()))
                .collect(),
            status: jobs.iter().map(|_| None).collect(),
            holds: jobs.iter().map(|_| HashMap::new()).collect(),
            reservations: HashMap::new(),
            next_reservation: 0,
            makespan: 0.0,
        }
    }

    fn run_loop(&mut self) {
        while let Some((t, event)) = self.events.pop() {
            match event {
                Event::Arrival(job) => self.admit(job, t),
                Event::BatchDone(device) => self.on_batch_done(device, t),
            }
        }
    }

    /// Live load views for the placement policy: one [`CloudDevice`] per
    /// fleet device whose schedule carries the device's estimated backlog
    /// (running lease + queued batch work).
    fn placement_views(&self, now: f64) -> Vec<CloudDevice> {
        self.fleet
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let mut view = CloudDevice::new(i, d.advertised_fidelity(), d.speed());
                let state = &self.devices[i];
                let backlog = state.pending_estimate
                    + state.busy.as_ref().map_or(0.0, |l| (l.end - now).max(0.0));
                if backlog > 0.0 {
                    view.schedule(now, backlog);
                }
                view
            })
            .collect()
    }

    fn admit(&mut self, job: usize, now: f64) {
        let spec = &self.jobs[job];
        let views = self.placement_views(now);
        // The policy only steers device choice here; circuit counts are an
        // a-priori estimate of the job's footprint.
        let circuit_estimate = (spec.n_restarts as f64
            * crate::driver::EXECUTIONS_PER_BATCH_ESTIMATE
            * (spec.config.exploration_max_iterations + spec.config.finetune_max_iterations) as f64)
            .round() as u64;
        let placements = place_job(
            self.config.policy,
            &views,
            circuit_estimate.max(1),
            true,
            now,
            &mut self.rng,
        );
        let mut selected: Vec<SelectedDevice> = Vec::new();
        for p in &placements {
            if !selected.iter().any(|s| s.fleet_index == p.device) {
                selected.push(SelectedDevice {
                    fleet_index: p.device,
                    calibration: self.fleet[p.device].calibration().clone(),
                    speed: self.fleet[p.device].speed(),
                });
            }
        }
        match JobDriver::new(
            spec.config.clone(),
            spec.n_restarts,
            spec.factory.as_ref(),
            &selected,
            self.config.shots,
        ) {
            Err(rejected) => {
                self.status[job] = Some(JobStatus::Rejected { rejected });
            }
            Ok(driver) => {
                if spec.priority > 0 {
                    // Priorities enter fair-share as usage credit scoped to
                    // the job's lifetime: granted on admission, charged back
                    // at completion so it cannot leak onto later jobs.
                    self.queue.record_usage(
                        &spec.tenant,
                        -(spec.priority as f64) * self.config.priority_credit,
                    );
                }
                if driver.is_multi_device() {
                    // Hold a provisional fine-tuning reservation per restart;
                    // triage converts survivors and releases the rest.
                    let (hold_device, hold_seconds) = driver.finetune_hold_estimate();
                    for restart in 0..spec.n_restarts {
                        let id = self.next_id();
                        self.reservations.insert(id, Reservation::Hold);
                        self.devices[hold_device].pending_estimate += hold_seconds;
                        self.queue.push(QueuedRequest {
                            id,
                            user: spec.tenant.clone(),
                            requested_seconds: hold_seconds,
                            submitted_at: now,
                        });
                        self.holds[job].insert(restart, (id, hold_device, hold_seconds));
                    }
                }
                self.drivers[job] = Some(driver);
                self.enqueue_next_batch(job, now);
            }
        }
    }

    fn next_id(&mut self) -> usize {
        let id = self.next_reservation;
        self.next_reservation += 1;
        id
    }

    /// Queues the job's next batch request and offers the target device a
    /// dispatch opportunity.
    fn enqueue_next_batch(&mut self, job: usize, now: f64) {
        let driver = self.drivers[job].as_ref().expect("active driver");
        let device = driver
            .current_device()
            .expect("finished jobs are finalized before re-enqueueing");
        let seconds = driver.estimated_next_seconds();
        let id = self.next_id();
        self.reservations.insert(
            id,
            Reservation::Batch {
                job,
                device,
                seconds,
            },
        );
        self.devices[device].pending_estimate += seconds;
        self.queue.push(QueuedRequest {
            id,
            user: self.jobs[job].tenant.clone(),
            requested_seconds: seconds,
            submitted_at: now,
        });
        self.try_dispatch(device, now);
    }

    /// Grants the device its fair-share-best queued batch, if it is idle.
    fn try_dispatch(&mut self, device: usize, now: f64) {
        if self.devices[device].busy.is_some() {
            return;
        }
        let reservations = &self.reservations;
        let Some(request) = self.queue.pop_where(|r| {
            matches!(reservations.get(&r.id),
                Some(Reservation::Batch { device: d, .. }) if *d == device)
        }) else {
            return;
        };
        let Some(Reservation::Batch { job, seconds, .. }) = self.reservations.remove(&request.id)
        else {
            unreachable!("predicate admits only batch reservations");
        };
        self.devices[device].pending_estimate =
            (self.devices[device].pending_estimate - seconds).max(0.0);
        if self.telemetry[job].first_start.is_none() {
            self.telemetry[job].first_start = Some(now);
        }
        // The batch's real compute runs now; only its virtual duration is
        // deferred to the completion event.
        let result = self.drivers[job]
            .as_mut()
            .expect("granted job is active")
            .execute_batch();
        debug_assert_eq!(result.fleet_index, device, "driver/queue device mismatch");
        let end = now + result.duration;
        self.events.push(end, Event::BatchDone(device));
        self.devices[device].busy = Some(Lease { job, end, result });
    }

    fn on_batch_done(&mut self, device: usize, now: f64) {
        let lease = self.devices[device]
            .busy
            .take()
            .expect("completion event for an idle device");
        let job = lease.job;
        let result = lease.result;
        self.makespan = self.makespan.max(now);
        self.devices[device].busy_seconds += result.duration;
        self.devices[device].executions += result.executions;
        let telemetry = &mut self.telemetry[job];
        telemetry.device_seconds[device] += result.duration;
        telemetry.executions += result.executions;
        telemetry.cost += result.duration * self.fleet[device].cost_per_second();
        self.queue
            .record_usage(&self.jobs[job].tenant, result.duration);

        if let Some(pruned) = &result.pruned {
            self.resolve_holds(job, pruned);
        }
        if result.finished {
            self.telemetry[job].completion = Some(now);
            let spec = &self.jobs[job];
            if spec.priority > 0 {
                // Expire the job-scoped priority credit granted at admission.
                self.queue.record_usage(
                    &spec.tenant,
                    spec.priority as f64 * self.config.priority_credit,
                );
            }
            let report = self.drivers[job]
                .take()
                .expect("finished job had a driver")
                .into_report();
            self.status[job] = Some(JobStatus::Completed { report });
        } else {
            self.enqueue_next_batch(job, now);
        }
        self.try_dispatch(device, now);
    }

    /// Resolves every provisional hold of `job` at triage: holds of pruned
    /// restarts are released back to the fleet (and counted); holds of
    /// survivors are converted into the real batch requests that follow.
    fn resolve_holds(&mut self, job: usize, pruned: &[usize]) {
        let pruned: HashSet<usize> = pruned.iter().copied().collect();
        let holds = std::mem::take(&mut self.holds[job]);
        for (restart, (id, device, seconds)) in holds {
            self.reservations.remove(&id);
            let cancelled = self.queue.cancel_where(|r| r.id == id);
            debug_assert_eq!(cancelled.len(), 1, "hold was queued exactly once");
            self.devices[device].pending_estimate =
                (self.devices[device].pending_estimate - seconds).max(0.0);
            if pruned.contains(&restart) {
                self.telemetry[job].released_reservations += 1;
                self.telemetry[job].released_seconds += seconds;
            }
        }
    }

    fn into_report(self) -> OrchestratorReport {
        let devices = self
            .fleet
            .iter()
            .zip(&self.devices)
            .map(|(spec, state)| DeviceTelemetry {
                name: spec.name().to_owned(),
                busy_seconds: state.busy_seconds,
                executions: state.executions,
            })
            .collect();
        let jobs = self
            .jobs
            .iter()
            .zip(self.status)
            .zip(self.telemetry)
            .map(|((spec, status), telemetry)| JobRecord {
                id: spec.id,
                tenant: spec.tenant.clone(),
                priority: spec.priority,
                status: status.expect("every job is admitted and resolved"),
                telemetry,
            })
            .collect();
        OrchestratorReport {
            jobs,
            fleet: FleetTelemetry {
                devices,
                makespan: self.makespan,
            },
        }
    }
}
