//! The multi-tenant orchestration engine: a discrete-event loop over a
//! virtual clock in which every optimizer batch of every tenant's real
//! training run is a preemptible device [`Lease`](crate::lease::Lease) on
//! the shared fleet.
//!
//! Dispatch reuses the cloud layer directly: ladder selection per arriving
//! job goes through [`qoncord_cloud::policy::place_job`] over live
//! [`CloudDevice`] load views, and contention at each device is resolved by
//! a fleet-wide [`FairShareQueue`] (heavy tenants sink, light tenants
//! float; priorities enter as usage credit). When restart triage prunes a
//! restart mid-flight, its provisional fine-tuning reservation is released
//! for the other tenants.
//!
//! # Leases and preemption
//!
//! A granted batch occupies its device as a [`Lease`](crate::lease::Lease):
//! the batch's *real*
//! compute is deferred to the lease's expiry, so until then the lease can be
//! **evicted** — the device is handed to a more urgent tenant immediately,
//! the recalled batch re-enters the fair-share queue with usage credit for
//! the occupancy the eviction burned, and the victim later resumes from the
//! [`PhaseRunner`](qoncord_core::phase::PhaseRunner) checkpoint the lease
//! recorded. Results are bit-identical to an uncontended run; only wasted
//! occupancy (telemetry: wasted-work seconds) is lost. Preemption is decided
//! by [`Urgency::may_preempt`] whenever a batch request queues behind a
//! running lease.
//!
//! # Admission control and calibration
//!
//! Jobs carrying a [`Deadline`](crate::admission::Deadline) are assessed on
//! arrival: [`estimate_feasibility`] projects their completion from the
//! current fleet load over the same placements the dispatch policy chose,
//! and the [`AdmissionController`] admits, downgrades to best-effort, or
//! rejects per [`AdmissionConfig`]. With
//! [`AdmissionConfig::decay_aware`], the projection instead models the
//! fair-share queue the way dispatch will run it
//! ([`estimate_feasibility_decayed`]): queued work the arrival outranks
//! does not delay it, and usage-decay epochs projected to pass before its
//! start re-rank the queue. Under
//! [`AdmissionMode::Calibrated`](crate::admission::AdmissionMode)
//! the engine also closes the estimate loop: every completion feeds its
//! realized-vs-projected error into a
//! [`MarginModel`], and the static safety
//! margin is replaced by the learned per-tier/per-class error quantile.
//!
//! # Splitting and fairness
//!
//! With [`SplitConfig::enabled`], a multi-device job is fanned
//! QuSplit-style into per-device shards (see [`crate::split`]); the engine
//! then keeps one batch request or lease in flight *per shard*, so a
//! single job occupies several same-tier devices concurrently. Two
//! fairness guards run underneath: every [`UsageDecayConfig`] epoch of
//! virtual time ages all tenants' fair-share balances (so past-heavy
//! tenants recover priority in the production dispatch path, not just in
//! the fig12 queue simulator), and
//! [`PreemptionConfig::eviction_cap`] grants a job eviction immunity once
//! it has been evicted that many times, bounding how hard a stream of
//! urgent arrivals can starve one victim.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionMode};
use crate::calibration::{CalibrationConfig, MarginKey, MarginModel, ServiceClass};
use crate::driver::{BatchResult, SelectedDevice};
use crate::events::{Event, EventQueue};
use crate::exec::ShardedExecutor;
use crate::fleet::FleetDevice;
use crate::job::TenantJob;
use crate::lease::{LeaseLedger, LeaseTerms, Urgency};
use crate::shard::ShardTask;
use crate::split::{self, JobRunner, SplitConfig};
use crate::telemetry::{
    DeviceTelemetry, FleetTelemetry, JobRecord, JobStatus, JobTelemetry, OrchestratorReport,
    TenantUsage,
};
use crate::trace::{TraceEvent, TraceHandle, Tracer};
use qoncord_cloud::device::CloudDevice;
use qoncord_cloud::fairshare::{FairShareQueue, FairShareWeights, QueuedRequest};
use qoncord_cloud::policy::{
    estimate_feasibility, estimate_feasibility_decayed, place_job, Placement, Policy, QueueModel,
};

use qoncord_core::phase::ShardCheckpoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// Default preemption budget: evictions a job absorbs before its remaining
/// leases gain eviction immunity.
pub const DEFAULT_EVICTION_CAP: u32 = 8;

/// Tuning of lease preemption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptionConfig {
    /// Whether urgent batch requests may evict running leases at all.
    /// Disabled, the engine only ever waits for a lease to expire — the
    /// pre-lease-manager behavior.
    pub enabled: bool,
    /// Extra seconds of headroom when judging deadline imminence: a job
    /// counts as imminent once `now + remaining service estimate + margin`
    /// reaches its deadline.
    pub imminence_margin: f64,
    /// Anti-starvation preemption budget: once a job has suffered this many
    /// lease evictions, its remaining leases gain eviction immunity, so a
    /// stream of urgent arrivals cannot re-evict the same victim without
    /// bound. `None` restores the unbounded pre-budget behavior.
    pub eviction_cap: Option<u32>,
}

impl Default for PreemptionConfig {
    fn default() -> Self {
        PreemptionConfig {
            enabled: false,
            imminence_margin: 0.0,
            eviction_cap: Some(DEFAULT_EVICTION_CAP),
        }
    }
}

impl PreemptionConfig {
    /// Preemption switched on with default margins and eviction budget.
    pub fn enabled() -> Self {
        PreemptionConfig {
            enabled: true,
            ..PreemptionConfig::default()
        }
    }
}

/// Virtual-time decay of fair-share usage: every
/// [`epoch_seconds`](qoncord_cloud::policy::UsageDecayModel::epoch_seconds)
/// of the virtual clock, every tenant's consumed-seconds balance is
/// multiplied by
/// [`factor`](qoncord_cloud::policy::UsageDecayModel::factor), so
/// past-heavy tenants recover dispatch priority instead of sinking
/// forever. Disabled by default (infinite epoch).
///
/// This is a re-export of the cloud layer's
/// [`UsageDecayModel`](qoncord_cloud::policy::UsageDecayModel) — the same
/// type the decay-aware feasibility projection consumes, so the
/// dispatcher that applies decay and the admission projection that
/// anticipates it can never drift apart.
pub use qoncord_cloud::policy::UsageDecayModel as UsageDecayConfig;

/// Tuning of the orchestration engine.
#[derive(Debug, Clone, PartialEq)]
pub struct OrchestratorConfig {
    /// Ladder-selection policy per arriving job, evaluated over live device
    /// loads: [`Policy::Qoncord`] picks an LF exploration device and an HF
    /// fine-tuning device; [`Policy::BestFidelity`] is the HF-only
    /// baseline; the other policies place single-device ladders.
    pub policy: Policy,
    /// Fair-share weights of the dispatch queue.
    pub weights: FairShareWeights,
    /// Shots per circuit execution, used to price batch durations.
    pub shots: u64,
    /// Device-seconds of fair-share usage credit granted per priority
    /// level, so higher-priority jobs dequeue sooner.
    pub priority_credit: f64,
    /// Lease-preemption tuning (disabled by default).
    pub preemption: PreemptionConfig,
    /// Deadline-aware admission control (admit-all by default).
    pub admission: AdmissionConfig,
    /// Margin-model tuning for [`AdmissionMode::Calibrated`] (quantile,
    /// window, warm-up threshold). Outcomes feed the model in every mode —
    /// the estimate-error telemetry is always recorded — but only the
    /// calibrated mode *applies* the learned margins.
    pub calibration: CalibrationConfig,
    /// QuSplit-style restart splitting (disabled by default).
    pub split: SplitConfig,
    /// Virtual-time fair-share usage decay (disabled by default).
    pub decay: UsageDecayConfig,
    /// Seed of the placement RNG (only randomized policies consume it).
    pub seed: u64,
    /// Device-group shards of the sharded executor: with `shards > 1` the
    /// fleet is partitioned into `shards` device groups (device index
    /// modulo `shards`) and the deferred batch compute of simultaneous
    /// lease completions is advanced in parallel, one worker thread per
    /// group, between virtual-time barriers. Every result stream — trace
    /// events, telemetry, calibration history, tenant usage — is
    /// byte-identical at any shard count; only wall-clock time changes.
    /// `1` (the default) keeps the engine single-threaded. The
    /// `QONCORD_SHARDS` environment variable, when set to a positive
    /// integer, overrides this field — that is how CI re-runs the whole
    /// suite multi-sharded without touching test code.
    pub shards: usize,
    /// Flight-recorder sink (detached by default): every engine decision is
    /// emitted as a [`TraceEvent`] to the attached
    /// [`TraceSink`](crate::trace::TraceSink). Detached or not, the engine
    /// aggregates the stream into
    /// [`OrchestratorReport::trace`](crate::telemetry::OrchestratorReport).
    pub trace: TraceHandle,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            policy: Policy::Qoncord,
            weights: FairShareWeights::default(),
            shots: 1000,
            priority_credit: 50.0,
            preemption: PreemptionConfig::default(),
            admission: AdmissionConfig::default(),
            calibration: CalibrationConfig::default(),
            split: SplitConfig::default(),
            decay: UsageDecayConfig::default(),
            seed: 0x09C0,
            shards: 1,
            trace: TraceHandle::default(),
        }
    }
}

/// The multi-tenant orchestrator over a fixed fleet.
///
/// # Examples
///
/// ```
/// use qoncord_core::executor::QaoaFactory;
/// use qoncord_core::scheduler::QoncordConfig;
/// use qoncord_orchestrator::{
///     fleet::two_lf_one_hf_fleet, Orchestrator, OrchestratorConfig, TenantJob,
/// };
/// use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
///
/// let cfg = QoncordConfig {
///     exploration_max_iterations: 4,
///     finetune_max_iterations: 5,
///     ..QoncordConfig::default()
/// };
/// let jobs: Vec<TenantJob> = (0..2)
///     .map(|i| {
///         let factory = QaoaFactory {
///             problem: MaxCut::new(Graph::new(3, &[(0, 1, 1.0), (1, 2, 1.0)])),
///             layers: 1,
///         };
///         TenantJob::new(i, format!("tenant-{i}"), 0.0, Box::new(factory))
///             .with_restarts(1)
///             .with_config(cfg.clone())
///     })
///     .collect();
/// let orchestrator = Orchestrator::new(OrchestratorConfig::default(), two_lf_one_hf_fleet());
/// let report = orchestrator.run(&jobs);
/// assert_eq!(report.completed(), 2);
/// assert!(report.makespan() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Orchestrator {
    config: OrchestratorConfig,
    fleet: Vec<FleetDevice>,
}

impl Orchestrator {
    /// Creates an orchestrator over `fleet`.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is empty, device names collide (names key the
    /// ladder-to-fleet mapping), or the decay configuration is invalid.
    pub fn new(config: OrchestratorConfig, fleet: Vec<FleetDevice>) -> Self {
        assert!(!fleet.is_empty(), "fleet must not be empty");
        assert!(
            config.decay.epoch_seconds > 0.0,
            "decay epoch must be positive"
        );
        assert!(
            config.decay.factor.is_finite() && (0.0..=1.0).contains(&config.decay.factor),
            "decay factor must lie in [0, 1]"
        );
        let mut names = HashSet::new();
        for device in &fleet {
            assert!(
                names.insert(device.name().to_owned()),
                "duplicate fleet device name {}",
                device.name()
            );
        }
        Orchestrator { config, fleet }
    }

    /// The active configuration.
    pub fn config(&self) -> &OrchestratorConfig {
        &self.config
    }

    /// The fleet.
    pub fn fleet(&self) -> &[FleetDevice] {
        &self.fleet
    }

    /// Runs `jobs` to completion on the virtual clock and returns the full
    /// report (jobs in submission order).
    ///
    /// With [`OrchestratorConfig::shards`] (or its `QONCORD_SHARDS`
    /// environment override) above one, simultaneous lease completions
    /// advance in parallel across device-group shards; the report is
    /// byte-identical to the single-shard run either way.
    pub fn run(&self, jobs: &[TenantJob]) -> OrchestratorReport {
        let mut exec = ShardedExecutor::new(ShardedExecutor::effective_shards(self.config.shards));
        let mut sim = Sim::new(&self.config, &self.fleet, jobs);
        sim.run_loop(&mut exec);
        sim.into_report()
    }
}

/// Runtime accounting of one fleet device. Queued-but-ungranted batch work
/// is no longer tracked here: the fair-share queue's incrementally
/// maintained [`FairShareQueue::device_backlog`] summary is the single
/// source of that estimate.
struct DeviceState {
    busy_seconds: f64,
    wasted_seconds: f64,
    evictions: u64,
    executions: u64,
}

enum Reservation {
    /// A granted-on-pop batch request of one job shard.
    Batch {
        job: usize,
        shard: usize,
        device: usize,
        seconds: f64,
        /// For a batch requeued by eviction: the evicted sub-lease's
        /// recorded checkpoint. The grant path verifies (in debug builds)
        /// that the shard resumes from exactly this state.
        resume: Option<ShardCheckpoint>,
    },
    /// A provisional hold for a restart's future fine-tuning block; never
    /// granted, released (or silently converted) at triage. The owning job
    /// and restart live in `Sim::holds`.
    Hold,
}

/// Determinism invariant (audited; keep it that way): the hash-keyed
/// collections below (`in_flight`, `holds`, `reservations`) are only ever
/// accessed by key or membership — never iterated in an order that can
/// reach events, telemetry sums, or trace output. The one iteration,
/// `resolve_holds`, sorts by restart index first. Anything order-sensitive
/// must either sort before iterating or use an ordered container; this is
/// also what makes shard-merge replay in `run_loop` byte-stable.
struct Sim<'a> {
    config: &'a OrchestratorConfig,
    fleet: &'a [FleetDevice],
    jobs: &'a [TenantJob],
    rng: StdRng,
    queue: FairShareQueue,
    devices: Vec<DeviceState>,
    leases: LeaseLedger,
    events: EventQueue,
    drivers: Vec<Option<JobRunner>>,
    /// Per job: shards with a queued batch request or active lease (a shard
    /// never has more than one pending batch in the system).
    in_flight: Vec<HashSet<usize>>,
    /// Decay epochs already applied to the fair-share balances.
    decay_epochs: u64,
    /// The closed calibration loop: realized-vs-projected completion errors
    /// per (tier, service class), and the learned margins they imply.
    margins: MarginModel,
    /// Per fleet device: its quality tier (rank of its advertised fidelity
    /// among the fleet's distinct values, 0 = lowest) — one axis of the
    /// calibration key.
    device_tier: Vec<usize>,
    /// Per job: the calibration key its admission used (None until
    /// admission, and for jobs rejected by the fidelity filter).
    margin_key: Vec<Option<MarginKey>>,
    telemetry: Vec<JobTelemetry>,
    status: Vec<Option<JobStatus>>,
    /// Per job: the priority it actually runs at (0 after a downgrade).
    effective_priority: Vec<u32>,
    /// Per job: the absolute deadline it carries post-admission.
    deadlines: Vec<Option<f64>>,
    /// Per job: the admission-time service estimate (for imminence checks).
    service_estimate: Vec<f64>,
    /// Per job: outstanding fair-share credit granted for evicted-lease
    /// occupancy, charged back at completion so it cannot outlive the job.
    /// Decayed in lockstep with the queue balances (see `apply_decay`).
    eviction_credit: Vec<f64>,
    /// Per job: the outstanding priority credit granted at admission, also
    /// decayed in lockstep — charging back the undecayed grant would turn
    /// the decayed portion into phantom consumption against the tenant.
    priority_credit: Vec<f64>,
    /// Per job: restart index → (reservation id, fleet device, estimated
    /// seconds).
    holds: Vec<HashMap<usize, (usize, usize, f64)>>,
    reservations: HashMap<usize, Reservation>,
    next_reservation: usize,
    makespan: f64,
    /// The flight recorder: stamps every decision with the virtual clock
    /// and a run-wide sequence number, aggregates metrics, and forwards to
    /// the configured sink.
    tracer: Tracer,
}

/// Ranks the fleet's devices into quality tiers: tier = rank of the
/// device's advertised fidelity among the fleet's distinct values (0 =
/// lowest). Twin devices share a tier, which is what lets their calibration
/// samples pool.
fn device_tiers(fleet: &[FleetDevice]) -> Vec<usize> {
    let mut distinct: Vec<f64> = fleet.iter().map(|d| d.advertised_fidelity()).collect();
    distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite fidelities"));
    distinct.dedup();
    fleet
        .iter()
        .map(|d| {
            distinct
                .iter()
                .position(|f| *f == d.advertised_fidelity())
                .expect("every fidelity is in the distinct list")
        })
        .collect()
}

impl<'a> Sim<'a> {
    fn new(
        config: &'a OrchestratorConfig,
        fleet: &'a [FleetDevice],
        jobs: &'a [TenantJob],
    ) -> Self {
        let mut events = EventQueue::new();
        for (j, job) in jobs.iter().enumerate() {
            events.push(job.arrival, Event::Arrival(j));
        }
        let device_tier = device_tiers(fleet);
        let mut tracer = Tracer::new(config.trace.clone());
        // Run preamble: the fleet's identity, so every trace consumer can
        // resolve device indices (and price device-seconds) from the
        // stream alone.
        for (i, device) in fleet.iter().enumerate() {
            tracer.emit(
                0.0,
                TraceEvent::DeviceDefined {
                    device: i,
                    name: device.name().to_owned(),
                    tier: device_tier[i],
                    speed: device.speed(),
                    cost_per_second: device.cost_per_second(),
                },
            );
        }
        Sim {
            config,
            fleet,
            jobs,
            rng: StdRng::seed_from_u64(config.seed),
            queue: FairShareQueue::with_weights(config.weights),
            devices: fleet
                .iter()
                .map(|_| DeviceState {
                    busy_seconds: 0.0,
                    wasted_seconds: 0.0,
                    evictions: 0,
                    executions: 0,
                })
                .collect(),
            leases: LeaseLedger::new(fleet.len()),
            events,
            drivers: jobs.iter().map(|_| None).collect(),
            in_flight: jobs.iter().map(|_| HashSet::new()).collect(),
            decay_epochs: 0,
            margins: MarginModel::new(config.admission.safety_margin, config.calibration),
            device_tier,
            margin_key: jobs.iter().map(|_| None).collect(),
            telemetry: jobs
                .iter()
                .map(|job| JobTelemetry::new(job.arrival, fleet.len()))
                .collect(),
            status: jobs.iter().map(|_| None).collect(),
            effective_priority: jobs.iter().map(|job| job.priority).collect(),
            deadlines: jobs.iter().map(|_| None).collect(),
            service_estimate: jobs.iter().map(|_| 0.0).collect(),
            eviction_credit: jobs.iter().map(|_| 0.0).collect(),
            priority_credit: jobs.iter().map(|_| 0.0).collect(),
            holds: jobs.iter().map(|_| HashMap::new()).collect(),
            reservations: HashMap::new(),
            next_reservation: 0,
            makespan: 0.0,
            tracer,
        }
    }

    /// The event loop, barrier by barrier: every iteration drains one
    /// virtual instant's events, hoists the hoist-safe deferred batch
    /// compute among them onto the sharded executor (stage A), then
    /// replays the whole batch sequentially in `(time, seq)` order with
    /// the precomputed results spliced in (stage B). Stage B is where all
    /// bookkeeping — queue, ledger, telemetry, trace — happens, on this
    /// thread, so the result streams cannot depend on the shard count.
    fn run_loop(&mut self, exec: &mut ShardedExecutor) {
        let _prof = qoncord_prof::span("engine::run");
        let mut batch = Vec::new();
        while let Some(t) = self.events.pop_batch(&mut batch) {
            // Decay is a function of the clock alone and idempotent within
            // one instant, so once per barrier equals once per event.
            self.apply_decay(t);
            let mut hoisted = self.hoist_batch(&batch, t, exec);
            for (pos, &event) in batch.iter().enumerate() {
                match event {
                    Event::Arrival(job) => self.admit(job, t),
                    Event::LeaseDone { device, lease } => {
                        self.on_lease_done(device, lease, t, hoisted[pos].take())
                    }
                }
            }
        }
    }

    /// Stage A of one barrier: runs the deferred batch compute of the
    /// batch's hoist-safe lease completions on the sharded executor,
    /// returning each event's precomputed [`BatchResult`] by batch
    /// position (`None` = not hoisted, stage B computes inline).
    ///
    /// An expiry is hoist-safe iff its lease is still the device's active
    /// lease *and* the job runs as [`JobRunner::Single`]. Why that is
    /// exactly the sequential result:
    ///
    /// - **Its own staleness cannot change inside the barrier.** A lease
    ///   completes only through its unique `LeaseDone` event, and
    ///   preemption never recalls a lease at its expiry boundary
    ///   (`try_preempt` refuses when no occupancy remains to save), so a
    ///   lease live at the barrier's start is live when its event replays
    ///   — and a stale one stays stale.
    /// - **No earlier batch event can touch a `Single` runner.** A
    ///   `Single` job keeps exactly one batch in the system — while this
    ///   lease is active it has no queued request to grant (no checkpoint
    ///   read) and no other expiry to execute, and triage hold releases
    ///   only follow its *own* `execute_batch`. So the runner's state when
    ///   its event replays equals its state at the barrier's start, and
    ///   the hoisted compute is bit-identical to the inline call.
    ///
    /// `Split` runners share optimizer state (triage barriers, merge
    /// reports) across their sub-leases, whose same-instant events *do*
    /// interleave with grants reading shard checkpoints — their compute
    /// stays inline in stage B, at its exact sequential position.
    fn hoist_batch(
        &mut self,
        batch: &[Event],
        now: f64,
        exec: &mut ShardedExecutor,
    ) -> Vec<Option<BatchResult>> {
        let mut results: Vec<Option<BatchResult>> = (0..batch.len()).map(|_| None).collect();
        if !exec.is_parallel() {
            return results;
        }
        let mut tasks = Vec::new();
        for (pos, &event) in batch.iter().enumerate() {
            let Event::LeaseDone { device, lease } = event else {
                continue;
            };
            let Some(active) = self.leases.active(device) else {
                continue;
            };
            if active.id != lease {
                continue; // stale expiry: stage B just records it
            }
            let (job, job_shard) = (active.job, active.shard());
            debug_assert!(active.remaining(now) <= 0.0, "expiry event at lease end");
            if !matches!(self.drivers[job], Some(JobRunner::Single(_))) {
                continue;
            }
            let runner = self.drivers[job].take().expect("matched above");
            tasks.push(ShardTask {
                pos,
                job,
                job_shard,
                device,
                runner,
            });
        }
        for done in exec.run_barrier(tasks) {
            self.drivers[done.job] = Some(done.runner);
            results[done.pos] = Some(done.result);
        }
        results
    }

    /// Applies every decay epoch the virtual clock has crossed since the
    /// last applied one (this is the production-dispatch hook `decay_usage`
    /// was missing: past-heavy tenants now recover priority as virtual time
    /// passes, not only inside the fig12 queue simulator).
    fn apply_decay(&mut self, now: f64) {
        if !self.config.decay.is_enabled() {
            return;
        }
        let due = (now / self.config.decay.epoch_seconds).floor() as u64;
        if due > self.decay_epochs {
            let crossed = (due - self.decay_epochs).min(i32::MAX as u64) as i32;
            let factor = self.config.decay.factor.powi(crossed);
            self.queue
                .decay_usage(factor)
                .expect("factor validated at construction");
            // Outstanding job-scoped credits live inside the decayed
            // balances; their charge-backs must shrink identically, or the
            // decayed portion would be charged back as usage the tenant
            // never consumed.
            for credit in self
                .eviction_credit
                .iter_mut()
                .chain(self.priority_credit.iter_mut())
            {
                *credit *= factor;
            }
            self.decay_epochs = due;
            self.tracer.emit(
                now,
                TraceEvent::DecayEpoch {
                    crossed: crossed as u64,
                    factor,
                },
            );
        }
    }

    /// Live load views for the placement policy: one [`CloudDevice`] per
    /// fleet device whose schedule carries the device's estimated backlog
    /// (running lease + queued batch work).
    fn placement_views(&self, now: f64) -> Vec<CloudDevice> {
        self.fleet
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let mut view = CloudDevice::new(i, d.advertised_fidelity(), d.speed());
                let backlog = self.queue.device_backlog(i)
                    + self.leases.active(i).map_or(0.0, |l| l.remaining(now));
                if backlog > 0.0 {
                    view.schedule(now, backlog);
                }
                view
            })
            .collect()
    }

    fn admit(&mut self, job: usize, now: f64) {
        let _prof = qoncord_prof::span("engine::admit");
        let spec = &self.jobs[job];
        self.tracer.emit(
            now,
            TraceEvent::Arrival {
                job,
                id: spec.id,
                tenant: spec.tenant.clone(),
                priority: spec.priority,
            },
        );
        let views = self.placement_views(now);
        // The policy only steers device choice here; circuit counts are an
        // a-priori estimate of the job's footprint.
        let circuit_estimate = spec.config.estimated_total_executions(spec.n_restarts);
        let placements = place_job(
            self.config.policy,
            &views,
            circuit_estimate.max(1),
            true,
            now,
            &mut self.rng,
        );
        let mut selected: Vec<SelectedDevice> = Vec::new();
        for p in &placements {
            if !selected.iter().any(|s| s.fleet_index == p.device) {
                selected.push(SelectedDevice {
                    fleet_index: p.device,
                    calibration: self.fleet[p.device].calibration().clone(),
                    speed: self.fleet[p.device].speed(),
                });
            }
        }
        let runner =
            match split::build_runner(spec, &selected, self.fleet, &views, self.config, now) {
                Err(rejected) => {
                    self.tracer.emit(
                        now,
                        TraceEvent::FilterRejected {
                            job,
                            devices: rejected.len(),
                        },
                    );
                    self.status[job] = Some(JobStatus::Rejected { rejected });
                    return;
                }
                Ok(runner) => runner,
            };
        self.telemetry[job].shards = runner.shard_count();
        self.tracer.emit(
            now,
            TraceEvent::ShardPlan {
                job,
                shards: runner.shard_count(),
                devices: runner.shard_devices(),
            },
        );

        // Deadline-aware admission: project the job's completion from the
        // fleet load its placements see, then let the controller decide.
        // Placements on devices the fidelity filter rejected from the
        // ladder carry no per-circuit price; their work actually lands on
        // the ladder's entry rung, so reprice them there rather than at
        // zero (which would let unkeepable SLAs through).
        let secs = runner.seconds_per_execution_by_fleet(self.fleet.len());
        let ladder_entry = runner
            .entry_device()
            .expect("a fresh runner has a pending batch");
        let priced: Vec<Placement> = placements
            .iter()
            .map(|p| {
                if secs[p.device] > 0.0 {
                    *p
                } else {
                    Placement {
                        device: ladder_entry,
                        ..*p
                    }
                }
            })
            .collect();
        let assess_prof = qoncord_prof::span("engine::assess");
        let estimate = if self.config.admission.decay_aware {
            self.estimate_decay_aware(job, &priced, &secs, ladder_entry, now)
        } else {
            estimate_feasibility(&priced, &views, &secs, now)
        };
        let key = MarginKey {
            tier: self.device_tier[ladder_entry],
            class: ServiceClass::of(spec.deadline),
        };
        self.margin_key[job] = Some(key);
        let margin = match self.config.admission.mode {
            AdmissionMode::Calibrated => self.margins.margin_for(key),
            _ => self.config.admission.safety_margin,
        };
        self.telemetry[job].admission_estimate = Some(estimate);
        self.telemetry[job].admission_margin = spec.deadline.is_some().then_some(margin);
        self.service_estimate[job] = estimate.service_seconds;
        let outcome = AdmissionController::new(self.config.admission).assess_with_margin(
            now,
            spec.deadline,
            estimate,
            margin,
        );
        drop(assess_prof);
        self.tracer.emit(
            now,
            TraceEvent::AdmissionVerdict {
                job,
                decision: outcome.decision,
                estimate,
                margin: spec.deadline.is_some().then_some(margin),
                deadline: outcome.deadline,
                assessed_deadline: outcome.assessed_deadline,
            },
        );
        match outcome.decision {
            AdmissionDecision::Reject => {
                let snapshot = *self.margins.record_denial(now, key);
                self.tracer
                    .emit(now, TraceEvent::CalibrationUpdate { job, snapshot });
                self.status[job] = Some(JobStatus::Denied {
                    estimate,
                    deadline: outcome
                        .assessed_deadline
                        .expect("only deadline jobs are denied"),
                });
                return;
            }
            AdmissionDecision::Downgrade => {
                self.effective_priority[job] = 0;
                self.telemetry[job].downgraded = true;
            }
            AdmissionDecision::Admit => {}
        }
        self.deadlines[job] = outcome.deadline;
        self.telemetry[job].deadline = outcome.deadline;

        let priority = self.effective_priority[job];
        if priority > 0 {
            // Priorities enter fair-share as usage credit scoped to the
            // job's lifetime: granted on admission, charged back at
            // completion so it cannot leak onto later jobs.
            let credit = priority as f64 * self.config.priority_credit;
            self.queue
                .credit_usage(&spec.tenant, credit)
                .expect("priority credit is finite and non-negative");
            self.priority_credit[job] = credit;
            self.tracer
                .emit(now, TraceEvent::PriorityCredit { job, credit });
        }
        if runner.is_multi_device() {
            // Hold a provisional fine-tuning reservation per restart,
            // dealt across the fine-tuning shards the way triage will deal
            // the survivors; triage converts survivors and releases the
            // rest.
            let targets = runner.finetune_hold_targets();
            for restart in 0..spec.n_restarts {
                let (hold_device, hold_seconds) = targets[restart % targets.len()];
                let id = self.next_id();
                self.reservations.insert(id, Reservation::Hold);
                self.queue
                    .push_hold(
                        QueuedRequest {
                            id,
                            user: spec.tenant.clone(),
                            requested_seconds: hold_seconds,
                            submitted_at: now,
                        },
                        hold_device,
                    )
                    .expect("reservation ids are unique and hold estimates finite");
                self.holds[job].insert(restart, (id, hold_device, hold_seconds));
                self.tracer.emit(
                    now,
                    TraceEvent::HoldPush {
                        reservation: id,
                        job,
                        restart,
                        device: hold_device,
                        seconds: hold_seconds,
                    },
                );
            }
        }
        self.drivers[job] = Some(runner);
        self.enqueue_ready_batches(job, now);
    }

    fn next_id(&mut self) -> usize {
        let id = self.next_reservation;
        self.next_reservation += 1;
        id
    }

    /// Decay-aware feasibility of an arriving job: committed lease backlog
    /// plus only the queued (ungranted) work the job is projected to rank
    /// *behind* under fair-share dispatch — with balances aged by the decay
    /// epochs projected to pass before its start — instead of every
    /// device's whole backlog.
    fn estimate_decay_aware(
        &self,
        job: usize,
        priced: &[Placement],
        secs: &[f64],
        ladder_entry: usize,
        now: f64,
    ) -> qoncord_cloud::policy::FeasibilityEstimate {
        let committed_views: Vec<CloudDevice> = self
            .fleet
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let mut view = CloudDevice::new(i, d.advertised_fidelity(), d.speed());
                let remaining = self.leases.active(i).map_or(0.0, |l| l.remaining(now));
                if remaining > 0.0 {
                    view.schedule(now, remaining);
                }
                view
            })
            .collect();
        let probe = QueuedRequest {
            id: usize::MAX,
            user: self.jobs[job].tenant.clone(),
            requested_seconds: crate::driver::EXECUTIONS_PER_BATCH_ESTIMATE * secs[ladder_entry],
            submitted_at: now,
        };
        // If the job is admitted, its priority enters fair-share as usage
        // credit *after* this estimate — rank the probe with that credit
        // already applied (virtually, via the probe-credit input: no queue
        // clone), or the projection would charge a priority job for queued
        // work its credited requests will in fact outrank. The queue's own
        // device tags supply the request-to-device mapping the old path
        // rebuilt from the reservation and hold tables per decision.
        let credit = self.jobs[job].priority as f64 * self.config.priority_credit;
        estimate_feasibility_decayed(
            priced,
            &committed_views,
            secs,
            now,
            QueueModel {
                queue: &self.queue,
                probe: &probe,
                probe_credit: credit,
                decay: self.config.decay,
            },
        )
    }

    /// Queues a batch request for every shard of `job` that has pending
    /// work and nothing in flight, offering each target device a dispatch
    /// opportunity — by eviction if the request is urgent enough. Unsplit
    /// jobs have one shard; split jobs enqueue one request per active
    /// shard, which is what turns one job into several concurrently
    /// schedulable sub-leases.
    fn enqueue_ready_batches(&mut self, job: usize, now: f64) {
        let ready: Vec<(usize, usize, f64)> = {
            let runner = self.drivers[job].as_ref().expect("active runner");
            runner
                .ready_shards()
                .into_iter()
                .filter(|shard| !self.in_flight[job].contains(shard))
                .map(|shard| {
                    (
                        shard,
                        runner.shard_device(shard),
                        runner.estimated_next_seconds(shard),
                    )
                })
                .collect()
        };
        for (shard, device, seconds) in ready {
            self.in_flight[job].insert(shard);
            let id = self.next_id();
            self.reservations.insert(
                id,
                Reservation::Batch {
                    job,
                    shard,
                    device,
                    seconds,
                    resume: None,
                },
            );
            self.queue
                .push_for_device(
                    QueuedRequest {
                        id,
                        user: self.jobs[job].tenant.clone(),
                        requested_seconds: seconds,
                        submitted_at: now,
                    },
                    device,
                )
                .expect("reservation ids are unique and batch estimates finite");
            self.tracer.emit(
                now,
                TraceEvent::QueuePush {
                    reservation: id,
                    job,
                    shard,
                    device,
                    seconds,
                    requeued: false,
                },
            );
            self.try_dispatch(device, now);
            if self.leases.active(device).is_some() {
                self.try_preempt(device, job, id, now);
            }
        }
    }

    /// Grants the device its best queued batch, if it is idle: the
    /// fair-share winner, unless preemption is enabled and a queued request
    /// outranks it per [`Urgency::may_preempt`] — granting the winner only
    /// for the urgent request to evict it in the same instant would be pure
    /// churn, and a queued urgent request must never wait out a lease it is
    /// entitled to evict.
    fn try_dispatch(&mut self, device: usize, now: f64) {
        let _prof = qoncord_prof::span("engine::dispatch");
        if self.leases.active(device).is_some() {
            return;
        }
        // Every request in the device's ready set is a batch reservation on
        // it (holds live in a separate lane), so the indexed device pop is
        // exactly the old filtered min-scan — as a heap peek.
        let Some(winner) = self.queue.pop_for_device(device) else {
            return;
        };
        let request = self.urgent_override(device, winner, now);
        self.grant(request, now);
    }

    /// The most urgent queued batch request for `device` that may preempt
    /// the fair-share `winner`, or the winner itself when none outranks it
    /// (earliest queue position wins among equally urgent challengers).
    fn urgent_override(&mut self, device: usize, winner: QueuedRequest, now: f64) -> QueuedRequest {
        if !self.config.preemption.enabled {
            return winner;
        }
        let Some(Reservation::Batch { job, .. }) = self.reservations.get(&winner.id) else {
            unreachable!("dispatched requests are batch reservations");
        };
        let winner_urgency = self.urgency(*job, now);
        let mut pick: Option<(usize, Urgency)> = None;
        for request in self.queue.pending_for_device(device) {
            let Some(Reservation::Batch { job, .. }) = self.reservations.get(&request.id) else {
                continue;
            };
            let urgency = self.urgency(*job, now);
            if !urgency.may_preempt(&winner_urgency) {
                continue;
            }
            if pick
                .as_ref()
                .is_none_or(|(_, best)| urgency.may_preempt(best))
            {
                pick = Some((request.id, urgency));
            }
        }
        let Some((id, _)) = pick else {
            return winner;
        };
        self.queue
            .push_for_device(winner, device)
            .expect("the popped winner re-enqueues cleanly");
        self.queue
            .pop_by_id(id)
            .expect("override candidate is queued")
    }

    /// Converts a popped batch request into a device lease. The batch's real
    /// compute is deferred to the lease's expiry, which is what makes the
    /// lease preemptible: until it expires, evicting it loses no training
    /// progress.
    fn grant(&mut self, request: QueuedRequest, now: f64) {
        let Some(Reservation::Batch {
            job,
            shard,
            device,
            seconds,
            resume,
        }) = self.reservations.remove(&request.id)
        else {
            unreachable!("granted requests are batch reservations");
        };
        let checkpoint = self.drivers[job]
            .as_ref()
            .expect("granted job is active")
            .shard_checkpoint(shard);
        if let Some(expected) = resume {
            // An evicted batch must resume from exactly the optimizer state
            // its recalled sub-lease recorded, on the same shard and
            // restart — the losslessness contract.
            debug_assert!(
                expected == checkpoint,
                "evicted shard resumed from a different state than its lease checkpoint"
            );
        }
        let lease = self.leases.grant(
            LeaseTerms {
                job,
                tenant: self.jobs[job].tenant.clone(),
                device,
                priority: self.effective_priority[job],
                deadline: self.deadlines[job],
                seconds,
                checkpoint,
            },
            now,
        );
        let (end, id) = (lease.expires_at, lease.id);
        self.tracer.emit(
            now,
            TraceEvent::LeaseGrant {
                lease: id,
                reservation: request.id,
                job,
                shard,
                device,
                seconds,
                expires_at: end,
            },
        );
        self.events
            .push(end, Event::LeaseDone { device, lease: id });
    }

    /// How pressing `job`'s claim on a device is right now.
    fn urgency(&self, job: usize, now: f64) -> Urgency {
        let deadline_imminent = match self.deadlines[job] {
            None => false,
            Some(deadline) => {
                let done: f64 = self.telemetry[job].device_seconds.iter().sum();
                let remaining = (self.service_estimate[job] - done).max(0.0);
                now + remaining + self.config.preemption.imminence_margin >= deadline
            }
        };
        Urgency {
            priority: self.effective_priority[job],
            deadline_imminent,
        }
    }

    /// Evicts the running lease on `device` for `challenger`'s queued batch
    /// request `reservation` if the challenger outranks the leaseholder —
    /// preemption overrides fair-share, so the challenger is granted the
    /// device directly.
    fn try_preempt(&mut self, device: usize, challenger: usize, reservation: usize, now: f64) {
        if !self.config.preemption.enabled {
            return;
        }
        let Some(holder) = self.leases.active(device) else {
            return;
        };
        // A lease at its expiry boundary is about to complete on its own;
        // recalling it would waste the whole batch for nothing.
        if holder.remaining(now) <= 0.0 {
            return;
        }
        let holder_job = holder.job;
        if !self
            .urgency(challenger, now)
            .may_preempt(&self.urgency(holder_job, now))
        {
            return;
        }
        // Anti-starvation preemption budget: a job that has already been
        // evicted `cap` times holds its remaining leases with immunity, so
        // a stream of urgent arrivals cannot re-evict it without bound.
        if let Some(cap) = self.config.preemption.eviction_cap {
            if self.telemetry[holder_job].evictions >= cap as usize {
                return;
            }
        }
        self.evict(device, now);
        let request = self
            .queue
            .pop_by_id(reservation)
            .expect("challenger's batch request is queued");
        self.grant(request, now);
    }

    /// Recalls the running lease on `device`: the burned occupancy is
    /// accounted as wasted work, and the victim's batch re-enters the
    /// fair-share queue with usage credit for it. The victim's driver was
    /// never advanced (compute is deferred), so it will resume from the
    /// lease's checkpoint bit-identically.
    fn evict(&mut self, device: usize, now: f64) {
        let evicted = self.leases.evict(device, now);
        let victim = evicted.lease.job;
        let shard = evicted.lease.shard();
        self.devices[device].wasted_seconds += evicted.burned_seconds;
        self.devices[device].evictions += 1;
        self.telemetry[victim].evictions += 1;
        self.telemetry[victim].wasted_seconds += evicted.burned_seconds;
        self.telemetry[victim].record_shard_waste(shard, evicted.burned_seconds);
        self.eviction_credit[victim] += evicted.burned_seconds;
        self.tracer.emit(
            now,
            TraceEvent::Eviction {
                lease: evicted.lease.id,
                job: victim,
                shard,
                device,
                burned_seconds: evicted.burned_seconds,
                credit: evicted.burned_seconds,
            },
        );
        let id = self.next_id();
        self.reservations.insert(
            id,
            Reservation::Batch {
                job: victim,
                shard,
                device,
                seconds: evicted.lease.seconds,
                resume: Some(evicted.lease.checkpoint),
            },
        );
        self.queue
            .requeue_with_credit_for_device(
                QueuedRequest {
                    id,
                    user: evicted.lease.tenant.clone(),
                    requested_seconds: evicted.lease.seconds,
                    submitted_at: now,
                },
                device,
                evicted.burned_seconds,
            )
            .expect("burned occupancy is finite and non-negative");
        self.tracer.emit(
            now,
            TraceEvent::QueuePush {
                reservation: id,
                job: victim,
                shard,
                device,
                seconds: evicted.lease.seconds,
                requeued: true,
            },
        );
    }

    /// Lease-completion bookkeeping. `hoisted` carries the batch's
    /// precomputed [`BatchResult`] when stage A already advanced the
    /// runner on a shard worker; `None` runs the compute inline here (the
    /// sequential path, and every non-hoist-safe case).
    fn on_lease_done(&mut self, device: usize, lease: u64, now: f64, hoisted: Option<BatchResult>) {
        let _prof = qoncord_prof::span("engine::lease_done");
        // Expiry of an evicted lease: the device moved on, nothing to do.
        let Some(lease) = self.leases.complete(device, lease) else {
            debug_assert!(
                hoisted.is_none(),
                "a lease live at its barrier's start cannot go stale within the barrier"
            );
            self.tracer
                .emit(now, TraceEvent::StaleExpiry { lease, device });
            return;
        };
        let job = lease.job;
        let shard = lease.shard();
        self.in_flight[job].remove(&shard);
        // The batch's real compute runs now, at its virtual completion —
        // either spliced in from the barrier's parallel stage or inline.
        let result = match hoisted {
            Some(result) => result,
            None => self.drivers[job]
                .as_mut()
                .expect("granted job is active")
                .execute_batch(shard),
        };
        debug_assert_eq!(result.fleet_index, device, "driver/queue device mismatch");
        debug_assert!(
            (result.duration - lease.seconds).abs() < 1e-9,
            "estimated and actual batch durations must agree"
        );
        self.makespan = self.makespan.max(now);
        self.tracer.emit(
            now,
            TraceEvent::LeaseComplete {
                lease: lease.id,
                job,
                shard,
                device,
                granted_at: lease.granted_at,
                seconds: result.duration,
                executions: result.executions,
                finished: result.finished,
            },
        );
        self.devices[device].busy_seconds += result.duration;
        self.devices[device].executions += result.executions;
        let telemetry = &mut self.telemetry[job];
        // Time-to-first-service: the grant that actually delivered compute,
        // not a grant preemption later revoked.
        if telemetry.first_start.is_none() {
            telemetry.first_start = Some(lease.granted_at);
        }
        telemetry.device_seconds[device] += result.duration;
        telemetry.executions += result.executions;
        telemetry.cost += result.duration * self.fleet[device].cost_per_second();
        self.queue
            .record_usage(&self.jobs[job].tenant, result.duration)
            .expect("batch durations are finite and non-negative");

        if let Some(pruned) = &result.pruned {
            self.resolve_holds(job, pruned, now);
        }
        if result.finished {
            debug_assert!(
                self.in_flight[job].is_empty(),
                "a finished job has no shard in flight"
            );
            self.telemetry[job].completion = Some(now);
            // Close the calibration loop: the realized completion against
            // the admission-time projection is one estimate-error sample
            // for the job's (tier, class) key — an SLA miss arrives here as
            // a large positive error.
            if let (Some(key), Some(estimate)) =
                (self.margin_key[job], self.telemetry[job].admission_estimate)
            {
                let snapshot = *self
                    .margins
                    .record_completion(now, key, estimate.completion, now);
                self.tracer
                    .emit(now, TraceEvent::CalibrationUpdate { job, snapshot });
                self.telemetry[job].estimate_error = Some(now - estimate.completion);
            }
            let spec = &self.jobs[job];
            if self.priority_credit[job] > 0.0 {
                // Expire the job-scoped priority credit granted at
                // admission — what remains of it after decay.
                self.queue
                    .record_usage(&spec.tenant, self.priority_credit[job])
                    .expect("priority credit is finite and non-negative");
                self.priority_credit[job] = 0.0;
            }
            if self.eviction_credit[job] > 0.0 {
                // Expire the eviction compensation the same way: it boosts
                // the victim while it is still being delayed, but must not
                // discount the tenant's later jobs.
                self.queue
                    .record_usage(&spec.tenant, self.eviction_credit[job])
                    .expect("burned seconds are finite and non-negative");
                self.eviction_credit[job] = 0.0;
            }
            let report = self.drivers[job]
                .take()
                .expect("finished job had a driver")
                .into_report();
            self.status[job] = Some(JobStatus::Completed { report });
            self.tracer.emit(now, TraceEvent::JobComplete { job });
        } else {
            self.enqueue_ready_batches(job, now);
        }
        self.try_dispatch(device, now);
    }

    /// Resolves every provisional hold of `job` at triage: holds of pruned
    /// restarts are released back to the fleet (and counted); holds of
    /// survivors are converted into the real batch requests that follow.
    /// Holds resolve in restart order — the hold map is unordered, and both
    /// the trace's determinism contract and the released-seconds sum need a
    /// canonical order.
    fn resolve_holds(&mut self, job: usize, pruned: &[usize], now: f64) {
        let pruned: HashSet<usize> = pruned.iter().copied().collect();
        let mut holds: Vec<(usize, (usize, usize, f64))> =
            std::mem::take(&mut self.holds[job]).into_iter().collect();
        holds.sort_by_key(|(restart, _)| *restart);
        for (restart, (id, device, seconds)) in holds {
            self.reservations.remove(&id);
            let cancelled = self.queue.cancel_by_id(id);
            debug_assert!(cancelled.is_some(), "hold was queued exactly once");
            let was_pruned = pruned.contains(&restart);
            self.tracer.emit(
                now,
                TraceEvent::HoldRelease {
                    reservation: id,
                    job,
                    restart,
                    device,
                    seconds,
                    pruned: was_pruned,
                },
            );
            if was_pruned {
                self.telemetry[job].released_reservations += 1;
                self.telemetry[job].released_seconds += seconds;
            }
        }
    }

    fn into_report(self) -> OrchestratorReport {
        let devices = self
            .fleet
            .iter()
            .zip(&self.devices)
            .map(|(spec, state)| DeviceTelemetry {
                name: spec.name().to_owned(),
                busy_seconds: state.busy_seconds,
                wasted_seconds: state.wasted_seconds,
                evictions: state.evictions,
                executions: state.executions,
            })
            .collect();
        let jobs = self
            .jobs
            .iter()
            .zip(self.status)
            .zip(self.telemetry)
            .map(|((spec, status), telemetry)| JobRecord {
                id: spec.id,
                tenant: spec.tenant.clone(),
                priority: spec.priority,
                status: status.expect("every job is admitted and resolved"),
                telemetry,
            })
            .collect();
        let mut tenant_usage: Vec<TenantUsage> = self
            .queue
            .balances()
            .map(|(tenant, usage)| TenantUsage {
                tenant: tenant.to_owned(),
                consumed_seconds: usage.consumed_seconds,
            })
            .collect();
        tenant_usage.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        OrchestratorReport {
            jobs,
            fleet: FleetTelemetry {
                devices,
                makespan: self.makespan,
            },
            tenant_usage,
            queue_ops: self.queue.stats(),
            calibration: self.margins.into_history(),
            trace: self.tracer.into_summary(),
            // Snapshot of whatever profiler the caller installed on this
            // thread; empty (and free) on unprofiled runs.
            perf: qoncord_prof::current_report(),
        }
    }
}
