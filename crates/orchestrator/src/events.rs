//! The virtual-clock event queue: a deterministic min-heap over (time,
//! insertion sequence) so simultaneous events replay in submission order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A discrete event of the orchestration loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// Job `.0` arrives.
    Arrival(usize),
    /// The lease `lease` on `device` expires (its batch completes). Stale
    /// when the lease was evicted in the meantime — the engine drops
    /// expiries whose lease id no longer matches the device's active lease.
    LeaseDone {
        /// Fleet device index.
        device: usize,
        /// Lease id the expiry belongs to.
        lease: u64,
    },
}

#[derive(Debug)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}

/// Min-queue of events in virtual time, FIFO on ties.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or not finite.
    pub(crate) fn push(&mut self, time: f64, event: Event) {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be a non-negative finite number"
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pops the earliest event (FIFO among simultaneous ones).
    pub(crate) fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Pops every event scheduled at the earliest pending instant — one
    /// virtual-time barrier — into `batch` in FIFO `seq` order, returning
    /// that instant. Events pushed while a barrier is being processed land
    /// in a later barrier even when they collapse onto the same timestamp:
    /// their `seq` is higher than everything drained here, so processing
    /// them in a follow-up barrier replays exactly the sequential order.
    pub(crate) fn pop_batch(&mut self, batch: &mut Vec<Event>) -> Option<f64> {
        batch.clear();
        let (time, first) = self.pop()?;
        batch.push(first);
        while let Some(entry) = self.heap.peek() {
            if entry.time != time {
                break;
            }
            batch.push(self.heap.pop().expect("peeked entry exists").event);
        }
        Some(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_fifo_on_ties() {
        let done = Event::LeaseDone {
            device: 2,
            lease: 9,
        };
        let mut q = EventQueue::new();
        q.push(5.0, Event::Arrival(0));
        q.push(1.0, done);
        q.push(5.0, Event::Arrival(1));
        assert_eq!(q.pop(), Some((1.0, done)));
        assert_eq!(q.pop(), Some((5.0, Event::Arrival(0))));
        assert_eq!(q.pop(), Some((5.0, Event::Arrival(1))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "event time")]
    fn infinite_time_rejected() {
        EventQueue::new().push(f64::INFINITY, Event::Arrival(0));
    }

    #[test]
    fn pop_batch_drains_one_instant_in_seq_order() {
        let done = |device| Event::LeaseDone { device, lease: 1 };
        let mut q = EventQueue::new();
        q.push(2.0, Event::Arrival(0));
        q.push(1.0, done(0));
        q.push(1.0, done(1));
        q.push(1.0, Event::Arrival(9));
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(1.0));
        assert_eq!(batch, vec![done(0), done(1), Event::Arrival(9)]);
        // A push at the drained instant lands in a *new* barrier.
        q.push(2.0, Event::Arrival(1));
        assert_eq!(q.pop_batch(&mut batch), Some(2.0));
        assert_eq!(batch, vec![Event::Arrival(0), Event::Arrival(1)]);
        assert_eq!(q.pop_batch(&mut batch), None);
        assert!(batch.is_empty());
    }
}
