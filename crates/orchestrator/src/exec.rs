//! The deterministic sharded executor: advances [`DeviceShard`]s in
//! parallel between virtual-time barriers.
//!
//! One barrier = every event at one instant of the virtual clock, in
//! `(time, seq)` order. The engine hoists the *deferred batch compute* of
//! the barrier's hoist-safe lease completions (see
//! `engine::hoist_batch` for the safety argument) into [`ShardTask`]s;
//! this executor routes each task to the [`DeviceShard`] owning its
//! device, drains every shard's inbox concurrently on a persistent worker
//! pool, and hands the completed tasks back sorted by the originating
//! event's batch position. The engine then replays the barrier's events
//! sequentially — all queue, ledger, telemetry, and trace bookkeeping
//! stays on the engine thread — splicing the precomputed results in where
//! the sequential engine would have computed them inline. Result streams
//! are therefore byte-identical at every shard count; only wall-clock
//! time changes.
//!
//! With a single shard (the default) no threads are ever spawned and
//! `run_barrier` degenerates to the inline sequential path.

use crate::shard::{CompletedTask, DeviceShard, ShardTask};
use crate::split::JobRunner;
use std::sync::mpsc;
use std::thread::JoinHandle;

// Compile-time proof that job runners may travel to shard workers; holds
// because every evaluator behind a runner is `CostEvaluator: Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<JobRunner>()
};

/// Environment variable overriding `OrchestratorConfig::shards`: CI runs
/// the full test suite a second time under `QONCORD_SHARDS=4` to enforce
/// determinism across worker counts continuously.
pub(crate) const SHARDS_ENV: &str = "QONCORD_SHARDS";

/// Executor over `n` device-group shards with a persistent worker pool
/// (spawned only when `n > 1`).
pub(crate) struct ShardedExecutor {
    shards: Vec<DeviceShard>,
    /// Per-shard task channels; dropping them shuts the pool down.
    workers: Vec<mpsc::Sender<Vec<ShardTask>>>,
    done_rx: Option<mpsc::Receiver<Vec<CompletedTask>>>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardedExecutor {
    /// Creates an executor over `shard_count.max(1)` device groups,
    /// spawning one worker thread per shard when there is more than one.
    pub(crate) fn new(shard_count: usize) -> Self {
        let n = shard_count.max(1);
        let shards = (0..n).map(|id| DeviceShard::new(id, n)).collect();
        let mut workers = Vec::new();
        let mut handles = Vec::new();
        let mut done_rx = None;
        if n > 1 {
            let (done_tx, rx) = mpsc::channel::<Vec<CompletedTask>>();
            done_rx = Some(rx);
            for id in 0..n {
                let (task_tx, task_rx) = mpsc::channel::<Vec<ShardTask>>();
                let done_tx = done_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("qoncord-shard-{id}"))
                    .spawn(move || {
                        while let Ok(inbox) = task_rx.recv() {
                            if done_tx.send(DeviceShard::run(inbox)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn shard worker");
                workers.push(task_tx);
                handles.push(handle);
            }
        }
        ShardedExecutor {
            shards,
            workers,
            done_rx,
            handles,
        }
    }

    /// The configured shard count (or, from the engine's view, the barrier
    /// override: resolves [`SHARDS_ENV`] over `configured`).
    pub(crate) fn effective_shards(configured: usize) -> usize {
        std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .unwrap_or(configured)
            .max(1)
    }

    /// Whether barriers actually fan out to worker threads.
    pub(crate) fn is_parallel(&self) -> bool {
        !self.handles.is_empty()
    }

    /// Runs one barrier's hoisted tasks — in parallel across the shards
    /// owning their devices where possible — and returns them merged back
    /// into the barrier's event order (ascending `pos`).
    ///
    /// Single-task barriers run inline: there is no parallelism to win,
    /// only channel latency to pay.
    pub(crate) fn run_barrier(&mut self, tasks: Vec<ShardTask>) -> Vec<CompletedTask> {
        if tasks.is_empty() {
            return Vec::new();
        }
        if !self.is_parallel() || tasks.len() < 2 {
            // `tasks` arrives in batch order, which `DeviceShard::run`
            // preserves — already merged.
            return DeviceShard::run(tasks);
        }
        let _prof = qoncord_prof::span("engine::barrier");
        let n = self.shards.len();
        for task in tasks {
            self.shards[task.device % n].push(task);
        }
        let mut outstanding = 0;
        for (id, shard) in self.shards.iter_mut().enumerate() {
            let inbox = shard.take_inbox();
            if inbox.is_empty() {
                continue;
            }
            self.workers[id].send(inbox).expect("shard worker alive");
            outstanding += 1;
        }
        let rx = self
            .done_rx
            .as_ref()
            .expect("parallel executor keeps a result channel");
        let mut done = Vec::new();
        for _ in 0..outstanding {
            done.extend(rx.recv().expect("shard worker alive"));
        }
        // The merge: shard completion order is nondeterministic, the
        // originating event order is not.
        done.sort_unstable_by_key(|t| t.pos);
        done
    }
}

impl Drop for ShardedExecutor {
    fn drop(&mut self) {
        // Closing the task channels ends every worker's recv loop.
        self.workers.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_spawns_no_workers() {
        let exec = ShardedExecutor::new(1);
        assert!(!exec.is_parallel());
        assert_eq!(exec.shards.len(), 1);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert!(!ShardedExecutor::new(0).is_parallel());
    }

    #[test]
    fn multi_shard_pool_starts_and_shuts_down() {
        let mut exec = ShardedExecutor::new(4);
        assert!(exec.is_parallel());
        assert!(exec.run_barrier(Vec::new()).is_empty());
        drop(exec); // must not hang: channels close, workers join
    }
}
