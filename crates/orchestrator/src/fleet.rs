//! The shared device fleet: real calibrations annotated with the
//! cloud-market metadata (speed, price, advertised fidelity tier) the
//! orchestrator's placement and cost accounting use.

use qoncord_device::calibration::Calibration;
use qoncord_device::catalog;
use std::fmt;

/// Why a [`FleetDevice`] builder rejected a parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetDeviceError {
    /// `speed` must be a positive finite number.
    NonPositiveSpeed(f64),
    /// `cost_per_second` must be a positive finite number.
    NonPositiveCost(f64),
    /// `advertised_fidelity` must lie in `(0, 1]`.
    FidelityOutOfRange(f64),
}

impl fmt::Display for FleetDeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetDeviceError::NonPositiveSpeed(v) => {
                write!(f, "speed must be a positive finite number, got {v}")
            }
            FleetDeviceError::NonPositiveCost(v) => {
                write!(
                    f,
                    "cost per second must be a positive finite number, got {v}"
                )
            }
            FleetDeviceError::FidelityOutOfRange(v) => {
                write!(f, "advertised fidelity must lie in (0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for FleetDeviceError {}

/// One device of the shared fleet.
///
/// Training runs against the real [`Calibration`]; the *advertised
/// fidelity* is the marketed quality tier the placement policy sees (the
/// analog of [`qoncord_cloud::device::CloudDevice`]'s fidelity axis), which
/// spreads real calibrations over the policy's LF/HF split.
///
/// # Examples
///
/// ```
/// use qoncord_device::catalog;
/// use qoncord_orchestrator::fleet::FleetDevice;
///
/// let device = FleetDevice::new(catalog::ibmq_toronto())
///     .with_speed(2.0)
///     .and_then(|d| d.with_cost_per_second(4.0))
///     .unwrap();
/// assert_eq!(device.name(), "ibmq_toronto");
/// assert_eq!(device.speed(), 2.0);
/// // Invalid market metadata is a typed error, not a silent clamp.
/// assert!(device.with_speed(0.0).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct FleetDevice {
    calibration: Calibration,
    speed: f64,
    cost_per_second: f64,
    advertised_fidelity: f64,
}

impl FleetDevice {
    /// Wraps a calibration with unit speed, unit cost, and an advertised
    /// fidelity derived from the two-qubit error rate.
    pub fn new(calibration: Calibration) -> Self {
        // 10× the two-qubit error is a crude depth-10 survival estimate; it
        // only needs to order devices the way the market tiers them.
        let advertised = (1.0 - 10.0 * calibration.error_2q()).clamp(0.05, 1.0);
        FleetDevice {
            calibration,
            speed: 1.0,
            cost_per_second: 1.0,
            advertised_fidelity: advertised,
        }
    }

    /// Sets the relative speed (1.0 = reference, larger = faster).
    ///
    /// # Errors
    ///
    /// Returns [`FleetDeviceError::NonPositiveSpeed`] when `speed` is zero,
    /// negative, or not finite.
    pub fn with_speed(mut self, speed: f64) -> Result<Self, FleetDeviceError> {
        if !(speed.is_finite() && speed > 0.0) {
            return Err(FleetDeviceError::NonPositiveSpeed(speed));
        }
        self.speed = speed;
        Ok(self)
    }

    /// Sets the lease price per device-second.
    ///
    /// # Errors
    ///
    /// Returns [`FleetDeviceError::NonPositiveCost`] when `cost` is zero,
    /// negative, or not finite (a free device would make every cost
    /// comparison in the placement policy degenerate).
    pub fn with_cost_per_second(mut self, cost: f64) -> Result<Self, FleetDeviceError> {
        if !(cost.is_finite() && cost > 0.0) {
            return Err(FleetDeviceError::NonPositiveCost(cost));
        }
        self.cost_per_second = cost;
        Ok(self)
    }

    /// Overrides the advertised fidelity tier.
    ///
    /// # Errors
    ///
    /// Returns [`FleetDeviceError::FidelityOutOfRange`] when the value lies
    /// outside `(0, 1]`.
    pub fn with_advertised_fidelity(mut self, fidelity: f64) -> Result<Self, FleetDeviceError> {
        if !(fidelity.is_finite() && fidelity > 0.0 && fidelity <= 1.0) {
            return Err(FleetDeviceError::FidelityOutOfRange(fidelity));
        }
        self.advertised_fidelity = fidelity;
        Ok(self)
    }

    /// The device calibration.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The device name.
    pub fn name(&self) -> &str {
        self.calibration.name()
    }

    /// Relative speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Lease price per device-second.
    pub fn cost_per_second(&self) -> f64 {
        self.cost_per_second
    }

    /// The marketed fidelity tier placement policies rank by.
    pub fn advertised_fidelity(&self) -> f64 {
        self.advertised_fidelity
    }
}

/// The reference fleet of the multi-tenant experiments: two low-fidelity
/// devices (ibmq_toronto twins) absorbing exploration traffic and one
/// high-fidelity device (ibmq_kolkata) priced 8× higher — mirroring the
/// paper's Table II price gap between quality tiers.
pub fn two_lf_one_hf_fleet() -> Vec<FleetDevice> {
    vec![
        FleetDevice::new(catalog::ibmq_toronto().renamed("lf_east")),
        FleetDevice::new(catalog::ibmq_toronto().renamed("lf_west")),
        FleetDevice::new(catalog::ibmq_kolkata().renamed("hf_core"))
            .with_cost_per_second(8.0)
            .expect("positive reference price"),
    ]
}

/// The split-experiment fleet: twin low-fidelity devices *and* twin
/// high-fidelity devices, so QuSplit-style restart splitting can fan both
/// the exploration tier and the fine-tuning tier. Twins share a
/// calibration model, which is what keeps split results bit-identical to
/// unsplit runs.
pub fn two_lf_two_hf_fleet() -> Vec<FleetDevice> {
    vec![
        FleetDevice::new(catalog::ibmq_toronto().renamed("lf_east")),
        FleetDevice::new(catalog::ibmq_toronto().renamed("lf_west")),
        FleetDevice::new(catalog::ibmq_kolkata().renamed("hf_north"))
            .with_cost_per_second(8.0)
            .expect("positive reference price"),
        FleetDevice::new(catalog::ibmq_kolkata().renamed("hf_south"))
            .with_cost_per_second(8.0)
            .expect("positive reference price"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertised_fidelity_orders_lf_below_hf() {
        let lf = FleetDevice::new(catalog::ibmq_toronto());
        let hf = FleetDevice::new(catalog::ibmq_kolkata());
        assert!(lf.advertised_fidelity() < hf.advertised_fidelity());
        assert!(lf.advertised_fidelity() > 0.0);
        assert!(hf.advertised_fidelity() <= 1.0);
    }

    #[test]
    fn reference_fleet_has_unique_names_and_pricier_hf() {
        let fleet = two_lf_one_hf_fleet();
        assert_eq!(fleet.len(), 3);
        let names: Vec<&str> = fleet.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["lf_east", "lf_west", "hf_core"]);
        assert!(fleet[2].cost_per_second() > fleet[0].cost_per_second());
    }

    #[test]
    fn invalid_builder_values_yield_typed_errors() {
        let device = || FleetDevice::new(catalog::ibmq_toronto());
        assert_eq!(
            device().with_speed(0.0).unwrap_err(),
            FleetDeviceError::NonPositiveSpeed(0.0)
        );
        assert!(matches!(
            device().with_speed(f64::NAN).unwrap_err(),
            FleetDeviceError::NonPositiveSpeed(v) if v.is_nan()
        ));
        assert_eq!(
            device().with_cost_per_second(-1.0).unwrap_err(),
            FleetDeviceError::NonPositiveCost(-1.0)
        );
        assert_eq!(
            device().with_cost_per_second(0.0).unwrap_err(),
            FleetDeviceError::NonPositiveCost(0.0),
            "free devices are rejected, not silently accepted"
        );
        assert_eq!(
            device().with_advertised_fidelity(1.5).unwrap_err(),
            FleetDeviceError::FidelityOutOfRange(1.5)
        );
        assert_eq!(
            device().with_advertised_fidelity(0.0).unwrap_err(),
            FleetDeviceError::FidelityOutOfRange(0.0)
        );
        let err = device().with_speed(-2.0).unwrap_err();
        assert!(err.to_string().contains("speed"), "display names the field");
    }

    #[test]
    fn split_fleet_tiers_come_in_identical_twins() {
        let fleet = two_lf_two_hf_fleet();
        assert_eq!(fleet.len(), 4);
        assert_eq!(
            fleet[0].advertised_fidelity(),
            fleet[1].advertised_fidelity(),
            "LF twins advertise the same tier"
        );
        assert_eq!(
            fleet[2].advertised_fidelity(),
            fleet[3].advertised_fidelity(),
            "HF twins advertise the same tier"
        );
        assert!(fleet[0].advertised_fidelity() < fleet[2].advertised_fidelity());
        let names: Vec<&str> = fleet.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["lf_east", "lf_west", "hf_north", "hf_south"]);
    }

    #[test]
    fn valid_builder_values_chain() {
        let device = FleetDevice::new(catalog::ibmq_toronto())
            .with_speed(2.0)
            .and_then(|d| d.with_cost_per_second(4.0))
            .and_then(|d| d.with_advertised_fidelity(0.75))
            .expect("all values valid");
        assert_eq!(device.speed(), 2.0);
        assert_eq!(device.cost_per_second(), 4.0);
        assert_eq!(device.advertised_fidelity(), 0.75);
    }
}
