//! Tenant job specifications: a real VQA workload plus the cloud-side
//! metadata (arrival time, priority, tenant identity) the orchestrator
//! schedules by.

use crate::admission::{Deadline, DeadlineClass};
use qoncord_core::executor::EvaluatorFactory;
use qoncord_core::scheduler::QoncordConfig;
use std::fmt;

/// One tenant's job: a multi-restart VQA task submitted to the shared
/// fleet at `arrival` (virtual seconds).
///
/// The training semantics — restart count, iteration budgets, triage
/// policy, seeds — are exactly those of
/// [`qoncord_core::scheduler::QoncordScheduler`]; given the same device
/// ladder the orchestrator reproduces the closed-loop scheduler's results
/// bit for bit, only the timing differs.
///
/// # Examples
///
/// ```
/// use qoncord_core::executor::QaoaFactory;
/// use qoncord_orchestrator::{DeadlineClass, TenantJob};
/// use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
///
/// let factory = QaoaFactory {
///     problem: MaxCut::new(Graph::paper_graph_7()),
///     layers: 1,
/// };
/// let job = TenantJob::new(7, "alice", 12.0, Box::new(factory))
///     .with_restarts(6)
///     .with_priority(2)
///     .with_deadline_class(DeadlineClass::Interactive);
/// assert_eq!(job.tenant, "alice");
/// assert_eq!(job.n_restarts, 6);
/// assert_eq!(job.priority, 2);
/// ```
pub struct TenantJob {
    /// Unique job id (also the index into the orchestrator's report).
    pub id: usize,
    /// Submitting tenant; fair-share usage accumulates per tenant.
    pub tenant: String,
    /// Submission time, virtual seconds.
    pub arrival: f64,
    /// Dispatch priority: 0 = normal; higher values are granted device
    /// leases sooner (folded into fair-share as usage credit).
    pub priority: u32,
    /// Service-level deadline, if any: an absolute virtual time or a class
    /// resolved against the job's projected service time at admission. The
    /// admission controller assesses it and preemption treats
    /// deadline-imminent jobs as urgent.
    pub deadline: Option<Deadline>,
    /// Number of random restarts.
    pub n_restarts: usize,
    /// Training configuration (budgets, convergence tiers, triage, seed).
    pub config: QoncordConfig,
    /// Builds the workload evaluator per fleet device.
    pub factory: Box<dyn EvaluatorFactory>,
}

impl TenantJob {
    /// Creates a job with default priority (0), 4 restarts, and the default
    /// [`QoncordConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `arrival` is negative or not finite.
    pub fn new(
        id: usize,
        tenant: impl Into<String>,
        arrival: f64,
        factory: Box<dyn EvaluatorFactory>,
    ) -> Self {
        assert!(
            arrival.is_finite() && arrival >= 0.0,
            "arrival must be a non-negative finite time"
        );
        TenantJob {
            id,
            tenant: tenant.into(),
            arrival,
            priority: 0,
            deadline: None,
            n_restarts: 4,
            config: QoncordConfig::default(),
            factory,
        }
    }

    /// Sets the dispatch priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an absolute deadline (virtual seconds).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is not finite or not after the arrival time.
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        assert!(
            deadline.is_finite() && deadline > self.arrival,
            "deadline must be a finite time after arrival"
        );
        self.deadline = Some(Deadline::At(deadline));
        self
    }

    /// Sets a deadline class, resolved against the job's projected service
    /// time when it is admitted.
    pub fn with_deadline_class(mut self, class: DeadlineClass) -> Self {
        self.deadline = Some(Deadline::Class(class));
        self
    }

    /// Sets the restart count.
    ///
    /// # Panics
    ///
    /// Panics if `n_restarts == 0`.
    pub fn with_restarts(mut self, n_restarts: usize) -> Self {
        assert!(n_restarts > 0, "need at least one restart");
        self.n_restarts = n_restarts;
        self
    }

    /// Sets the training configuration.
    pub fn with_config(mut self, config: QoncordConfig) -> Self {
        self.config = config;
        self
    }
}

impl fmt::Debug for TenantJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantJob")
            .field("id", &self.id)
            .field("tenant", &self.tenant)
            .field("arrival", &self.arrival)
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field("n_restarts", &self.n_restarts)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoncord_core::executor::QaoaFactory;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn factory() -> Box<dyn EvaluatorFactory> {
        Box::new(QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        })
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let job = TenantJob::new(3, "alice", 10.0, factory())
            .with_priority(2)
            .with_restarts(6);
        assert_eq!(job.id, 3);
        assert_eq!(job.tenant, "alice");
        assert_eq!(job.priority, 2);
        assert_eq!(job.n_restarts, 6);
        assert!(format!("{job:?}").contains("alice"));
    }

    #[test]
    fn deadline_builders() {
        let job = TenantJob::new(0, "a", 5.0, factory()).with_deadline(9.0);
        assert_eq!(job.deadline, Some(Deadline::At(9.0)));
        let job =
            TenantJob::new(1, "b", 0.0, factory()).with_deadline_class(DeadlineClass::Interactive);
        assert_eq!(
            job.deadline,
            Some(Deadline::Class(DeadlineClass::Interactive))
        );
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn deadline_before_arrival_rejected() {
        let _ = TenantJob::new(0, "a", 5.0, factory()).with_deadline(4.0);
    }

    #[test]
    #[should_panic(expected = "arrival")]
    fn negative_arrival_rejected() {
        let _ = TenantJob::new(0, "a", -1.0, factory());
    }

    #[test]
    #[should_panic(expected = "restart")]
    fn zero_restarts_rejected() {
        let _ = TenantJob::new(0, "a", 0.0, factory()).with_restarts(0);
    }
}
