//! Preemptible device (sub-)leases.
//!
//! Every granted batch of the orchestration engine is an explicit [`Lease`]:
//! who holds which device, at what priority, against which deadline, and —
//! because the batch's real compute is deferred to the lease's expiry — the
//! [`ShardCheckpoint`] of the holder's optimizer state at grant time. A job
//! split QuSplit-style holds several such leases concurrently (one per
//! shard), which is why the checkpoint also names the shard and restart the
//! lease serves. A
//! lease can therefore be *evicted* before it expires: the device is handed
//! to a more urgent tenant, the recalled batch re-enters the fair-share
//! queue carrying the lease's checkpoint, and when it is re-granted the
//! engine verifies (in debug builds) that the victim resumes from exactly
//! that state — bit-identically to a run that was never preempted. The only
//! cost of an eviction is the wasted occupancy between grant and recall,
//! which the [`LeaseLedger`] accounts as wasted-work seconds.
//!
//! Preemption eligibility is decided by [`Urgency::may_preempt`]: a
//! higher-priority challenger may evict a lower-priority holder, and a
//! deadline-imminent challenger may evict an equal-priority holder that is
//! not itself deadline-imminent.
//!
//! Every grant, expiry, and eviction in a lease's life is also emitted to
//! the flight recorder ([`crate::trace`]) as `LeaseGrant`, `LeaseComplete`,
//! `StaleExpiry`, and `Eviction` events, so a device's occupancy can be
//! replayed or rendered as a Perfetto timeline after the fact.

use qoncord_core::phase::ShardCheckpoint;

/// One granted device reservation: a batch occupying a fleet device between
/// [`granted_at`](Lease::granted_at) and [`expires_at`](Lease::expires_at),
/// preemptible until it expires.
///
/// # Examples
///
/// ```
/// use qoncord_core::phase::{PhaseCheckpoint, ShardCheckpoint};
/// use qoncord_orchestrator::lease::Lease;
///
/// let lease = Lease {
///     id: 7,
///     job: 2,
///     tenant: "alice".to_owned(),
///     device: 0,
///     priority: 1,
///     deadline: Some(40.0),
///     granted_at: 10.0,
///     expires_at: 16.0,
///     seconds: 6.0,
///     checkpoint: ShardCheckpoint {
///         shard: 1,
///         restart: 3,
///         phase: PhaseCheckpoint {
///             params: vec![0.4, 1.3],
///             iteration: 5,
///             executions: 15,
///         },
///     },
/// };
/// // Two seconds in, four seconds of the batch remain and two would be
/// // wasted if the lease were evicted now.
/// assert_eq!(lease.remaining(12.0), 4.0);
/// assert_eq!(lease.held(12.0), 2.0);
/// // The checkpoint records which shard/restart the sub-lease serves and
/// // where the holder's phase was at grant time.
/// assert_eq!(lease.shard(), 1);
/// assert_eq!(lease.checkpoint.phase.iteration, 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lease {
    /// Unique, monotonically increasing lease id (never reused, so a stale
    /// completion event for an evicted lease is detectable).
    pub id: u64,
    /// Index of the holding job.
    pub job: usize,
    /// Tenant of the holding job (fair-share identity).
    pub tenant: String,
    /// Fleet device the lease occupies.
    pub device: usize,
    /// Effective dispatch priority of the holder, as of the grant (a
    /// snapshot of the terms — live preemption decisions re-evaluate the
    /// holder's urgency at decision time).
    pub priority: u32,
    /// Absolute deadline of the holder at grant time, if it has an SLA.
    pub deadline: Option<f64>,
    /// Virtual time the lease was granted.
    pub granted_at: f64,
    /// Virtual time the granted batch completes if not evicted.
    pub expires_at: f64,
    /// Device-seconds the granted batch occupies.
    pub seconds: f64,
    /// The holder's optimizer state at grant time, tagged with the shard
    /// and restart this sub-lease serves — what the job resumes from if the
    /// lease is recalled.
    pub checkpoint: ShardCheckpoint,
}

impl Lease {
    /// Shard of the holding job this sub-lease serves (0 for unsplit jobs).
    pub fn shard(&self) -> usize {
        self.checkpoint.shard
    }

    /// Seconds of the granted batch still outstanding at `now`.
    pub fn remaining(&self, now: f64) -> f64 {
        (self.expires_at - now).max(0.0)
    }

    /// Seconds the lease has occupied the device by `now` — the work wasted
    /// if the lease is evicted at `now`.
    pub fn held(&self, now: f64) -> f64 {
        (now - self.granted_at).max(0.0)
    }
}

/// How pressing a job's claim on a device is, for preemption decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Urgency {
    /// Effective dispatch priority.
    pub priority: u32,
    /// Whether the job can no longer meet its deadline without immediate
    /// service (remaining service estimate leaves no slack).
    pub deadline_imminent: bool,
}

impl Urgency {
    /// Whether a challenger with this urgency may evict `holder`'s lease:
    /// strictly higher priority always may; a deadline-imminent challenger
    /// may also evict an equal-priority holder that is not itself imminent.
    pub fn may_preempt(&self, holder: &Urgency) -> bool {
        self.priority > holder.priority
            || (self.deadline_imminent
                && !holder.deadline_imminent
                && self.priority >= holder.priority)
    }
}

/// A lease recalled before its batch completed.
#[derive(Debug, Clone, PartialEq)]
pub struct EvictedLease {
    /// The recalled lease.
    pub lease: Lease,
    /// Device-seconds of occupancy the eviction wasted (grant → recall).
    pub burned_seconds: f64,
}

/// The terms of a lease grant (everything but the ledger-assigned id and
/// timing).
#[derive(Debug, Clone)]
pub struct LeaseTerms {
    /// Index of the job being granted.
    pub job: usize,
    /// Its tenant.
    pub tenant: String,
    /// Fleet device to occupy.
    pub device: usize,
    /// Effective dispatch priority.
    pub priority: u32,
    /// Absolute deadline, if the job has an SLA.
    pub deadline: Option<f64>,
    /// Device-seconds the batch needs.
    pub seconds: f64,
    /// The job's optimizer state at grant time, tagged with the shard and
    /// restart the sub-lease serves.
    pub checkpoint: ShardCheckpoint,
}

/// The book of record for device leases: one active lease per device, plus
/// grant/completion/eviction counters and wasted-work accounting.
#[derive(Debug, Clone, Default)]
pub struct LeaseLedger {
    active: Vec<Option<Lease>>,
    next_id: u64,
    granted: u64,
    completed: u64,
    evicted: u64,
    wasted_seconds: f64,
}

impl LeaseLedger {
    /// Creates a ledger over `n_devices` devices, all idle.
    pub fn new(n_devices: usize) -> Self {
        LeaseLedger {
            active: vec![None; n_devices],
            ..LeaseLedger::default()
        }
    }

    /// The active lease on `device`, if any.
    pub fn active(&self, device: usize) -> Option<&Lease> {
        self.active[device].as_ref()
    }

    /// Grants a lease on `terms` at `now`, expiring after the batch's
    /// duration. Returns the recorded lease.
    ///
    /// # Panics
    ///
    /// Panics if the device already has an active lease or the duration is
    /// not a positive finite number.
    pub fn grant(&mut self, terms: LeaseTerms, now: f64) -> &Lease {
        assert!(
            terms.seconds.is_finite() && terms.seconds > 0.0,
            "lease duration must be a positive finite number"
        );
        assert!(
            self.active[terms.device].is_none(),
            "device {} already leased",
            terms.device
        );
        let id = self.next_id;
        self.next_id += 1;
        self.granted += 1;
        let lease = Lease {
            id,
            job: terms.job,
            tenant: terms.tenant,
            device: terms.device,
            priority: terms.priority,
            deadline: terms.deadline,
            granted_at: now,
            expires_at: now + terms.seconds,
            seconds: terms.seconds,
            checkpoint: terms.checkpoint,
        };
        self.active[terms.device] = Some(lease);
        self.active[terms.device].as_ref().expect("just granted")
    }

    /// Completes the lease `id` on `device`, returning it — or `None` when
    /// the lease was evicted in the meantime (a stale completion event),
    /// leaving the device's current state untouched.
    pub fn complete(&mut self, device: usize, id: u64) -> Option<Lease> {
        if self.active[device].as_ref().is_some_and(|l| l.id == id) {
            self.completed += 1;
            self.active[device].take()
        } else {
            None
        }
    }

    /// Evicts the active lease on `device` at `now`, accounting the
    /// occupancy since its grant as wasted work.
    ///
    /// # Panics
    ///
    /// Panics if the device is idle.
    pub fn evict(&mut self, device: usize, now: f64) -> EvictedLease {
        let lease = self.active[device].take().expect("evicting an idle device");
        let burned_seconds = lease.held(now);
        self.evicted += 1;
        self.wasted_seconds += burned_seconds;
        EvictedLease {
            lease,
            burned_seconds,
        }
    }

    /// Leases granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Leases that ran to completion.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Leases recalled by preemption.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total device-seconds of occupancy evictions wasted.
    pub fn wasted_seconds(&self) -> f64 {
        self.wasted_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(job: usize, device: usize, priority: u32, seconds: f64) -> LeaseTerms {
        LeaseTerms {
            job,
            tenant: format!("tenant-{job}"),
            device,
            priority,
            deadline: None,
            seconds,
            checkpoint: ShardCheckpoint {
                shard: 0,
                restart: 0,
                phase: qoncord_core::phase::PhaseCheckpoint {
                    params: vec![0.1],
                    iteration: 0,
                    executions: 0,
                },
            },
        }
    }

    #[test]
    fn grant_complete_round_trip() {
        let mut ledger = LeaseLedger::new(2);
        let id = ledger.grant(terms(0, 1, 0, 5.0), 10.0).id;
        assert!(ledger.active(0).is_none());
        assert_eq!(ledger.active(1).unwrap().expires_at, 15.0);
        let done = ledger.complete(1, id).expect("live lease completes");
        assert_eq!(done.job, 0);
        assert!(ledger.active(1).is_none());
        assert_eq!(
            (ledger.granted(), ledger.completed(), ledger.evicted()),
            (1, 1, 0)
        );
    }

    #[test]
    fn eviction_burns_held_time_and_staleness_is_detected() {
        let mut ledger = LeaseLedger::new(1);
        let id = ledger.grant(terms(3, 0, 0, 10.0), 100.0).id;
        let evicted = ledger.evict(0, 104.0);
        assert_eq!(evicted.lease.id, id);
        assert_eq!(evicted.burned_seconds, 4.0);
        assert_eq!(ledger.wasted_seconds(), 4.0);
        // The stale completion event for the evicted lease is a no-op...
        assert_eq!(ledger.complete(0, id), None);
        // ...even when another lease has since taken the device.
        let id2 = ledger.grant(terms(4, 0, 2, 3.0), 104.0).id;
        assert_eq!(ledger.complete(0, id), None);
        assert!(ledger.complete(0, id2).is_some());
        assert_eq!(ledger.evicted(), 1);
    }

    #[test]
    #[should_panic(expected = "already leased")]
    fn double_grant_rejected() {
        let mut ledger = LeaseLedger::new(1);
        ledger.grant(terms(0, 0, 0, 1.0), 0.0);
        ledger.grant(terms(1, 0, 0, 1.0), 0.5);
    }

    #[test]
    fn urgency_rules() {
        let normal = Urgency {
            priority: 0,
            deadline_imminent: false,
        };
        let high = Urgency {
            priority: 2,
            deadline_imminent: false,
        };
        let imminent = Urgency {
            priority: 0,
            deadline_imminent: true,
        };
        assert!(high.may_preempt(&normal));
        assert!(!normal.may_preempt(&high));
        assert!(!normal.may_preempt(&normal), "equal urgency never preempts");
        assert!(
            imminent.may_preempt(&normal),
            "deadline pressure breaks ties"
        );
        assert!(!imminent.may_preempt(&imminent), "both imminent: no churn");
        assert!(
            !imminent.may_preempt(&high),
            "imminence cannot jump priority"
        );
        assert!(high.may_preempt(&imminent), "priority still dominates");
    }
}
