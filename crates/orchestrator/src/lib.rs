//! # qoncord-orchestrator
//!
//! Multi-tenant job orchestration for the Qoncord reproduction: a stream of
//! *real* VQA jobs — QAOA/VQE training runs with restarts, triage, and
//! progressive fine-tuning from `qoncord-core` — executed concurrently
//! against a shared device fleet on a discrete-event virtual clock.
//!
//! This crate bridges the repo's two previously separate layers:
//!
//! - `qoncord-core` trains one job at a time against private device lanes;
//! - `qoncord-cloud` simulates queues over abstract job durations.
//!
//! Here every optimizer batch of every tenant becomes a preemptible device
//! lease, so low-fidelity exploration, cluster triage, and high-fidelity
//! fine-tuning from different tenants interleave on real shared hardware
//! models. The pieces:
//!
//! - [`job`] — tenant job specs (arrival, priority, deadline, restarts,
//!   workload).
//! - [`fleet`] — the shared fleet: calibrations + market metadata.
//! - [`lease`] — explicit device leases: priority, deadline, checkpointed
//!   optimizer state, and the eviction/wasted-work ledger behind
//!   preemption.
//! - [`admission`] — deadline-aware admission control: feasibility
//!   projections from fleet load decide whether a job's SLA is keepable,
//!   downgrading or rejecting it otherwise. Projections can be
//!   *decay-aware*: queue position is modeled the way fair-share dispatch
//!   under virtual-time usage decay will actually order it.
//! - [`calibration`] — the closed loop behind
//!   [`AdmissionMode::Calibrated`](admission::AdmissionMode):
//!   realized-vs-projected completion errors per device tier and service
//!   class, distilled into sliding-window quantile margins that replace
//!   the static safety margin.
//! - [`engine`] — the event loop: fair-share lease dispatch (reusing
//!   [`qoncord_cloud::fairshare`]), ladder selection per arrival (reusing
//!   [`qoncord_cloud::policy::place_job`]), urgency-based lease preemption
//!   bounded by an anti-starvation eviction budget, virtual-time usage
//!   decay, and pruning-aware cancellation of reservations when restart
//!   triage kills work mid-flight. With
//!   [`OrchestratorConfig::shards`](engine::OrchestratorConfig::shards)
//!   above one (or the `QONCORD_SHARDS` env override), each virtual-time
//!   barrier's batch compute runs on per-device-group worker threads with
//!   results bit-identical to the sequential engine.
//! - [`split`] — QuSplit-style restart splitting: one job's restarts
//!   fanned across same-tier devices as concurrent sub-leases (fan-out
//!   width chosen from live load), with merges bit-identical to the
//!   unsplit run on twin devices.
//! - [`replay`] — adapts [`qoncord_cloud::workload`] arrival traces into
//!   tenant jobs so the paper's pseudo-workload drives the orchestrator.
//! - [`telemetry`] — per-job wait/makespan/device-seconds/cost, eviction
//!   and wasted-work accounting, per-tenant SLA attainment, and fleet
//!   utilization.
//! - [`trace`] — the flight recorder: every engine decision as a typed
//!   [`TraceEvent`] through pluggable sinks, with
//!   latency histograms on the report, a Perfetto/Chrome timeline
//!   exporter, and a replayer that rebuilds the report's telemetry from
//!   the event stream alone.
//!
//! Per-job numeric results are **identical** to the closed-loop
//! [`qoncord_core::scheduler::QoncordScheduler`] given the same ladder and
//! seeds — multi-tenancy *and preemption* change only the timing, which is
//! the point: the fleet makespan of N concurrent jobs is strictly below the
//! sum of their solo makespans, and an evicted job resumes from its
//! checkpoint bit-identically.
//!
//! ## Example
//!
//! Run one deadline-carrying job under calibrated admission control:
//!
//! ```
//! use qoncord_core::executor::QaoaFactory;
//! use qoncord_core::scheduler::QoncordConfig;
//! use qoncord_orchestrator::{
//!     two_lf_one_hf_fleet, AdmissionConfig, Orchestrator, OrchestratorConfig, TenantJob,
//! };
//! use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
//!
//! let factory = QaoaFactory {
//!     problem: MaxCut::new(Graph::paper_graph_7()),
//!     layers: 1,
//! };
//! let job = TenantJob::new(0, "alice", 0.0, Box::new(factory))
//!     .with_config(QoncordConfig {
//!         exploration_max_iterations: 4,
//!         finetune_max_iterations: 5,
//!         ..QoncordConfig::default()
//!     })
//!     .with_restarts(2)
//!     .with_deadline(1e6);
//! let orchestrator = Orchestrator::new(
//!     OrchestratorConfig {
//!         admission: AdmissionConfig::calibrated(),
//!         ..OrchestratorConfig::default()
//!     },
//!     two_lf_one_hf_fleet(),
//! );
//! let report = orchestrator.run(&[job]);
//! assert_eq!(report.completed(), 1);
//! assert_eq!(report.sla_attainment(), Some(1.0));
//! // The realized outcome fed the margin model: the learning history is
//! // visible in telemetry.
//! assert!(!report.calibration.is_empty());
//! ```

#![warn(missing_docs)]

mod driver;
mod events;
mod exec;
mod shard;

pub mod admission;
pub mod calibration;
pub mod engine;
pub mod fleet;
pub mod job;
pub mod lease;
pub mod replay;
pub mod split;
pub mod telemetry;
pub mod trace;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionMode, AdmissionOutcome,
    Deadline, DeadlineClass,
};
pub use calibration::{CalibrationConfig, MarginKey, MarginModel, MarginSnapshot, ServiceClass};
pub use engine::{Orchestrator, OrchestratorConfig, PreemptionConfig, UsageDecayConfig};
pub use fleet::{two_lf_one_hf_fleet, two_lf_two_hf_fleet, FleetDevice, FleetDeviceError};
pub use job::TenantJob;
pub use lease::{EvictedLease, Lease, LeaseLedger, LeaseTerms, Urgency};
pub use replay::{replay_workload, ReplayConfig};
pub use split::SplitConfig;
pub use telemetry::{
    DeviceTelemetry, FleetTelemetry, JobRecord, JobStatus, JobTelemetry, OrchestratorReport,
    TenantSla, TenantUsage,
};
pub use trace::{
    chrome_export, chrome_export_with_profile, validate_chrome_trace, JsonlSink, LogHistogram,
    MemorySink, MetricsSink, NoopSink, RingBufferSink, TraceEvent, TraceHandle, TraceRecord,
    TraceSink, TraceSummary, CHROME_FLEET_PID, CHROME_JOBS_PID, CHROME_PROF_PID,
};

#[cfg(test)]
mod tests {
    use super::*;
    use qoncord_cloud::policy::Policy;
    use qoncord_core::executor::QaoaFactory;
    use qoncord_core::scheduler::QoncordConfig;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn quick_config(seed: u64) -> QoncordConfig {
        QoncordConfig {
            exploration_max_iterations: 6,
            finetune_max_iterations: 8,
            seed,
            ..QoncordConfig::default()
        }
    }

    fn job(id: usize, arrival: f64, seed: u64) -> TenantJob {
        let factory = QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        };
        TenantJob::new(id, format!("tenant-{id}"), arrival, Box::new(factory))
            .with_restarts(2)
            .with_config(quick_config(seed))
    }

    fn orchestrator(policy: Policy) -> Orchestrator {
        Orchestrator::new(
            OrchestratorConfig {
                policy,
                ..OrchestratorConfig::default()
            },
            two_lf_one_hf_fleet(),
        )
    }

    #[test]
    fn solo_job_makespan_equals_its_busy_seconds() {
        // A single tenant never waits: its makespan is exactly the sum of
        // its batch durations — the identity sequential_makespan() rests on.
        let report = orchestrator(Policy::Qoncord).run(&[job(0, 0.0, 5)]);
        assert_eq!(report.completed(), 1);
        let t = &report.jobs[0].telemetry;
        assert_eq!(t.wait_time(), Some(0.0));
        assert!((report.makespan() - t.busy_seconds()).abs() < 1e-9);
        assert!((report.speedup_vs_sequential() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_tenants_beat_back_to_back_execution() {
        let jobs: Vec<TenantJob> = (0..4).map(|i| job(i, 0.0, 40 + i as u64)).collect();
        let report = orchestrator(Policy::Qoncord).run(&jobs);
        assert_eq!(report.completed(), 4);
        assert!(
            report.makespan() < report.sequential_makespan(),
            "sharing the fleet must beat serial execution: {} vs {}",
            report.makespan(),
            report.sequential_makespan()
        );
        assert!(report.speedup_vs_sequential() > 1.0);
        // Work conservation: fleet busy time equals the jobs' leased time.
        let fleet_busy: f64 = report.fleet.devices.iter().map(|d| d.busy_seconds).sum();
        assert!((fleet_busy - report.sequential_makespan()).abs() < 1e-6);
        for u in report.fleet.utilization() {
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
    }

    #[test]
    fn best_fidelity_policy_uses_only_the_hf_device() {
        let jobs: Vec<TenantJob> = (0..2).map(|i| job(i, 0.0, 7 + i as u64)).collect();
        let report = orchestrator(Policy::BestFidelity).run(&jobs);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.fleet.devices[0].executions, 0, "lf_east idle");
        assert_eq!(report.fleet.devices[1].executions, 0, "lf_west idle");
        assert!(report.fleet.devices[2].executions > 0, "hf_core busy");
    }

    #[test]
    fn qoncord_policy_is_cheaper_than_hf_only() {
        // The cost claim in miniature: exploration on cheap LF devices
        // lowers the lease bill relative to the HF-only baseline.
        let jobs =
            |n: usize| -> Vec<TenantJob> { (0..n).map(|i| job(i, 0.0, 90 + i as u64)).collect() };
        let q = orchestrator(Policy::Qoncord).run(&jobs(3));
        let hf = orchestrator(Policy::BestFidelity).run(&jobs(3));
        assert!(
            q.total_cost() < hf.total_cost(),
            "Qoncord {} vs HF-only {}",
            q.total_cost(),
            hf.total_cost()
        );
    }

    #[test]
    fn triage_releases_provisional_reservations() {
        let factory = QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        };
        let cfg = QoncordConfig {
            selection: qoncord_core::SelectionPolicy::TopK(2),
            ..quick_config(3)
        };
        let spec = TenantJob::new(0, "pruner", 0.0, Box::new(factory))
            .with_restarts(6)
            .with_config(cfg);
        let report = orchestrator(Policy::Qoncord).run(&[spec]);
        let t = &report.jobs[0].telemetry;
        assert_eq!(t.released_reservations, 4, "TopK(2) of 6 releases 4 holds");
        assert!(t.released_seconds > 0.0);
    }

    #[test]
    fn higher_priority_job_is_dispatched_first() {
        // Three tenants contend for the single HF device: job 0 is granted
        // the idle device on arrival, jobs 1 and 2 queue behind its first
        // batch; the high-priority one must be granted before the other.
        let fleet = vec![two_lf_one_hf_fleet().remove(2)];
        let orch = Orchestrator::new(
            OrchestratorConfig {
                policy: Policy::BestFidelity,
                ..OrchestratorConfig::default()
            },
            fleet,
        );
        let jobs = vec![
            job(0, 0.0, 1),
            job(1, 0.0, 2),
            job(2, 0.0, 3).with_priority(4),
        ];
        let report = orch.run(&jobs);
        assert_eq!(report.completed(), 3);
        let start = |i: usize| report.jobs[i].telemetry.first_start.unwrap();
        assert!(
            start(2) < start(1),
            "priority 4 job must start before the earlier priority 0 job: {} vs {}",
            start(2),
            start(1)
        );
    }

    #[test]
    fn rejected_priority_job_grants_no_lasting_credit() {
        // A high-priority job whose admission fails must not leave usage
        // credit behind for its tenant: the tenant's later normal job has
        // to queue behind an earlier request on plain FIFO terms.
        let fleet = vec![two_lf_one_hf_fleet().remove(2)];
        let orch = Orchestrator::new(
            OrchestratorConfig {
                policy: Policy::BestFidelity,
                ..OrchestratorConfig::default()
            },
            fleet,
        );
        let rejected_factory = QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        };
        let rejected_cfg = QoncordConfig {
            min_fidelity: 0.999,
            ..quick_config(9)
        };
        let mut filler = job(0, 0.0, 1);
        filler.tenant = "w".into();
        let mut first_in_line = job(1, 0.0, 2);
        first_in_line.tenant = "u".into();
        let rejected = TenantJob::new(2, "t", 0.0, Box::new(rejected_factory))
            .with_priority(9)
            .with_config(rejected_cfg);
        let mut latecomer = job(3, 0.001, 3);
        latecomer.tenant = "t".into();
        let report = orch.run(&[filler, first_in_line, rejected, latecomer]);
        assert!(!report.jobs[2].status.is_completed());
        let start = |i: usize| report.jobs[i].telemetry.first_start.unwrap();
        assert!(
            start(1) < start(3),
            "tenant t must not inherit credit from its rejected priority job: {} vs {}",
            start(1),
            start(3)
        );
    }

    #[test]
    fn rejected_jobs_are_reported_not_run() {
        let factory = QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        };
        let cfg = QoncordConfig {
            min_fidelity: 0.999,
            ..quick_config(1)
        };
        let spec = TenantJob::new(0, "unlucky", 0.0, Box::new(factory)).with_config(cfg);
        let report = orchestrator(Policy::Qoncord).run(&[spec]);
        assert_eq!(report.completed(), 0);
        assert!(!report.jobs[0].status.is_completed());
        assert_eq!(report.jobs[0].telemetry.executions, 0);
        assert_eq!(report.makespan(), 0.0);
    }

    #[test]
    fn run_is_deterministic() {
        let mk = || -> Vec<TenantJob> { (0..3).map(|i| job(i, i as f64, 60 + i as u64)).collect() };
        let a = orchestrator(Policy::Qoncord).run(&mk());
        let b = orchestrator(Policy::Qoncord).run(&mk());
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.total_cost(), b.total_cost());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(
                x.status.report().map(|r| r.best_expectation()),
                y.status.report().map(|r| r.best_expectation())
            );
        }
    }

    /// A single-HF-device arena where job 1 arrives an instant after job 0
    /// has been granted the device, so it lands mid-lease.
    fn contended_pair(preempt: bool, shape: impl Fn(TenantJob) -> TenantJob) -> OrchestratorReport {
        let fleet = vec![two_lf_one_hf_fleet().remove(2)];
        let orch = Orchestrator::new(
            OrchestratorConfig {
                policy: Policy::BestFidelity,
                preemption: if preempt {
                    PreemptionConfig::enabled()
                } else {
                    PreemptionConfig::default()
                },
                ..OrchestratorConfig::default()
            },
            fleet,
        );
        orch.run(&[job(0, 0.0, 1), shape(job(1, 1e-4, 2))])
    }

    #[test]
    fn preemption_cuts_a_priority_arrivals_wait() {
        let np = contended_pair(false, |j| j.with_priority(3));
        let p = contended_pair(true, |j| j.with_priority(3));
        assert_eq!(np.completed(), 2);
        assert_eq!(p.completed(), 2);
        let wait = |r: &OrchestratorReport, i: usize| r.jobs[i].telemetry.wait_time().unwrap();
        assert!(
            wait(&np, 1) > 0.0,
            "without preemption the arrival waits out the running lease"
        );
        assert_eq!(wait(&p, 1), 0.0, "eviction grants the device immediately");
        assert!(p.total_evictions() >= 1);
        assert!(p.jobs[0].telemetry.evictions >= 1, "job 0 was the victim");
        assert!(p.jobs[0].telemetry.wasted_seconds > 0.0);
        assert!(p.total_wasted_seconds() > 0.0);
        // The victim's training outcome is untouched by the eviction.
        let best = |r: &OrchestratorReport, i: usize| {
            r.jobs[i].status.report().unwrap().best_expectation()
        };
        assert_eq!(best(&p, 0), best(&np, 0));
        assert_eq!(best(&p, 1), best(&np, 1));
        // Useful work is still conserved; only wasted occupancy is extra.
        let fleet_busy: f64 = p.fleet.devices.iter().map(|d| d.busy_seconds).sum();
        assert!((fleet_busy - p.sequential_makespan()).abs() < 1e-6);
    }

    #[test]
    fn deadline_pressure_preempts_equal_priority_leases() {
        // Both jobs are priority 0; the arrival's absurdly tight (but
        // formally valid) deadline makes it deadline-imminent on arrival,
        // which outranks a deadline-free holder of equal priority.
        let np = contended_pair(false, |j| j.with_deadline(2e-4));
        let p = contended_pair(true, |j| j.with_deadline(2e-4));
        assert!(p.total_evictions() >= 1, "imminence alone must evict");
        let wait = |r: &OrchestratorReport, i: usize| r.jobs[i].telemetry.wait_time().unwrap();
        assert!(wait(&p, 1) < wait(&np, 1));
        assert_eq!(
            p.jobs[1].telemetry.sla_met(),
            Some(false),
            "the impossible deadline is still missed — admission, not preemption, owns that"
        );
    }

    #[test]
    fn preemption_disabled_never_evicts() {
        let np = contended_pair(false, |j| j.with_priority(9).with_deadline(2e-4));
        assert_eq!(np.total_evictions(), 0);
        assert_eq!(np.total_wasted_seconds(), 0.0);
    }

    #[test]
    fn admission_reject_denies_infeasible_deadlines() {
        let orch = Orchestrator::new(
            OrchestratorConfig {
                admission: AdmissionConfig::with_mode(AdmissionMode::Reject),
                ..OrchestratorConfig::default()
            },
            two_lf_one_hf_fleet(),
        );
        let report = orch.run(&[job(0, 0.0, 1).with_deadline(1e-9), job(1, 0.0, 2)]);
        assert_eq!(report.denied(), 1);
        assert_eq!(report.completed(), 1, "the deadline-free job still runs");
        assert!(report.jobs[0].status.is_denied());
        assert_eq!(
            report.jobs[0].telemetry.executions, 0,
            "denied jobs never run"
        );
        match &report.jobs[0].status {
            JobStatus::Denied { estimate, deadline } => {
                assert_eq!(*deadline, 1e-9);
                assert!(estimate.completion > *deadline);
            }
            other => panic!("expected Denied, got {other:?}"),
        }
        let sla = report.tenant_sla();
        assert_eq!(sla[0].denied, 1);
    }

    #[test]
    fn admission_downgrade_runs_best_effort() {
        let orch = Orchestrator::new(
            OrchestratorConfig {
                admission: AdmissionConfig::with_mode(AdmissionMode::Downgrade),
                ..OrchestratorConfig::default()
            },
            two_lf_one_hf_fleet(),
        );
        let report = orch.run(&[job(0, 0.0, 1).with_deadline(1e-9).with_priority(4)]);
        assert_eq!(report.completed(), 1);
        let t = &report.jobs[0].telemetry;
        assert!(t.downgraded);
        assert_eq!(t.deadline, None, "the unkeepable SLA was stripped");
        assert_eq!(t.sla_met(), None);
        assert_eq!(report.sla_attainment(), None);
        assert_eq!(report.tenant_sla()[0].downgraded, 1);
    }

    #[test]
    fn feasible_deadlines_are_admitted_and_attained() {
        let orch = Orchestrator::new(
            OrchestratorConfig {
                admission: AdmissionConfig::with_mode(AdmissionMode::Reject),
                ..OrchestratorConfig::default()
            },
            two_lf_one_hf_fleet(),
        );
        let report = orch.run(&[job(0, 0.0, 1).with_deadline(1e9)]);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.jobs[0].telemetry.sla_met(), Some(true));
        assert_eq!(report.sla_attainment(), Some(1.0));
        let estimate = report.jobs[0].telemetry.admission_estimate.unwrap();
        assert!(estimate.service_seconds > 0.0);
    }

    #[test]
    fn both_lf_devices_absorb_exploration_under_load() {
        // With several tenants, the load-aware LF placement must spread
        // exploration over both cheap devices.
        let jobs: Vec<TenantJob> = (0..6).map(|i| job(i, i as f64 * 0.5, i as u64)).collect();
        let report = orchestrator(Policy::Qoncord).run(&jobs);
        assert_eq!(report.completed(), 6);
        assert!(report.fleet.devices[0].executions > 0, "lf_east used");
        assert!(report.fleet.devices[1].executions > 0, "lf_west used");
    }
}
