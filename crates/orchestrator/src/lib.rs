//! # qoncord-orchestrator
//!
//! Multi-tenant job orchestration for the Qoncord reproduction: a stream of
//! *real* VQA jobs — QAOA/VQE training runs with restarts, triage, and
//! progressive fine-tuning from `qoncord-core` — executed concurrently
//! against a shared device fleet on a discrete-event virtual clock.
//!
//! This crate bridges the repo's two previously separate layers:
//!
//! - `qoncord-core` trains one job at a time against private device lanes;
//! - `qoncord-cloud` simulates queues over abstract job durations.
//!
//! Here every optimizer batch of every tenant becomes a device reservation,
//! so low-fidelity exploration, cluster triage, and high-fidelity
//! fine-tuning from different tenants interleave on real shared hardware
//! models. The pieces:
//!
//! - [`job`] — tenant job specs (arrival, priority, restarts, workload).
//! - [`fleet`] — the shared fleet: calibrations + market metadata.
//! - [`engine`] — the event loop: fair-share lease dispatch (reusing
//!   [`qoncord_cloud::fairshare`]), ladder selection per arrival (reusing
//!   [`qoncord_cloud::policy::place_job`]), and pruning-aware cancellation
//!   of reservations when restart triage kills work mid-flight.
//! - [`telemetry`] — per-job wait/makespan/device-seconds/cost and fleet
//!   utilization.
//!
//! Per-job numeric results are **identical** to the closed-loop
//! [`qoncord_core::scheduler::QoncordScheduler`] given the same ladder and
//! seeds — multi-tenancy changes only the timing, which is the point: the
//! fleet makespan of N concurrent jobs is strictly below the sum of their
//! solo makespans.

#![warn(missing_docs)]

mod driver;
mod events;

pub mod engine;
pub mod fleet;
pub mod job;
pub mod telemetry;

pub use engine::{Orchestrator, OrchestratorConfig};
pub use fleet::{two_lf_one_hf_fleet, FleetDevice};
pub use job::TenantJob;
pub use telemetry::{
    DeviceTelemetry, FleetTelemetry, JobRecord, JobStatus, JobTelemetry, OrchestratorReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use qoncord_cloud::policy::Policy;
    use qoncord_core::executor::QaoaFactory;
    use qoncord_core::scheduler::QoncordConfig;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn quick_config(seed: u64) -> QoncordConfig {
        QoncordConfig {
            exploration_max_iterations: 6,
            finetune_max_iterations: 8,
            seed,
            ..QoncordConfig::default()
        }
    }

    fn job(id: usize, arrival: f64, seed: u64) -> TenantJob {
        let factory = QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        };
        TenantJob::new(id, format!("tenant-{id}"), arrival, Box::new(factory))
            .with_restarts(2)
            .with_config(quick_config(seed))
    }

    fn orchestrator(policy: Policy) -> Orchestrator {
        Orchestrator::new(
            OrchestratorConfig {
                policy,
                ..OrchestratorConfig::default()
            },
            two_lf_one_hf_fleet(),
        )
    }

    #[test]
    fn solo_job_makespan_equals_its_busy_seconds() {
        // A single tenant never waits: its makespan is exactly the sum of
        // its batch durations — the identity sequential_makespan() rests on.
        let report = orchestrator(Policy::Qoncord).run(&[job(0, 0.0, 5)]);
        assert_eq!(report.completed(), 1);
        let t = &report.jobs[0].telemetry;
        assert_eq!(t.wait_time(), Some(0.0));
        assert!((report.makespan() - t.busy_seconds()).abs() < 1e-9);
        assert!((report.speedup_vs_sequential() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_tenants_beat_back_to_back_execution() {
        let jobs: Vec<TenantJob> = (0..4).map(|i| job(i, 0.0, 40 + i as u64)).collect();
        let report = orchestrator(Policy::Qoncord).run(&jobs);
        assert_eq!(report.completed(), 4);
        assert!(
            report.makespan() < report.sequential_makespan(),
            "sharing the fleet must beat serial execution: {} vs {}",
            report.makespan(),
            report.sequential_makespan()
        );
        assert!(report.speedup_vs_sequential() > 1.0);
        // Work conservation: fleet busy time equals the jobs' leased time.
        let fleet_busy: f64 = report.fleet.devices.iter().map(|d| d.busy_seconds).sum();
        assert!((fleet_busy - report.sequential_makespan()).abs() < 1e-6);
        for u in report.fleet.utilization() {
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
    }

    #[test]
    fn best_fidelity_policy_uses_only_the_hf_device() {
        let jobs: Vec<TenantJob> = (0..2).map(|i| job(i, 0.0, 7 + i as u64)).collect();
        let report = orchestrator(Policy::BestFidelity).run(&jobs);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.fleet.devices[0].executions, 0, "lf_east idle");
        assert_eq!(report.fleet.devices[1].executions, 0, "lf_west idle");
        assert!(report.fleet.devices[2].executions > 0, "hf_core busy");
    }

    #[test]
    fn qoncord_policy_is_cheaper_than_hf_only() {
        // The cost claim in miniature: exploration on cheap LF devices
        // lowers the lease bill relative to the HF-only baseline.
        let jobs =
            |n: usize| -> Vec<TenantJob> { (0..n).map(|i| job(i, 0.0, 90 + i as u64)).collect() };
        let q = orchestrator(Policy::Qoncord).run(&jobs(3));
        let hf = orchestrator(Policy::BestFidelity).run(&jobs(3));
        assert!(
            q.total_cost() < hf.total_cost(),
            "Qoncord {} vs HF-only {}",
            q.total_cost(),
            hf.total_cost()
        );
    }

    #[test]
    fn triage_releases_provisional_reservations() {
        let factory = QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        };
        let cfg = QoncordConfig {
            selection: qoncord_core::SelectionPolicy::TopK(2),
            ..quick_config(3)
        };
        let spec = TenantJob::new(0, "pruner", 0.0, Box::new(factory))
            .with_restarts(6)
            .with_config(cfg);
        let report = orchestrator(Policy::Qoncord).run(&[spec]);
        let t = &report.jobs[0].telemetry;
        assert_eq!(t.released_reservations, 4, "TopK(2) of 6 releases 4 holds");
        assert!(t.released_seconds > 0.0);
    }

    #[test]
    fn higher_priority_job_is_dispatched_first() {
        // Three tenants contend for the single HF device: job 0 is granted
        // the idle device on arrival, jobs 1 and 2 queue behind its first
        // batch; the high-priority one must be granted before the other.
        let fleet = vec![two_lf_one_hf_fleet().remove(2)];
        let orch = Orchestrator::new(
            OrchestratorConfig {
                policy: Policy::BestFidelity,
                ..OrchestratorConfig::default()
            },
            fleet,
        );
        let jobs = vec![
            job(0, 0.0, 1),
            job(1, 0.0, 2),
            job(2, 0.0, 3).with_priority(4),
        ];
        let report = orch.run(&jobs);
        assert_eq!(report.completed(), 3);
        let start = |i: usize| report.jobs[i].telemetry.first_start.unwrap();
        assert!(
            start(2) < start(1),
            "priority 4 job must start before the earlier priority 0 job: {} vs {}",
            start(2),
            start(1)
        );
    }

    #[test]
    fn rejected_priority_job_grants_no_lasting_credit() {
        // A high-priority job whose admission fails must not leave usage
        // credit behind for its tenant: the tenant's later normal job has
        // to queue behind an earlier request on plain FIFO terms.
        let fleet = vec![two_lf_one_hf_fleet().remove(2)];
        let orch = Orchestrator::new(
            OrchestratorConfig {
                policy: Policy::BestFidelity,
                ..OrchestratorConfig::default()
            },
            fleet,
        );
        let rejected_factory = QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        };
        let rejected_cfg = QoncordConfig {
            min_fidelity: 0.999,
            ..quick_config(9)
        };
        let mut filler = job(0, 0.0, 1);
        filler.tenant = "w".into();
        let mut first_in_line = job(1, 0.0, 2);
        first_in_line.tenant = "u".into();
        let rejected = TenantJob::new(2, "t", 0.0, Box::new(rejected_factory))
            .with_priority(9)
            .with_config(rejected_cfg);
        let mut latecomer = job(3, 0.001, 3);
        latecomer.tenant = "t".into();
        let report = orch.run(&[filler, first_in_line, rejected, latecomer]);
        assert!(!report.jobs[2].status.is_completed());
        let start = |i: usize| report.jobs[i].telemetry.first_start.unwrap();
        assert!(
            start(1) < start(3),
            "tenant t must not inherit credit from its rejected priority job: {} vs {}",
            start(1),
            start(3)
        );
    }

    #[test]
    fn rejected_jobs_are_reported_not_run() {
        let factory = QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        };
        let cfg = QoncordConfig {
            min_fidelity: 0.999,
            ..quick_config(1)
        };
        let spec = TenantJob::new(0, "unlucky", 0.0, Box::new(factory)).with_config(cfg);
        let report = orchestrator(Policy::Qoncord).run(&[spec]);
        assert_eq!(report.completed(), 0);
        assert!(!report.jobs[0].status.is_completed());
        assert_eq!(report.jobs[0].telemetry.executions, 0);
        assert_eq!(report.makespan(), 0.0);
    }

    #[test]
    fn run_is_deterministic() {
        let mk = || -> Vec<TenantJob> { (0..3).map(|i| job(i, i as f64, 60 + i as u64)).collect() };
        let a = orchestrator(Policy::Qoncord).run(&mk());
        let b = orchestrator(Policy::Qoncord).run(&mk());
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.total_cost(), b.total_cost());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(
                x.status.report().map(|r| r.best_expectation()),
                y.status.report().map(|r| r.best_expectation())
            );
        }
    }

    #[test]
    fn both_lf_devices_absorb_exploration_under_load() {
        // With several tenants, the load-aware LF placement must spread
        // exploration over both cheap devices.
        let jobs: Vec<TenantJob> = (0..6).map(|i| job(i, i as f64 * 0.5, i as u64)).collect();
        let report = orchestrator(Policy::Qoncord).run(&jobs);
        assert_eq!(report.completed(), 6);
        assert!(report.fleet.devices[0].executions > 0, "lf_east used");
        assert!(report.fleet.devices[1].executions > 0, "lf_west used");
    }
}
