//! Workload-trace replay: drive the orchestrator with the paper's Sec. V-F
//! pseudo-workload.
//!
//! [`qoncord_cloud::workload::generate_workload`] produces [`JobSpec`]s —
//! abstract arrival times, job shapes, and a VQA flag — for the queue
//! *simulator*. This adapter converts them into [`TenantJob`]s running real
//! training workloads, so the same arrival trace can exercise the
//! orchestrator: arrival times carry over verbatim, the VQA flag picks the
//! deadline class (sessions are throughput work, independent tasks are
//! latency-sensitive), and independent tasks additionally get a dispatch
//! priority so the preemptive engine has something to preempt *for*.

use crate::admission::DeadlineClass;
use crate::job::TenantJob;
use qoncord_cloud::job::JobSpec;
use qoncord_core::executor::EvaluatorFactory;
use qoncord_core::scheduler::QoncordConfig;

/// Tuning of the trace replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Size of the tenant pool; job `id % tenants` names the submitter.
    pub tenants: usize,
    /// Base training configuration; each job's seed is derived from it and
    /// the job id so replayed runs differ per job but stay deterministic.
    pub training: QoncordConfig,
    /// Restart count for replayed VQA sessions (independent tasks replay as
    /// single-restart jobs, the smallest real workload).
    pub session_restarts: usize,
    /// Dispatch priority of latency-sensitive (non-VQA) jobs.
    pub interactive_priority: u32,
    /// `Some(n)`: every job whose id is a multiple of `n` replays with no
    /// deadline (and no priority) at all. Best-effort jobs are never denied
    /// by admission control, so under a rejecting controller they are the
    /// unbiased estimate-error probes that keep the calibration loop
    /// learning — without them, a margin model that starts out rejecting a
    /// whole (tier, class) population would never see a completion from it.
    /// `None` replays every job with its class deadline.
    pub deadline_free_stride: Option<usize>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            tenants: 4,
            training: QoncordConfig::default(),
            session_restarts: 3,
            interactive_priority: 2,
            deadline_free_stride: None,
        }
    }
}

/// Converts a generated workload trace into orchestrator jobs: one
/// [`TenantJob`] per [`JobSpec`], preserving arrival order, with
/// `factory` building each job's training workload.
///
/// # Panics
///
/// Panics if the tenant pool, the session restart count, or a configured
/// [`deadline_free_stride`](ReplayConfig::deadline_free_stride) is zero.
///
/// # Examples
///
/// ```
/// use qoncord_cloud::workload::{generate_workload, WorkloadConfig};
/// use qoncord_core::executor::QaoaFactory;
/// use qoncord_orchestrator::replay::{replay_workload, ReplayConfig};
/// use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
///
/// let specs = generate_workload(&WorkloadConfig {
///     n_jobs: 8,
///     ..WorkloadConfig::default()
/// });
/// let jobs = replay_workload(
///     &specs,
///     &ReplayConfig { deadline_free_stride: Some(4), ..ReplayConfig::default() },
///     |_| Box::new(QaoaFactory {
///         problem: MaxCut::new(Graph::paper_graph_7()),
///         layers: 1,
///     }),
/// );
/// assert_eq!(jobs.len(), 8);
/// // Jobs 0 and 4 replay as best-effort calibration probes.
/// assert!(jobs[0].deadline.is_none() && jobs[4].deadline.is_none());
/// assert!(jobs.iter().filter(|j| j.deadline.is_some()).count() == 6);
/// ```
pub fn replay_workload(
    specs: &[JobSpec],
    config: &ReplayConfig,
    mut factory: impl FnMut(&JobSpec) -> Box<dyn EvaluatorFactory>,
) -> Vec<TenantJob> {
    assert!(config.tenants > 0, "need at least one tenant");
    assert!(config.session_restarts > 0, "need at least one restart");
    assert!(
        config.deadline_free_stride != Some(0),
        "deadline-free stride must be positive"
    );
    specs
        .iter()
        .map(|spec| {
            let (class, priority, restarts) = if spec.is_vqa {
                (DeadlineClass::Batch, 0, config.session_restarts)
            } else {
                (DeadlineClass::Interactive, config.interactive_priority, 1)
            };
            let training = QoncordConfig {
                seed: config
                    .training
                    .seed
                    .wrapping_add((spec.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..config.training.clone()
            };
            let job = TenantJob::new(
                spec.id,
                format!("user-{}", spec.id % config.tenants),
                spec.arrival,
                factory(spec),
            )
            .with_restarts(restarts)
            .with_config(training);
            if config
                .deadline_free_stride
                .is_some_and(|stride| spec.id % stride == 0)
            {
                job
            } else {
                job.with_priority(priority).with_deadline_class(class)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::Deadline;
    use qoncord_cloud::workload::{generate_workload, WorkloadConfig};
    use qoncord_core::executor::QaoaFactory;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn specs(vqa_ratio: f64) -> Vec<JobSpec> {
        generate_workload(&WorkloadConfig {
            n_jobs: 24,
            vqa_ratio,
            seed: 7,
            ..WorkloadConfig::default()
        })
    }

    fn factory(_: &JobSpec) -> Box<dyn EvaluatorFactory> {
        Box::new(QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        })
    }

    #[test]
    fn replay_preserves_arrivals_and_maps_classes() {
        let specs = specs(0.5);
        let jobs = replay_workload(&specs, &ReplayConfig::default(), factory);
        assert_eq!(jobs.len(), specs.len());
        for (job, spec) in jobs.iter().zip(&specs) {
            assert_eq!(job.id, spec.id);
            assert_eq!(job.arrival, spec.arrival);
            if spec.is_vqa {
                assert_eq!(job.deadline, Some(Deadline::Class(DeadlineClass::Batch)));
                assert_eq!(job.priority, 0);
                assert_eq!(job.n_restarts, 3);
            } else {
                assert_eq!(
                    job.deadline,
                    Some(Deadline::Class(DeadlineClass::Interactive))
                );
                assert_eq!(job.priority, 2);
                assert_eq!(job.n_restarts, 1);
            }
        }
        assert!(
            jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "arrival order preserved"
        );
    }

    #[test]
    fn replay_cycles_the_tenant_pool_and_varies_seeds() {
        let specs = specs(1.0);
        let jobs = replay_workload(
            &specs,
            &ReplayConfig {
                tenants: 3,
                ..ReplayConfig::default()
            },
            factory,
        );
        assert_eq!(jobs[0].tenant, "user-0");
        assert_eq!(jobs[1].tenant, "user-1");
        assert_eq!(jobs[3].tenant, "user-0");
        let tenants: std::collections::HashSet<&str> =
            jobs.iter().map(|j| j.tenant.as_str()).collect();
        assert_eq!(tenants.len(), 3);
        assert_ne!(jobs[0].config.seed, jobs[1].config.seed);
    }

    #[test]
    fn deadline_free_stride_replays_probes() {
        let specs = specs(0.5);
        let jobs = replay_workload(
            &specs,
            &ReplayConfig {
                deadline_free_stride: Some(3),
                ..ReplayConfig::default()
            },
            factory,
        );
        for (job, spec) in jobs.iter().zip(&specs) {
            if spec.id % 3 == 0 {
                assert_eq!(job.deadline, None, "stride jobs are best-effort probes");
                assert_eq!(job.priority, 0);
            } else {
                assert!(job.deadline.is_some());
            }
        }
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        replay_workload(
            &specs(0.5),
            &ReplayConfig {
                deadline_free_stride: Some(0),
                ..ReplayConfig::default()
            },
            factory,
        );
    }

    #[test]
    #[should_panic(expected = "tenant")]
    fn zero_tenants_rejected() {
        replay_workload(
            &specs(0.5),
            &ReplayConfig {
                tenants: 0,
                ..ReplayConfig::default()
            },
            factory,
        );
    }
}
