//! Per-device-group shard state of the sharded engine: each
//! [`DeviceShard`] owns a disjoint subset of the fleet (devices are routed
//! by `device % shard_count`) and a local inbox of the hoistable
//! lease-completion work the current virtual-time barrier routed to it.
//!
//! A shard never touches global state. The executor
//! ([`crate::exec::ShardedExecutor`]) fills every shard's inbox from one
//! barrier's event batch, drains the inboxes on worker threads (each shard
//! advances its tasks sequentially, in event-sequence order), and merges
//! the completed tasks back in `(time, seq)` order — which is what keeps
//! the trace stream, telemetry, and calibration history byte-identical to
//! the sequential engine. Note the two meanings of "shard" in this crate:
//! a [`DeviceShard`] is a *device group* of the engine's executor, while a
//! [`crate::split`] shard is one device-resident slice of a split job.

use crate::driver::BatchResult;
use crate::split::JobRunner;

/// A batch of deferred lease compute hoisted out of one barrier event: the
/// job's runner travels to the shard's worker, runs its pending batch for
/// `job_shard`, and returns home before the barrier's events replay.
pub(crate) struct ShardTask {
    /// Position of the originating event in the barrier's `(time, seq)`
    /// batch — the merge key that pins the sequential order.
    pub pos: usize,
    /// Engine job index (owner of the runner).
    pub job: usize,
    /// The job's own shard index (0 for unsplit jobs); see module docs for
    /// the job-shard vs device-shard distinction.
    pub job_shard: usize,
    /// Fleet device whose lease completed.
    pub device: usize,
    /// The runner, taken from the engine's driver table for the duration
    /// of the barrier.
    pub runner: JobRunner,
}

/// A [`ShardTask`] after its shard executed the pending batch.
pub(crate) struct CompletedTask {
    /// Merge key: the originating event's position in the barrier batch.
    pub pos: usize,
    /// Engine job index, for restoring the runner.
    pub job: usize,
    /// The advanced runner, returned to the engine's driver table.
    pub runner: JobRunner,
    /// What [`JobRunner::execute_batch`] produced — spliced into the
    /// engine's lease-completion bookkeeping in place of the inline call.
    pub result: BatchResult,
}

/// One device group of the sharded engine: the devices it owns and the
/// current barrier's inbox of hoisted lease completions on them.
pub(crate) struct DeviceShard {
    /// This shard's index among its executor's shards.
    id: usize,
    /// Total shard count of the owning executor (the routing modulus).
    modulus: usize,
    /// Hoisted tasks of the current barrier, in event-sequence order
    /// (tasks are pushed while scanning the batch in `seq` order).
    inbox: Vec<ShardTask>,
}

impl DeviceShard {
    /// Creates shard `id` of `modulus` total; it owns every fleet device
    /// `d` with `d % modulus == id`.
    pub(crate) fn new(id: usize, modulus: usize) -> Self {
        assert!(id < modulus, "shard id must be below the shard count");
        DeviceShard {
            id,
            modulus,
            inbox: Vec::new(),
        }
    }

    /// Whether this shard owns fleet device `device`.
    pub(crate) fn owns(&self, device: usize) -> bool {
        device % self.modulus == self.id
    }

    /// Queues a hoisted task on this shard for the current barrier.
    pub(crate) fn push(&mut self, task: ShardTask) {
        debug_assert!(
            self.owns(task.device),
            "task routed to a shard that does not own its device"
        );
        self.inbox.push(task);
    }

    /// Drains the current barrier's inbox (event-sequence order).
    pub(crate) fn take_inbox(&mut self) -> Vec<ShardTask> {
        std::mem::take(&mut self.inbox)
    }

    /// Runs every task of `inbox` in order — the shard's sequential
    /// advance between two barriers. Runs on a worker thread when the
    /// executor is parallel; the engine's global state is untouched.
    pub(crate) fn run(inbox: Vec<ShardTask>) -> Vec<CompletedTask> {
        inbox
            .into_iter()
            .map(|mut task| {
                let result = task.runner.execute_batch(task.job_shard);
                CompletedTask {
                    pos: task.pos,
                    job: task.job,
                    runner: task.runner,
                    result,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_partitions_devices() {
        let shards: Vec<DeviceShard> = (0..3).map(|i| DeviceShard::new(i, 3)).collect();
        for device in 0..10 {
            let owners = shards.iter().filter(|s| s.owns(device)).count();
            assert_eq!(owners, 1, "device {device} must have exactly one owner");
        }
    }
}
