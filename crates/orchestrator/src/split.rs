//! QuSplit-style restart splitting: one job's restarts fanned out across
//! several fleet devices of the same quality tier.
//!
//! The plain per-job ladder driver (the private `driver` module) pins
//! every batch of a job to one
//! device per ladder rung, so a 50-restart exploration serializes on a
//! single low-fidelity machine even when its twin sits idle next to it.
//! This module shards a job's restarts into per-device **sub-leases**: a
//! `SplitDriver` owns one shard per same-tier device (fan-out width
//! chosen from live load by [`qoncord_cloud::policy::split_restarts`]),
//! runs each shard's SPSA batches independently — the engine grants each
//! shard its own preemptible lease — and merges shard results back into
//! restart order with [`qoncord_cloud::policy::merge_shard_results`].
//!
//! # Bit-identical merges
//!
//! Every per-restart quantity is derived from job-level seeds addressed by
//! restart index ([`qoncord_vqa::restart::initial_point`],
//! [`qoncord_core::scheduler::exploration_seed`],
//! [`qoncord_core::scheduler::finetune_seed`]), never from shard-local
//! state, and restart triage
//! runs on the merged, index-ordered exploration results. When the devices
//! of a tier share a calibration model (the twin fleets of
//! [`crate::fleet`]), a split run therefore reproduces the unsplit run's
//! final energy and parameters for every restart bit for bit — only the
//! timing (and therefore the fleet makespan) changes. On tiers mixing
//! *different* calibrations, splitting instead trades per-restart fidelity
//! for throughput, which is the QuSplit knob; widen
//! [`SplitConfig::tier_tolerance`] to opt into that.

use crate::driver::{
    exploration_runner, finetune_runner, triage_reports, BatchResult, JobDriver,
    LadderLane as ShardLane, SelectedDevice, EXECUTIONS_PER_BATCH_ESTIMATE,
};
use crate::engine::OrchestratorConfig;
use crate::fleet::FleetDevice;
use crate::job::TenantJob;
use qoncord_cloud::device::CloudDevice;
use qoncord_cloud::policy::{merge_shard_results, split_restarts};
use qoncord_core::executor::{EvaluatorFactory, RejectedDevice, RejectionReason};
use qoncord_core::phase::{PhaseCheckpoint, PhaseRunner, ShardCheckpoint};
use qoncord_core::scheduler::{DeviceUsage, QoncordConfig, QoncordReport, RestartReport};
use qoncord_device::fidelity;
use qoncord_device::noise_model::SimulatedBackend;
use qoncord_vqa::restart::{executions_for_iterations, initial_point};

/// Tuning of QuSplit-style restart splitting.
///
/// # Examples
///
/// ```
/// use qoncord_orchestrator::SplitConfig;
///
/// assert!(!SplitConfig::default().enabled, "splitting is opt-in");
/// let split = SplitConfig::enabled();
/// assert!(split.enabled);
/// assert_eq!(split.max_fanout, 4);
/// assert!(split.tier_tolerance < 1e-6, "default admits only twin devices");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitConfig {
    /// Whether multi-device jobs may fan their restarts across same-tier
    /// devices at all. Disabled, every job runs the one-lease-per-phase
    /// ladder of the plain driver.
    pub enabled: bool,
    /// Upper bound on the per-tier fan-out width (the live-load planner may
    /// choose less).
    pub max_fanout: usize,
    /// How far apart two devices' advertised fidelities may lie and still
    /// count as the same tier. The tight default admits only twin devices,
    /// which keeps split results bit-identical to unsplit runs; widen it to
    /// trade per-restart fidelity for throughput.
    pub tier_tolerance: f64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            enabled: false,
            max_fanout: 4,
            tier_tolerance: 1e-9,
        }
    }
}

impl SplitConfig {
    /// Splitting switched on with the default fan-out bound and tier band.
    pub fn enabled() -> Self {
        SplitConfig {
            enabled: true,
            ..SplitConfig::default()
        }
    }
}

/// The per-job execution state machine as the engine sees it: either the
/// plain one-batch-at-a-time ladder driver, or a split driver holding one
/// concurrently schedulable shard per same-tier device.
pub(crate) enum JobRunner {
    /// Unsplit execution (single pending batch, shard id always 0).
    Single(Box<JobDriver>),
    /// Split execution (one pending batch per active shard).
    Split(Box<SplitDriver>),
}

impl JobRunner {
    pub(crate) fn is_multi_device(&self) -> bool {
        match self {
            JobRunner::Single(d) => d.is_multi_device(),
            JobRunner::Split(_) => true,
        }
    }

    /// Per-shard `(fleet device, estimated seconds)` targets for the
    /// provisional fine-tuning holds; restart `r`'s hold is booked on
    /// target `r % len`, mirroring how the triage barrier deals survivors
    /// across the fine-tuning shards.
    pub(crate) fn finetune_hold_targets(&self) -> Vec<(usize, f64)> {
        match self {
            JobRunner::Single(d) => vec![d.finetune_hold_estimate()],
            JobRunner::Split(d) => d.finetune_hold_targets(),
        }
    }

    /// Per-fleet-device seconds of one circuit execution (0.0 off-ladder).
    pub(crate) fn seconds_per_execution_by_fleet(&self, n_devices: usize) -> Vec<f64> {
        match self {
            JobRunner::Single(d) => d.seconds_per_execution_by_fleet(n_devices),
            JobRunner::Split(d) => d.seconds_per_execution_by_fleet(n_devices),
        }
    }

    /// The ladder's entry device (where the first batch runs).
    pub(crate) fn entry_device(&self) -> Option<usize> {
        match self {
            JobRunner::Single(d) => d.current_device(),
            JobRunner::Split(d) => d.entry_device(),
        }
    }

    /// Shards that currently have a pending batch to schedule.
    pub(crate) fn ready_shards(&self) -> Vec<usize> {
        match self {
            JobRunner::Single(d) => {
                if d.current_device().is_some() {
                    vec![0]
                } else {
                    Vec::new()
                }
            }
            JobRunner::Split(d) => d.ready_shards(),
        }
    }

    /// Fleet device `shard`'s pending batch needs.
    pub(crate) fn shard_device(&self, shard: usize) -> usize {
        match self {
            JobRunner::Single(d) => {
                debug_assert_eq!(shard, 0, "unsplit jobs have a single shard");
                d.current_device().expect("pending batch")
            }
            JobRunner::Split(d) => d.shard_device(shard),
        }
    }

    /// Estimated device-seconds of `shard`'s pending batch.
    pub(crate) fn estimated_next_seconds(&self, shard: usize) -> f64 {
        match self {
            JobRunner::Single(d) => d.estimated_next_seconds(),
            JobRunner::Split(d) => d.estimated_next_seconds(shard),
        }
    }

    /// The optimizer state `shard` would resume from if its pending batch
    /// were granted and recalled.
    pub(crate) fn shard_checkpoint(&self, shard: usize) -> ShardCheckpoint {
        match self {
            JobRunner::Single(d) => ShardCheckpoint {
                shard: 0,
                restart: d.current_restart(),
                phase: d.checkpoint(),
            },
            JobRunner::Split(d) => d.shard_checkpoint(shard),
        }
    }

    /// Runs `shard`'s pending batch and advances its classical epilogue.
    pub(crate) fn execute_batch(&mut self, shard: usize) -> BatchResult {
        match self {
            JobRunner::Single(d) => d.execute_batch(),
            JobRunner::Split(d) => d.execute_batch(shard),
        }
    }

    /// Total number of shards the job runs as (1 for unsplit jobs).
    pub(crate) fn shard_count(&self) -> usize {
        match self {
            JobRunner::Single(_) => 1,
            JobRunner::Split(d) => d.shard_count(),
        }
    }

    /// Every shard's current fleet device, indexed by shard — the
    /// shard-plan layout the flight recorder emits at admission.
    pub(crate) fn shard_devices(&self) -> Vec<usize> {
        (0..self.shard_count())
            .map(|shard| self.shard_device(shard))
            .collect()
    }

    /// Consumes the runner into the job's training report.
    pub(crate) fn into_report(self) -> QoncordReport {
        match self {
            JobRunner::Single(d) => d.into_report(),
            JobRunner::Split(d) => d.into_report(),
        }
    }
}

/// One tier's shard plan: `(fleet device, restart indices)` per shard.
type TierPlan = Vec<(usize, Vec<usize>)>;

/// Builds the execution state machine for an admitted job: the plain
/// ladder driver, upgraded to a [`SplitDriver`] when splitting is enabled
/// and the live-load plan fans at least one tier wider than a single
/// device.
///
/// Returns the rejected-device list when no device survives the fidelity
/// filter (same contract as [`JobDriver::new`]).
pub(crate) fn build_runner(
    spec: &TenantJob,
    selected: &[SelectedDevice],
    fleet: &[FleetDevice],
    views: &[CloudDevice],
    config: &OrchestratorConfig,
    now: f64,
) -> Result<JobRunner, Vec<RejectedDevice>> {
    let driver = JobDriver::new(
        spec.config.clone(),
        spec.n_restarts,
        spec.factory.as_ref(),
        selected,
        config.shots,
    )?;
    let split = &config.split;
    if !split.enabled || !driver.is_multi_device() || spec.n_restarts < 2 {
        return Ok(JobRunner::Single(Box::new(driver)));
    }
    let ladder = driver.ladder_fleet_indices();
    if ladder.len() != 2 {
        // Deeper ladders keep the rung-by-rung driver; splitting models the
        // paper's two-tier exploration/fine-tuning pipeline.
        return Ok(JobRunner::Single(Box::new(driver)));
    }
    let secs = driver.seconds_per_execution_by_fleet(fleet.len());
    let (explore_primary, finetune_primary) = (ladder[0], ladder[1]);
    let explore_plan = plan_tier(
        fleet,
        views,
        explore_primary,
        spec.n_restarts,
        executions_for_iterations(spec.config.exploration_max_iterations) as f64
            * secs[explore_primary],
        split,
        now,
    );
    // Only triage survivors ever fine-tune, so the fine-tuning tier is
    // fanned for the selection policy's survivor bound, not the raw
    // restart count — a TopK(2) job must not build shards that can never
    // receive work.
    let max_survivors = spec.config.selection.max_survivors(spec.n_restarts);
    let finetune_plan = plan_tier(
        fleet,
        views,
        finetune_primary,
        max_survivors,
        executions_for_iterations(spec.config.finetune_max_iterations) as f64
            * secs[finetune_primary],
        split,
        now,
    );
    if explore_plan.len() < 2 && finetune_plan.len() < 2 {
        return Ok(JobRunner::Single(Box::new(driver)));
    }
    match SplitDriver::new(
        spec,
        &explore_plan,
        &finetune_plan,
        fleet,
        config.shots,
        driver,
    ) {
        Ok(split_driver) => Ok(JobRunner::Split(Box::new(split_driver))),
        Err(driver) => Ok(JobRunner::Single(driver)),
    }
}

/// Plans one tier's shard devices from live load: candidates are the fleet
/// devices whose advertised fidelity sits within the configured tolerance
/// of the tier's primary device, and
/// [`qoncord_cloud::policy::split_restarts`] deals the restarts across the
/// least-loaded of them. Returns `(fleet device, restart indices)` pairs.
fn plan_tier(
    fleet: &[FleetDevice],
    views: &[CloudDevice],
    primary: usize,
    n_restarts: usize,
    seconds_per_restart: f64,
    split: &SplitConfig,
    now: f64,
) -> TierPlan {
    let anchor = fleet[primary].advertised_fidelity();
    let candidates: Vec<CloudDevice> = views
        .iter()
        .enumerate()
        .filter(|(i, _)| (fleet[*i].advertised_fidelity() - anchor).abs() <= split.tier_tolerance)
        .map(|(_, v)| v.clone())
        .collect();
    let tier_floor = candidates
        .iter()
        .map(|d| d.fidelity())
        .fold(f64::INFINITY, f64::min);
    let plan = split_restarts(
        &candidates,
        tier_floor,
        n_restarts,
        seconds_per_restart,
        split.max_fanout,
        now,
    );
    if plan.is_empty() {
        // The planner found no eligible device (cannot happen while the
        // primary is in its own band, but fall back defensively).
        return vec![(primary, (0..n_restarts).collect())];
    }
    plan.into_iter().map(|p| (p.device, p.restarts)).collect()
}

enum SplitStage {
    /// Exploration shards are draining their restart queues.
    Exploring,
    /// Post-triage: fine-tuning shards are draining the survivors.
    FineTuning,
    /// No shard has pending work.
    Done,
}

/// Which phase of the ladder a shard serves.
#[derive(Clone, Copy, PartialEq)]
enum Tier {
    Explore,
    FineTune,
}

/// One schedulable shard of a split job.
struct Shard {
    lane: ShardLane,
    tier: Tier,
    /// Restart indices not yet started, front first.
    queue: Vec<usize>,
    /// The restart currently training on this shard, if any.
    active: Option<(usize, PhaseRunner)>,
}

/// A split job's execution state machine: per-shard exploration queues, a
/// triage barrier once every exploration shard drains, then per-shard
/// fine-tuning of the survivors. See the module docs for the bit-identity
/// argument.
pub(crate) struct SplitDriver {
    cfg: QoncordConfig,
    n_restarts: usize,
    n_params: usize,
    shards: Vec<Shard>,
    /// Per exploration shard: locally finished restart reports, merged (in
    /// restart order) at the triage barrier.
    pending_reports: Vec<(usize, RestartReport)>,
    /// Index-ordered reports, populated at the triage barrier.
    reports: Vec<RestartReport>,
    rejected: Vec<RejectedDevice>,
    ground_energy: f64,
    stage: SplitStage,
}

impl SplitDriver {
    /// Builds the shard lanes of both tiers — reusing `driver`'s
    /// already-built ladder evaluators as each tier's primary shard, and
    /// constructing fresh lanes only for the additional twins — then
    /// positions every exploration shard at its first batch.
    ///
    /// Returns the driver untouched when any planned twin fails the
    /// fidelity filter or cannot host the workload: a shard plan must be
    /// honored in full or not at all, because silently dropping a shard
    /// would orphan the restarts it owns.
    fn new(
        spec: &TenantJob,
        explore_plan: &[(usize, Vec<usize>)],
        finetune_plan: &[(usize, Vec<usize>)],
        fleet: &[FleetDevice],
        shots: u64,
        driver: JobDriver,
    ) -> Result<Self, Box<JobDriver>> {
        let cfg = spec.config.clone();
        let ladder = driver.ladder_fleet_indices();
        debug_assert_eq!(ladder.len(), 2, "splitting plans two-rung ladders");
        let primaries = [ladder[0], ladder[1]];
        // Build every non-primary twin lane first, so a failure can still
        // hand the untouched driver back for unsplit execution.
        let tiers = [
            (Tier::Explore, explore_plan, 0u64),
            (Tier::FineTune, finetune_plan, 1009),
        ];
        let mut fresh: Vec<Vec<Option<ShardLane>>> = Vec::new();
        for (tier_idx, (_, plan, salt)) in tiers.iter().enumerate() {
            let mut lanes = Vec::new();
            for (device, _) in *plan {
                if *device == primaries[tier_idx] {
                    lanes.push(None);
                    continue;
                }
                match build_shard_lane(
                    spec.factory.as_ref(),
                    &fleet[*device],
                    *device,
                    cfg.seed.wrapping_add(*salt),
                    shots,
                    cfg.min_fidelity,
                ) {
                    Ok(lane) => lanes.push(Some(lane)),
                    Err(_) => return Err(Box::new(driver)),
                }
            }
            fresh.push(lanes);
        }
        let (mut primary_lanes, rejected) = driver.into_shard_parts();
        let mut finetune_primary_lane = primary_lanes.pop();
        let mut explore_primary_lane = primary_lanes.pop();
        let mut shards = Vec::new();
        for (tier_idx, (tier, plan, _)) in tiers.iter().enumerate() {
            for ((device, restarts), fresh_lane) in plan.iter().zip(&mut fresh[tier_idx]) {
                let lane = match fresh_lane.take() {
                    Some(lane) => lane,
                    None => {
                        let slot = if *tier == Tier::Explore {
                            &mut explore_primary_lane
                        } else {
                            &mut finetune_primary_lane
                        };
                        slot.take().expect("each tier reuses its primary once")
                    }
                };
                debug_assert_eq!(lane.fleet_index, *device);
                shards.push(Shard {
                    lane,
                    tier: *tier,
                    queue: if *tier == Tier::Explore {
                        restarts.clone()
                    } else {
                        // Fine-tuning queues are dealt at the triage
                        // barrier, once the survivors are known.
                        Vec::new()
                    },
                    active: None,
                });
            }
        }
        let (n_params, ground_energy) = {
            let first = shards.first().expect("both tiers are non-empty");
            (
                first.lane.evaluator.n_params(),
                first.lane.evaluator.ground_energy(),
            )
        };
        let mut driver = SplitDriver {
            cfg,
            n_restarts: spec.n_restarts,
            n_params,
            shards,
            pending_reports: Vec::new(),
            reports: Vec::new(),
            rejected,
            ground_energy,
            stage: SplitStage::Exploring,
        };
        for shard in 0..driver.shard_count() {
            driver.start_next_restart(shard);
        }
        Ok(driver)
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn entry_device(&self) -> Option<usize> {
        self.shards
            .iter()
            .find(|s| s.tier == Tier::Explore)
            .map(|s| s.lane.fleet_index)
    }

    pub(crate) fn ready_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    pub(crate) fn shard_device(&self, shard: usize) -> usize {
        self.shards[shard].lane.fleet_index
    }

    pub(crate) fn estimated_next_seconds(&self, shard: usize) -> f64 {
        debug_assert!(self.shards[shard].active.is_some(), "shard has a batch");
        EXECUTIONS_PER_BATCH_ESTIMATE * self.shards[shard].lane.secs_per_execution
    }

    pub(crate) fn shard_checkpoint(&self, shard: usize) -> ShardCheckpoint {
        match &self.shards[shard].active {
            Some((restart, runner)) => ShardCheckpoint {
                shard,
                restart: *restart,
                phase: runner.checkpoint(),
            },
            None => ShardCheckpoint {
                shard,
                restart: 0,
                phase: PhaseCheckpoint {
                    params: Vec::new(),
                    iteration: 0,
                    executions: 0,
                },
            },
        }
    }

    /// One `(fleet device, estimated seconds)` hold target per fine-tuning
    /// shard, so the engine spreads a split job's provisional holds across
    /// the whole tier instead of piling them onto one twin's load view.
    pub(crate) fn finetune_hold_targets(&self) -> Vec<(usize, f64)> {
        self.shards
            .iter()
            .filter(|s| s.tier == Tier::FineTune)
            .map(|s| {
                (
                    s.lane.fleet_index,
                    executions_for_iterations(self.cfg.finetune_max_iterations) as f64
                        * s.lane.secs_per_execution,
                )
            })
            .collect()
    }

    pub(crate) fn seconds_per_execution_by_fleet(&self, n_devices: usize) -> Vec<f64> {
        let mut secs = vec![0.0; n_devices];
        for shard in &self.shards {
            secs[shard.lane.fleet_index] = shard.lane.secs_per_execution;
        }
        secs
    }

    /// Runs `shard`'s pending batch; at phase ends, advances the shard to
    /// its next restart, and at the exploration barrier merges all shards'
    /// reports, runs triage, and deals the survivors to the fine-tuning
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if the shard has no pending batch.
    pub(crate) fn execute_batch(&mut self, shard: usize) -> BatchResult {
        let (restart, mut runner) = self.shards[shard]
            .active
            .take()
            .expect("shard has a pending batch");
        let out = runner.step(self.shards[shard].lane.evaluator.as_mut());
        let mut pruned = None;
        if !out.finished {
            self.shards[shard].active = Some((restart, runner));
        } else {
            let device = self.shards[shard].lane.device_name.clone();
            let (params, phase) = runner.finish(device);
            match self.stage {
                SplitStage::Exploring => {
                    let exploration_expectation =
                        phase.trace.final_expectation().unwrap_or(f64::INFINITY);
                    self.pending_reports.push((
                        restart,
                        RestartReport {
                            index: restart,
                            initial_params: initial_point(self.n_params, restart, self.cfg.seed),
                            final_params: params,
                            phases: vec![phase],
                            survived: true,
                            exploration_expectation,
                            final_expectation: exploration_expectation,
                        },
                    ));
                    self.start_next_restart(shard);
                    if self.tier_idle(Tier::Explore) {
                        pruned = Some(self.merge_and_triage());
                    }
                }
                SplitStage::FineTuning => {
                    let report = &mut self.reports[restart];
                    report.final_params = params;
                    if let Some(e) = phase.trace.final_expectation() {
                        report.final_expectation = e;
                    }
                    report.phases.push(phase);
                    self.start_next_restart(shard);
                    if self.tier_idle(Tier::FineTune) {
                        self.stage = SplitStage::Done;
                    }
                }
                SplitStage::Done => unreachable!("no batches are pending once done"),
            }
        }
        BatchResult {
            fleet_index: self.shards[shard].lane.fleet_index,
            duration: out.executions as f64 * self.shards[shard].lane.secs_per_execution,
            executions: out.executions,
            pruned,
            finished: matches!(self.stage, SplitStage::Done),
        }
    }

    pub(crate) fn into_report(self) -> QoncordReport {
        QoncordReport {
            restarts: self.reports,
            devices: self
                .shards
                .iter()
                .map(|s| DeviceUsage {
                    device: s.lane.device_name.clone(),
                    p_correct: s.lane.p_correct,
                    executions: s.lane.evaluator.executions(),
                })
                .collect(),
            rejected: self.rejected,
            ground_energy: self.ground_energy,
        }
    }

    /// Pops `shard`'s next queued restart into an active phase runner.
    fn start_next_restart(&mut self, shard: usize) {
        if self.shards[shard].queue.is_empty() {
            return;
        }
        let restart = self.shards[shard].queue.remove(0);
        let runner = match self.shards[shard].tier {
            // The shared constructors keep tiering, budgets, and seeding
            // byte-equivalent to the unsplit driver: exploration as the
            // entry rung of a multi-device ladder...
            Tier::Explore => exploration_runner(
                &self.cfg,
                initial_point(self.n_params, restart, self.cfg.seed),
                true,
                restart,
            ),
            // ...and fine-tuning as rung 1 of the two-rung ladder,
            // regardless of which twin runs it.
            Tier::FineTune => finetune_runner(
                &self.cfg,
                self.reports[restart].final_params.clone(),
                1,
                2,
                restart,
            ),
        };
        self.shards[shard].active = Some((restart, runner));
    }

    fn tier_idle(&self, tier: Tier) -> bool {
        self.shards
            .iter()
            .filter(|s| s.tier == tier)
            .all(|s| s.active.is_none())
    }

    /// The exploration barrier: merge shard reports into restart order, run
    /// restart triage on the merged expectations, deal the survivors across
    /// the fine-tuning shards, and return the pruned restart indices.
    fn merge_and_triage(&mut self) -> Vec<usize> {
        let outcomes = std::mem::take(&mut self.pending_reports);
        self.reports = merge_shard_results(outcomes, self.n_restarts)
            .expect("every restart explored exactly once across the shards");
        let pruned = triage_reports(&mut self.reports, self.cfg.selection);
        let survivors: Vec<usize> = (0..self.reports.len())
            .filter(|&i| self.reports[i].survived)
            .collect();
        let finetune: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tier == Tier::FineTune)
            .map(|(i, _)| i)
            .collect();
        for (pos, restart) in survivors.iter().enumerate() {
            let shard = finetune[pos % finetune.len()];
            self.shards[shard].queue.push(*restart);
        }
        self.stage = SplitStage::FineTuning;
        for shard in finetune {
            self.start_next_restart(shard);
        }
        if self.tier_idle(Tier::FineTune) {
            // Degenerate triage kept nothing to fine-tune.
            self.stage = SplitStage::Done;
        }
        pruned
    }
}

/// Binds one shard to its fleet device: builds the evaluator, prices one
/// circuit execution, and applies the same minimum-fidelity filter the
/// ladder construction uses.
fn build_shard_lane(
    factory: &dyn EvaluatorFactory,
    device: &FleetDevice,
    fleet_index: usize,
    seed: u64,
    shots: u64,
    min_fidelity: f64,
) -> Result<ShardLane, RejectedDevice> {
    let calibration = device.calibration().clone();
    let backend = SimulatedBackend::from_calibration(calibration.clone());
    let evaluator =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| factory.make(backend, seed)))
            .map_err(|_| RejectedDevice {
                device: calibration.name().to_owned(),
                reason: RejectionReason::TooSmall,
            })?;
    let stats = evaluator.circuit_stats();
    let p_correct = fidelity::p_correct(&calibration, &stats);
    if p_correct < min_fidelity {
        return Err(RejectedDevice {
            device: calibration.name().to_owned(),
            reason: RejectionReason::BelowMinFidelity {
                estimate: p_correct,
            },
        });
    }
    Ok(ShardLane {
        fleet_index,
        device_name: calibration.name().to_owned(),
        secs_per_execution: calibration.execution_time_s(&stats, shots) / device.speed(),
        evaluator,
        p_correct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::two_lf_two_hf_fleet;
    use qoncord_core::executor::QaoaFactory;
    use qoncord_core::scheduler::QoncordScheduler;
    use qoncord_device::catalog;
    use qoncord_vqa::graph::Graph;
    use qoncord_vqa::maxcut::MaxCut;

    fn factory() -> Box<dyn EvaluatorFactory> {
        Box::new(QaoaFactory {
            problem: MaxCut::new(Graph::paper_graph_7()),
            layers: 1,
        })
    }

    fn spec(n_restarts: usize) -> TenantJob {
        let cfg = QoncordConfig {
            exploration_max_iterations: 8,
            finetune_max_iterations: 10,
            seed: 23,
            ..QoncordConfig::default()
        };
        TenantJob::new(0, "splitter", 0.0, factory())
            .with_restarts(n_restarts)
            .with_config(cfg)
    }

    /// The ladder driver over the twin fleet's primary devices (lf_east +
    /// hf_north), which SplitDriver::new consumes for its primary shards.
    fn ladder_driver(spec: &TenantJob, fleet: &[FleetDevice]) -> JobDriver {
        let selected = [0, 2]
            .map(|i| SelectedDevice {
                fleet_index: i,
                calibration: fleet[i].calibration().clone(),
                speed: fleet[i].speed(),
            })
            .to_vec();
        JobDriver::new(
            spec.config.clone(),
            spec.n_restarts,
            spec.factory.as_ref(),
            &selected,
            1000,
        )
        .expect("twin fleet passes the fidelity filter")
    }

    /// Fully fanned plans over the twin reference fleet: restarts dealt
    /// round-robin-ish over both LF twins, fine-tuning over both HF twins.
    fn plans(n_restarts: usize) -> (TierPlan, TierPlan) {
        let explore: Vec<usize> = (0..n_restarts).collect();
        let (left, right) = explore.split_at(n_restarts / 2);
        (
            vec![(0, left.to_vec()), (1, right.to_vec())],
            vec![(2, Vec::new()), (3, Vec::new())],
        )
    }

    fn drain(mut driver: SplitDriver) -> QoncordReport {
        let mut batches = 0;
        loop {
            let ready = driver.ready_shards();
            if ready.is_empty() {
                break;
            }
            // Round-robin over the ready shards, interleaving them the way
            // concurrent leases would.
            for shard in ready {
                let result = driver.execute_batch(shard);
                assert!(result.duration > 0.0);
                assert!(result.executions > 0);
            }
            batches += 1;
            assert!(batches < 100_000, "runaway split driver");
        }
        driver.into_report()
    }

    #[test]
    fn split_execution_matches_closed_loop_scheduler_per_restart() {
        let spec = spec(5);
        let fleet = two_lf_two_hf_fleet();
        let (explore, finetune) = plans(5);
        let ladder = ladder_driver(&spec, &fleet);
        let driver = SplitDriver::new(&spec, &explore, &finetune, &fleet, 1000, ladder)
            .ok()
            .unwrap();
        assert_eq!(driver.shard_count(), 4);
        let split = drain(driver);

        // The twins share calibration models with the unsplit ladder, so
        // every restart's numbers must match the closed loop bit for bit.
        let closed = QoncordScheduler::new(spec.config.clone())
            .run(
                &[catalog::ibmq_toronto(), catalog::ibmq_kolkata()],
                spec.factory.as_ref(),
                5,
            )
            .unwrap();
        assert_eq!(split.restarts.len(), closed.restarts.len());
        for (a, b) in split.restarts.iter().zip(&closed.restarts) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.survived, b.survived);
            assert_eq!(a.initial_params, b.initial_params);
            assert_eq!(a.exploration_expectation, b.exploration_expectation);
            assert_eq!(a.final_expectation, b.final_expectation);
            assert_eq!(a.final_params, b.final_params);
        }
        assert_eq!(split.best_expectation(), closed.best_expectation());
        assert_eq!(split.total_executions(), closed.total_executions());
    }

    #[test]
    fn every_shard_of_both_tiers_works() {
        let spec = spec(6);
        let fleet = two_lf_two_hf_fleet();
        let (explore, finetune) = plans(6);
        let ladder = ladder_driver(&spec, &fleet);
        let driver = SplitDriver::new(&spec, &explore, &finetune, &fleet, 1000, ladder)
            .ok()
            .unwrap();
        let report = drain(driver);
        assert_eq!(report.devices.len(), 4);
        for usage in &report.devices {
            assert!(
                usage.executions > 0,
                "shard device {} never ran",
                usage.device
            );
        }
    }

    #[test]
    fn shard_checkpoints_name_their_coordinates() {
        let spec = spec(4);
        let fleet = two_lf_two_hf_fleet();
        let (explore, finetune) = plans(4);
        let ladder = ladder_driver(&spec, &fleet);
        let mut driver = SplitDriver::new(&spec, &explore, &finetune, &fleet, 1000, ladder)
            .ok()
            .unwrap();
        let ready = driver.ready_shards();
        assert_eq!(ready, vec![0, 1], "both exploration shards start ready");
        let ckpt = driver.shard_checkpoint(1);
        assert_eq!(ckpt.shard, 1);
        assert_eq!(ckpt.restart, 2, "shard 1 owns the back half of restarts");
        assert_eq!(ckpt.phase.iteration, 0);
        driver.execute_batch(1);
        assert_eq!(driver.shard_checkpoint(1).phase.iteration, 1);
    }
}
