//! Per-job and fleet-level telemetry of an orchestration run: wait times,
//! makespans, device-seconds, lease cost, and released reservations.

use qoncord_core::executor::RejectedDevice;
use qoncord_core::scheduler::QoncordReport;

/// Timing and resource accounting of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTelemetry {
    /// Submission time.
    pub arrival: f64,
    /// When the first batch started (None if the job never ran).
    pub first_start: Option<f64>,
    /// When the last batch completed (None if the job never finished).
    pub completion: Option<f64>,
    /// Device-seconds leased, per fleet device index.
    pub device_seconds: Vec<f64>,
    /// Circuit executions consumed across the fleet.
    pub executions: u64,
    /// Lease cost: device-seconds × each device's price.
    pub cost: f64,
    /// Provisional reservations released when triage pruned their restarts.
    pub released_reservations: usize,
    /// Device-seconds those released reservations had claimed.
    pub released_seconds: f64,
}

impl JobTelemetry {
    pub(crate) fn new(arrival: f64, n_devices: usize) -> Self {
        JobTelemetry {
            arrival,
            first_start: None,
            completion: None,
            device_seconds: vec![0.0; n_devices],
            executions: 0,
            cost: 0.0,
            released_reservations: 0,
            released_seconds: 0.0,
        }
    }

    /// Seconds between submission and the first granted batch.
    pub fn wait_time(&self) -> Option<f64> {
        self.first_start.map(|s| s - self.arrival)
    }

    /// Seconds between submission and completion.
    pub fn turnaround(&self) -> Option<f64> {
        self.completion.map(|c| c - self.arrival)
    }

    /// Total device-seconds leased. Because a job is internally sequential,
    /// this is also its solo (uncontended) makespan.
    pub fn busy_seconds(&self) -> f64 {
        self.device_seconds.iter().sum()
    }
}

/// How a job ended.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// The job ran to completion; `report` is identical in structure (and,
    /// for the same ladder, in content) to the closed-loop scheduler's.
    Completed {
        /// The training outcome.
        report: QoncordReport,
    },
    /// No fleet device passed the job's fidelity filter.
    Rejected {
        /// The rejected devices and reasons.
        rejected: Vec<RejectedDevice>,
    },
}

impl JobStatus {
    /// Whether the job completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobStatus::Completed { .. })
    }

    /// The training report, if the job completed.
    pub fn report(&self) -> Option<&QoncordReport> {
        match self {
            JobStatus::Completed { report } => Some(report),
            JobStatus::Rejected { .. } => None,
        }
    }
}

/// One job's record in the orchestration report.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (as submitted).
    pub id: usize,
    /// Submitting tenant.
    pub tenant: String,
    /// Dispatch priority.
    pub priority: u32,
    /// How the job ended.
    pub status: JobStatus,
    /// Timing and resource telemetry.
    pub telemetry: JobTelemetry,
}

/// One fleet device's aggregate accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTelemetry {
    /// Device name.
    pub name: String,
    /// Seconds the device spent executing leased batches.
    pub busy_seconds: f64,
    /// Circuit executions completed.
    pub executions: u64,
}

/// Fleet-level accounting of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTelemetry {
    /// Per-device accounting, fleet order.
    pub devices: Vec<DeviceTelemetry>,
    /// Virtual time of the last batch completion (0 when nothing ran).
    pub makespan: f64,
}

impl FleetTelemetry {
    /// Per-device utilization: busy seconds over the fleet makespan.
    pub fn utilization(&self) -> Vec<f64> {
        let busy: Vec<f64> = self.devices.iter().map(|d| d.busy_seconds).collect();
        qoncord_cloud::sim::utilization(&busy, self.makespan)
    }

    /// Mean utilization across the fleet.
    pub fn mean_utilization(&self) -> f64 {
        let busy: Vec<f64> = self.devices.iter().map(|d| d.busy_seconds).collect();
        qoncord_cloud::sim::mean_utilization(&busy, self.makespan)
    }
}

/// The orchestrator's full output.
#[derive(Debug, Clone)]
pub struct OrchestratorReport {
    /// Per-job records, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Fleet-level accounting.
    pub fleet: FleetTelemetry,
}

impl OrchestratorReport {
    /// Virtual time of the last batch completion.
    pub fn makespan(&self) -> f64 {
        self.fleet.makespan
    }

    /// What running the same jobs back-to-back on the fleet would take:
    /// each job is internally sequential, so its solo makespan equals its
    /// leased device-seconds, and a serial schedule is their sum.
    pub fn sequential_makespan(&self) -> f64 {
        self.jobs.iter().map(|j| j.telemetry.busy_seconds()).sum()
    }

    /// Multi-tenant speedup over back-to-back execution (1.0 when nothing
    /// ran).
    pub fn speedup_vs_sequential(&self) -> f64 {
        if self.fleet.makespan <= 0.0 {
            return 1.0;
        }
        self.sequential_makespan() / self.fleet.makespan
    }

    /// Total lease cost across jobs.
    pub fn total_cost(&self) -> f64 {
        self.jobs.iter().map(|j| j.telemetry.cost).sum()
    }

    /// Mean wait time over the jobs that ran.
    pub fn mean_wait(&self) -> f64 {
        let waits: Vec<f64> = self
            .jobs
            .iter()
            .filter_map(|j| j.telemetry.wait_time())
            .collect();
        if waits.is_empty() {
            return 0.0;
        }
        waits.iter().sum::<f64>() / waits.len() as f64
    }

    /// Number of jobs that completed.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.status.is_completed()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_telemetry_derived_metrics() {
        let mut t = JobTelemetry::new(5.0, 2);
        assert_eq!(t.wait_time(), None);
        t.first_start = Some(7.5);
        t.completion = Some(20.0);
        t.device_seconds = vec![3.0, 4.0];
        assert_eq!(t.wait_time(), Some(2.5));
        assert_eq!(t.turnaround(), Some(15.0));
        assert_eq!(t.busy_seconds(), 7.0);
    }

    #[test]
    fn fleet_utilization_bounds() {
        let fleet = FleetTelemetry {
            devices: vec![
                DeviceTelemetry {
                    name: "a".into(),
                    busy_seconds: 5.0,
                    executions: 10,
                },
                DeviceTelemetry {
                    name: "b".into(),
                    busy_seconds: 10.0,
                    executions: 20,
                },
            ],
            makespan: 10.0,
        };
        assert_eq!(fleet.utilization(), vec![0.5, 1.0]);
        assert!((fleet.mean_utilization() - 0.75).abs() < 1e-12);
        let idle = FleetTelemetry {
            devices: fleet.devices.clone(),
            makespan: 0.0,
        };
        assert_eq!(idle.utilization(), vec![0.0, 0.0]);
    }
}
