//! Per-job and fleet-level telemetry of an orchestration run: wait times,
//! makespans, device-seconds, lease cost, released reservations, eviction
//! counts, wasted-work seconds, SLA attainment, and the admission
//! calibration trail (margin applied, realized estimate error, and the
//! margin model's per-tier learning history).
//!
//! # Examples
//!
//! Derived job metrics are pure functions of the recorded fields:
//!
//! ```
//! use qoncord_orchestrator::telemetry::JobTelemetry;
//!
//! let mut t = JobTelemetry::new(5.0, 2);
//! t.first_start = Some(7.0);
//! t.completion = Some(19.0);
//! t.deadline = Some(20.0);
//! t.device_seconds = vec![4.0, 6.0];
//! assert_eq!(t.wait_time(), Some(2.0));
//! assert_eq!(t.turnaround(), Some(14.0));
//! assert_eq!(t.busy_seconds(), 10.0);
//! assert_eq!(t.sla_met(), Some(true));
//! ```

use crate::calibration::MarginSnapshot;
use qoncord_cloud::policy::FeasibilityEstimate;
use qoncord_core::executor::RejectedDevice;
use qoncord_core::scheduler::QoncordReport;

/// Timing and resource accounting of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTelemetry {
    /// Submission time.
    pub arrival: f64,
    /// When the first batch started (None if the job never ran).
    pub first_start: Option<f64>,
    /// When the last batch completed (None if the job never finished).
    pub completion: Option<f64>,
    /// Absolute deadline the job ran under, post-admission (None for
    /// best-effort jobs, including downgraded ones).
    pub deadline: Option<f64>,
    /// Whether admission control stripped an unkeepable deadline and ran
    /// the job as best-effort.
    pub downgraded: bool,
    /// The admission-time projection of the job's completion from fleet
    /// load (recorded for every job that reached admission).
    pub admission_estimate: Option<FeasibilityEstimate>,
    /// The safety margin (seconds) admission judged the job's deadline
    /// under — the static configuration value, or the learned per-tier
    /// margin in calibrated mode (`None` for deadline-free jobs, which are
    /// never judged).
    pub admission_margin: Option<f64>,
    /// Realized estimate error, seconds: completion minus the projected
    /// completion (positive = the projection was optimistic). `None` until
    /// the job completes.
    pub estimate_error: Option<f64>,
    /// Device-seconds leased, per fleet device index.
    pub device_seconds: Vec<f64>,
    /// Circuit executions consumed across the fleet.
    pub executions: u64,
    /// Lease cost: device-seconds × each device's price.
    pub cost: f64,
    /// Provisional reservations released when triage pruned their restarts.
    pub released_reservations: usize,
    /// Device-seconds those released reservations had claimed.
    pub released_seconds: f64,
    /// Times one of the job's leases was evicted by a more urgent tenant.
    pub evictions: usize,
    /// Device-seconds of lease occupancy those evictions wasted.
    pub wasted_seconds: f64,
    /// Number of shards the job's restarts were fanned into (1 = unsplit).
    pub shards: usize,
    /// Device-seconds of wasted eviction occupancy per shard, indexed by
    /// shard id (shorter than `shards` when trailing shards were never
    /// evicted). Sums to [`wasted_seconds`](Self::wasted_seconds).
    pub shard_wasted_seconds: Vec<f64>,
}

impl JobTelemetry {
    /// An empty record for a job submitted at `arrival` against an
    /// `n_devices`-device fleet (all counters zero, nothing started).
    pub fn new(arrival: f64, n_devices: usize) -> Self {
        JobTelemetry {
            arrival,
            first_start: None,
            completion: None,
            deadline: None,
            downgraded: false,
            admission_estimate: None,
            admission_margin: None,
            estimate_error: None,
            device_seconds: vec![0.0; n_devices],
            executions: 0,
            cost: 0.0,
            released_reservations: 0,
            released_seconds: 0.0,
            evictions: 0,
            wasted_seconds: 0.0,
            shards: 1,
            shard_wasted_seconds: Vec::new(),
        }
    }

    /// Accounts `seconds` of evicted-lease occupancy against `shard`.
    pub(crate) fn record_shard_waste(&mut self, shard: usize, seconds: f64) {
        if self.shard_wasted_seconds.len() <= shard {
            self.shard_wasted_seconds.resize(shard + 1, 0.0);
        }
        self.shard_wasted_seconds[shard] += seconds;
    }

    /// Seconds between submission and the first granted batch.
    pub fn wait_time(&self) -> Option<f64> {
        self.first_start.map(|s| s - self.arrival)
    }

    /// Seconds between submission and completion.
    pub fn turnaround(&self) -> Option<f64> {
        self.completion.map(|c| c - self.arrival)
    }

    /// Total device-seconds leased. Because a job is internally sequential,
    /// this is also its solo (uncontended) makespan.
    pub fn busy_seconds(&self) -> f64 {
        self.device_seconds.iter().sum()
    }

    /// Whether the job met its deadline: `Some(true/false)` when it ran
    /// under one and completed, `None` for best-effort or unfinished jobs.
    pub fn sla_met(&self) -> Option<bool> {
        match (self.deadline, self.completion) {
            (Some(deadline), Some(completion)) => Some(completion <= deadline),
            _ => None,
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// The job ran to completion; `report` is identical in structure (and,
    /// for the same ladder, in content) to the closed-loop scheduler's.
    Completed {
        /// The training outcome.
        report: QoncordReport,
    },
    /// No fleet device passed the job's fidelity filter.
    Rejected {
        /// The rejected devices and reasons.
        rejected: Vec<RejectedDevice>,
    },
    /// Admission control declined the job: the fleet-load projection said
    /// its deadline could not be met.
    Denied {
        /// The projection that condemned it.
        estimate: FeasibilityEstimate,
        /// The deadline it could not meet.
        deadline: f64,
    },
}

impl JobStatus {
    /// Whether the job completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobStatus::Completed { .. })
    }

    /// Whether admission control denied the job.
    pub fn is_denied(&self) -> bool {
        matches!(self, JobStatus::Denied { .. })
    }

    /// The training report, if the job completed.
    pub fn report(&self) -> Option<&QoncordReport> {
        match self {
            JobStatus::Completed { report } => Some(report),
            JobStatus::Rejected { .. } | JobStatus::Denied { .. } => None,
        }
    }
}

/// One job's record in the orchestration report.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (as submitted).
    pub id: usize,
    /// Submitting tenant.
    pub tenant: String,
    /// Dispatch priority (as submitted; see
    /// [`JobTelemetry::downgraded`] for jobs admission stripped it from).
    pub priority: u32,
    /// How the job ended.
    pub status: JobStatus,
    /// Timing and resource telemetry.
    pub telemetry: JobTelemetry,
}

/// One fleet device's aggregate accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTelemetry {
    /// Device name.
    pub name: String,
    /// Seconds the device spent executing leased batches.
    pub busy_seconds: f64,
    /// Seconds of lease occupancy evictions wasted on this device.
    pub wasted_seconds: f64,
    /// Leases recalled from this device by preemption.
    pub evictions: u64,
    /// Circuit executions completed.
    pub executions: u64,
}

/// Fleet-level accounting of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTelemetry {
    /// Per-device accounting, fleet order.
    pub devices: Vec<DeviceTelemetry>,
    /// Virtual time of the last batch completion (0 when nothing ran).
    pub makespan: f64,
}

impl FleetTelemetry {
    /// Per-device utilization: busy seconds over the fleet makespan.
    pub fn utilization(&self) -> Vec<f64> {
        let busy: Vec<f64> = self.devices.iter().map(|d| d.busy_seconds).collect();
        qoncord_cloud::sim::utilization(&busy, self.makespan)
    }

    /// Mean utilization across the fleet.
    pub fn mean_utilization(&self) -> f64 {
        let busy: Vec<f64> = self.devices.iter().map(|d| d.busy_seconds).collect();
        qoncord_cloud::sim::mean_utilization(&busy, self.makespan)
    }

    /// Leases recalled by preemption across the fleet.
    pub fn total_evictions(&self) -> u64 {
        self.devices.iter().map(|d| d.evictions).sum()
    }

    /// Device-seconds evictions wasted across the fleet.
    pub fn total_wasted_seconds(&self) -> f64 {
        self.devices.iter().map(|d| d.wasted_seconds).sum()
    }
}

/// Per-tenant service-quality rollup of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSla {
    /// The tenant.
    pub tenant: String,
    /// Jobs the tenant submitted.
    pub jobs: usize,
    /// Jobs that ran under a deadline and completed.
    pub with_deadline: usize,
    /// Of those, jobs that met their deadline.
    pub met: usize,
    /// Jobs admission control denied outright.
    pub denied: usize,
    /// Jobs admitted only after their deadline was stripped.
    pub downgraded: usize,
    /// Lease evictions the tenant's jobs suffered.
    pub evictions: usize,
    /// Device-seconds of the tenant's lease occupancy evictions wasted.
    pub wasted_seconds: f64,
}

impl TenantSla {
    /// Fraction of the tenant's deadline jobs that met their deadline
    /// (`None` when it had none).
    pub fn attainment(&self) -> Option<f64> {
        (self.with_deadline > 0).then(|| self.met as f64 / self.with_deadline as f64)
    }
}

/// A tenant's fair-share balance when the run ended: real consumption
/// minus whatever decay erased, with every job-scoped credit already
/// charged back. This is the number the next run's dispatch priorities
/// would start from — the decay/credit regression tests pin it.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantUsage {
    /// The tenant.
    pub tenant: String,
    /// Fair-share consumed-seconds balance at the end of the run.
    pub consumed_seconds: f64,
}

/// The orchestrator's full output.
#[derive(Debug, Clone)]
pub struct OrchestratorReport {
    /// Per-job records, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Fleet-level accounting.
    pub fleet: FleetTelemetry,
    /// End-of-run fair-share balances, sorted by tenant.
    pub tenant_usage: Vec<TenantUsage>,
    /// Queue-operation counters of the run's fair-share dispatch queue
    /// (pushes, pops, cancels, amortized index rebuilds, incremental
    /// backlog refreshes) — the observability hook for spotting an
    /// "O(log n)" path that regressed to rescans.
    pub queue_ops: qoncord_cloud::fairshare::QueueOpStats,
    /// The margin model's learning history, in ingestion order: one entry
    /// per completed (error sample) or denied (no sample) job, carrying the
    /// per-tier margin in force after the outcome. Empty when no job
    /// reached admission.
    pub calibration: Vec<MarginSnapshot>,
    /// The flight recorder's always-on aggregation of the run's event
    /// stream: event counts, log-scale histograms of wait / turnaround /
    /// queue depth / per-device backlog, and per-device busy/idle
    /// timelines — populated whether or not a
    /// [`TraceSink`](crate::trace::TraceSink) was attached.
    pub trace: crate::trace::TraceSummary,
    /// Wall-clock cost attribution of the run: a snapshot of the
    /// [`Profiler`](qoncord_prof::Profiler) installed on the running thread
    /// (empty when none was), with folded span paths from the engine event
    /// loop down through queue ops, transpilation, and sim kernels. Export
    /// with [`qoncord_prof::folded_export`] or merge into the Perfetto
    /// timeline via [`chrome_export_with_profile`](crate::trace::chrome_export_with_profile).
    pub perf: qoncord_prof::ProfileReport,
}

impl OrchestratorReport {
    /// A tenant's end-of-run fair-share balance (0.0 for unknown tenants).
    pub fn tenant_balance(&self, tenant: &str) -> f64 {
        self.tenant_usage
            .iter()
            .find(|t| t.tenant == tenant)
            .map_or(0.0, |t| t.consumed_seconds)
    }

    /// Virtual time of the last batch completion.
    pub fn makespan(&self) -> f64 {
        self.fleet.makespan
    }

    /// What running the same jobs back-to-back on the fleet would take:
    /// each job is internally sequential, so its solo makespan equals its
    /// leased device-seconds, and a serial schedule is their sum.
    pub fn sequential_makespan(&self) -> f64 {
        self.jobs.iter().map(|j| j.telemetry.busy_seconds()).sum()
    }

    /// Multi-tenant speedup over back-to-back execution (1.0 when nothing
    /// ran).
    pub fn speedup_vs_sequential(&self) -> f64 {
        if self.fleet.makespan <= 0.0 {
            return 1.0;
        }
        self.sequential_makespan() / self.fleet.makespan
    }

    /// Total lease cost across jobs.
    pub fn total_cost(&self) -> f64 {
        self.jobs.iter().map(|j| j.telemetry.cost).sum()
    }

    /// Mean wait time over the jobs that ran.
    pub fn mean_wait(&self) -> f64 {
        let waits: Vec<f64> = self
            .jobs
            .iter()
            .filter_map(|j| j.telemetry.wait_time())
            .collect();
        if waits.is_empty() {
            return 0.0;
        }
        waits.iter().sum::<f64>() / waits.len() as f64
    }

    /// Number of jobs that completed.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.status.is_completed()).count()
    }

    /// Number of jobs admission control denied.
    pub fn denied(&self) -> usize {
        self.jobs.iter().filter(|j| j.status.is_denied()).count()
    }

    /// Lease evictions across the run.
    pub fn total_evictions(&self) -> u64 {
        self.fleet.total_evictions()
    }

    /// Device-seconds of occupancy evictions wasted across the run.
    pub fn total_wasted_seconds(&self) -> f64 {
        self.fleet.total_wasted_seconds()
    }

    /// The margin trajectory of one device tier, as `(virtual time, margin
    /// seconds)` points in ingestion order across all service classes —
    /// the per-tier learning curve the calibration bench plots.
    pub fn margin_history(&self, tier: usize) -> Vec<(f64, f64)> {
        self.calibration
            .iter()
            .filter(|s| s.key.tier == tier)
            .map(|s| (s.time, s.margin))
            .collect()
    }

    /// Mean absolute realized estimate error over completed jobs (`None`
    /// when nothing completed with a recorded projection).
    pub fn mean_abs_estimate_error(&self) -> Option<f64> {
        let errors: Vec<f64> = self
            .jobs
            .iter()
            .filter_map(|j| j.telemetry.estimate_error)
            .collect();
        (!errors.is_empty())
            .then(|| errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64)
    }

    /// Fraction of deadline-carrying completed jobs that met their deadline
    /// (`None` when no job ran under a deadline).
    pub fn sla_attainment(&self) -> Option<f64> {
        let verdicts: Vec<bool> = self
            .jobs
            .iter()
            .filter_map(|j| j.telemetry.sla_met())
            .collect();
        (!verdicts.is_empty())
            .then(|| verdicts.iter().filter(|&&m| m).count() as f64 / verdicts.len() as f64)
    }

    /// Per-tenant service-quality rollups, in order of first submission.
    pub fn tenant_sla(&self) -> Vec<TenantSla> {
        let mut rollups: Vec<TenantSla> = Vec::new();
        for job in &self.jobs {
            let entry = match rollups.iter_mut().find(|t| t.tenant == job.tenant) {
                Some(entry) => entry,
                None => {
                    rollups.push(TenantSla {
                        tenant: job.tenant.clone(),
                        jobs: 0,
                        with_deadline: 0,
                        met: 0,
                        denied: 0,
                        downgraded: 0,
                        evictions: 0,
                        wasted_seconds: 0.0,
                    });
                    rollups.last_mut().expect("just pushed")
                }
            };
            entry.jobs += 1;
            if let Some(met) = job.telemetry.sla_met() {
                entry.with_deadline += 1;
                entry.met += usize::from(met);
            }
            entry.denied += usize::from(job.status.is_denied());
            entry.downgraded += usize::from(job.telemetry.downgraded);
            entry.evictions += job.telemetry.evictions;
            entry.wasted_seconds += job.telemetry.wasted_seconds;
        }
        rollups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_telemetry_derived_metrics() {
        let mut t = JobTelemetry::new(5.0, 2);
        assert_eq!(t.wait_time(), None);
        assert_eq!(t.sla_met(), None);
        t.first_start = Some(7.5);
        t.completion = Some(20.0);
        t.device_seconds = vec![3.0, 4.0];
        assert_eq!(t.wait_time(), Some(2.5));
        assert_eq!(t.turnaround(), Some(15.0));
        assert_eq!(t.busy_seconds(), 7.0);
        assert_eq!(t.sla_met(), None, "no deadline, no verdict");
        t.deadline = Some(25.0);
        assert_eq!(t.sla_met(), Some(true));
        t.deadline = Some(19.0);
        assert_eq!(t.sla_met(), Some(false));
    }

    #[test]
    fn fleet_utilization_bounds() {
        let fleet = FleetTelemetry {
            devices: vec![
                DeviceTelemetry {
                    name: "a".into(),
                    busy_seconds: 5.0,
                    wasted_seconds: 0.0,
                    evictions: 0,
                    executions: 10,
                },
                DeviceTelemetry {
                    name: "b".into(),
                    busy_seconds: 10.0,
                    wasted_seconds: 2.5,
                    evictions: 3,
                    executions: 20,
                },
            ],
            makespan: 10.0,
        };
        assert_eq!(fleet.utilization(), vec![0.5, 1.0]);
        assert!((fleet.mean_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(fleet.total_evictions(), 3);
        assert!((fleet.total_wasted_seconds() - 2.5).abs() < 1e-12);
        let idle = FleetTelemetry {
            devices: fleet.devices.clone(),
            makespan: 0.0,
        };
        assert_eq!(idle.utilization(), vec![0.0, 0.0]);
    }

    #[test]
    fn tenant_rollups_group_and_count() {
        let record = |tenant: &str, deadline, completion, evictions| {
            let mut telemetry = JobTelemetry::new(0.0, 1);
            telemetry.deadline = deadline;
            telemetry.completion = completion;
            telemetry.evictions = evictions;
            JobRecord {
                id: 0,
                tenant: tenant.into(),
                priority: 0,
                status: JobStatus::Completed {
                    report: QoncordReport {
                        restarts: vec![],
                        devices: vec![],
                        rejected: vec![],
                        ground_energy: 0.0,
                    },
                },
                telemetry,
            }
        };
        let report = OrchestratorReport {
            jobs: vec![
                record("a", Some(10.0), Some(8.0), 1),
                record("b", None, Some(5.0), 0),
                record("a", Some(10.0), Some(12.0), 2),
            ],
            fleet: FleetTelemetry {
                devices: vec![],
                makespan: 12.0,
            },
            tenant_usage: vec![TenantUsage {
                tenant: "a".into(),
                consumed_seconds: 13.0,
            }],
            queue_ops: qoncord_cloud::fairshare::QueueOpStats::default(),
            calibration: Vec::new(),
            trace: crate::trace::TraceSummary::default(),
            perf: qoncord_prof::ProfileReport::default(),
        };
        assert_eq!(report.tenant_balance("a"), 13.0);
        assert_eq!(report.tenant_balance("zzz"), 0.0);
        let sla = report.tenant_sla();
        assert_eq!(sla.len(), 2);
        assert_eq!(sla[0].tenant, "a");
        assert_eq!((sla[0].jobs, sla[0].with_deadline, sla[0].met), (2, 2, 1));
        assert_eq!(sla[0].evictions, 3);
        assert_eq!(sla[0].attainment(), Some(0.5));
        assert_eq!(sla[1].attainment(), None);
        assert_eq!(report.sla_attainment(), Some(0.5));
    }

    /// Derived report metrics stay well-defined (never NaN) on degenerate
    /// inputs: an empty run, and a run where nothing ever executed.
    #[test]
    fn derived_metrics_are_nan_free_on_empty_and_zero_makespan_runs() {
        let empty = OrchestratorReport {
            jobs: vec![],
            fleet: FleetTelemetry {
                devices: vec![],
                makespan: 0.0,
            },
            tenant_usage: vec![],
            queue_ops: qoncord_cloud::fairshare::QueueOpStats::default(),
            calibration: Vec::new(),
            trace: crate::trace::TraceSummary::default(),
            perf: qoncord_prof::ProfileReport::default(),
        };
        assert_eq!(empty.speedup_vs_sequential(), 1.0);
        assert_eq!(empty.mean_wait(), 0.0);
        assert_eq!(empty.fleet.mean_utilization(), 0.0);
        assert_eq!(empty.mean_abs_estimate_error(), None);
        assert_eq!(empty.sla_attainment(), None);
        assert_eq!(empty.sequential_makespan(), 0.0);
        assert_eq!(empty.total_cost(), 0.0);
        assert!(empty.fleet.utilization().is_empty());

        // Devices exist but nothing ran: makespan 0 must not divide.
        let idle = OrchestratorReport {
            jobs: vec![],
            fleet: FleetTelemetry {
                devices: vec![DeviceTelemetry {
                    name: "a".into(),
                    busy_seconds: 0.0,
                    wasted_seconds: 0.0,
                    evictions: 0,
                    executions: 0,
                }],
                makespan: 0.0,
            },
            ..empty.clone()
        };
        assert_eq!(idle.speedup_vs_sequential(), 1.0);
        assert_eq!(idle.fleet.mean_utilization(), 0.0);
        assert_eq!(idle.fleet.utilization(), vec![0.0]);
        assert!(!idle.fleet.mean_utilization().is_nan());
    }
}
