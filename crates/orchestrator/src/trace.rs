//! Flight recorder for the orchestration engine: a typed event stream of
//! every scheduling decision, pluggable sinks to capture it, and consumers
//! that turn a captured run into a Perfetto timeline or rebuild the run's
//! telemetry from the events alone.
//!
//! # Event contract
//!
//! The engine emits one [`TraceRecord`] per *decision*, not per internal
//! queue operation: a request is pushed once ([`TraceEvent::QueuePush`])
//! and granted once ([`TraceEvent::LeaseGrant`]) even when the dispatcher
//! internally re-ranks candidates (the urgent-override pop/re-push inside
//! dispatch is invisible, by design — it does not change any reservation's
//! lifecycle). Records carry the virtual clock and a per-run sequence
//! number; within one run, `seq` is the total order of decisions.
//!
//! The stream is **complete and lossless**: [`reconstruct_report`] rebuilds
//! the engine's per-job and fleet telemetry from the records alone, and the
//! integration suite asserts the rebuild matches the engine's own
//! [`OrchestratorReport`] bit-for-bit. It is also **deterministic**: the
//! same configuration and seed produce a byte-identical JSONL serialization
//! (see [`JsonlSink`]).
//!
//! # Sinks
//!
//! [`TraceSink`] is the pluggable consumer interface. Provided sinks:
//!
//! - [`NoopSink`] — discards everything (the default when no sink is
//!   attached; the engine additionally always feeds an internal
//!   [`MetricsSink`], whose aggregates land on the report).
//! - [`MemorySink`] — unbounded capture, for export and replay.
//! - [`RingBufferSink`] — bounded capture that drops oldest-first.
//! - [`JsonlSink`] — one JSON object per record, byte-deterministic.
//! - [`MetricsSink`] — streaming aggregation: log-scale histograms of
//!   wait, turnaround, queue depth, and per-device backlog, plus
//!   per-device busy/wasted timelines.
//!
//! Attach a sink through [`TraceHandle`] on
//! [`OrchestratorConfig::trace`](crate::engine::OrchestratorConfig):
//!
//! ```
//! use qoncord_core::executor::QaoaFactory;
//! use qoncord_core::scheduler::QoncordConfig;
//! use qoncord_orchestrator::trace::{self, MemorySink, TraceHandle};
//! use qoncord_orchestrator::{
//!     two_lf_one_hf_fleet, Orchestrator, OrchestratorConfig, TenantJob,
//! };
//! use qoncord_vqa::{graph::Graph, maxcut::MaxCut};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let sink = Rc::new(RefCell::new(MemorySink::new()));
//! let config = OrchestratorConfig {
//!     trace: TraceHandle::to(sink.clone()),
//!     ..OrchestratorConfig::default()
//! };
//! let factory = QaoaFactory {
//!     problem: MaxCut::new(Graph::new(3, &[(0, 1, 1.0), (1, 2, 1.0)])),
//!     layers: 1,
//! };
//! let job = TenantJob::new(0, "alice", 0.0, Box::new(factory))
//!     .with_restarts(1)
//!     .with_config(QoncordConfig {
//!         exploration_max_iterations: 4,
//!         finetune_max_iterations: 5,
//!         ..QoncordConfig::default()
//!     });
//! let report = Orchestrator::new(config, two_lf_one_hf_fleet()).run(&[job]);
//!
//! // The captured stream replays into the exact same telemetry...
//! let records = sink.borrow().records().to_vec();
//! let rebuilt = trace::reconstruct_report(&records);
//! assert!(rebuilt.diff(&report).is_empty());
//! // ...and exports to a Chrome/Perfetto trace with one track per device.
//! let chrome = trace::chrome_export(&records);
//! let summary = trace::validate_chrome_trace(&chrome).unwrap();
//! assert!(summary.tracks.iter().any(|t| t.duration_events > 0));
//! ```

use crate::admission::AdmissionDecision;
use crate::calibration::MarginSnapshot;
use crate::telemetry::{DeviceTelemetry, FleetTelemetry, JobTelemetry, OrchestratorReport};
use qoncord_cloud::policy::FeasibilityEstimate;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One engine decision: the event, stamped with the virtual clock and the
/// run-wide decision sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the decision (seconds).
    pub time: f64,
    /// Position in the run's total decision order (0-based, dense).
    pub seq: u64,
    /// The decision.
    pub event: TraceEvent,
}

/// Every decision the orchestration engine makes, as a typed event.
///
/// Job, device, shard, and lease identifiers match the ones on the
/// engine's report: `job` is the submission index (position in the `jobs`
/// slice handed to [`Orchestrator::run`](crate::engine::Orchestrator::run)),
/// `device` the fleet index, `lease` the
/// [`Lease::id`](crate::lease::Lease::id).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Run preamble: one fleet device's identity and market metadata
    /// (emitted once per device before any job event, so every consumer
    /// can resolve device indices without the fleet at hand).
    DeviceDefined {
        /// Fleet index.
        device: usize,
        /// Device name.
        name: String,
        /// Quality tier (rank of advertised fidelity; the calibration key
        /// axis).
        tier: usize,
        /// Relative speed.
        speed: f64,
        /// Lease price per device-second.
        cost_per_second: f64,
    },
    /// A job arrived and entered placement.
    Arrival {
        /// Submission index.
        job: usize,
        /// The id the submitter gave the job.
        id: usize,
        /// Submitting tenant.
        tenant: String,
        /// Requested dispatch priority.
        priority: u32,
    },
    /// Placement fanned the job into shards (1 = unsplit); `devices[s]` is
    /// the fleet device shard `s` runs its exploration on.
    ShardPlan {
        /// Submission index.
        job: usize,
        /// Shard count.
        shards: usize,
        /// Per-shard entry device, indexed by shard.
        devices: Vec<usize>,
    },
    /// No fleet device passed the job's fidelity filter; it never reached
    /// admission.
    FilterRejected {
        /// Submission index.
        job: usize,
        /// How many devices the filter rejected.
        devices: usize,
    },
    /// The admission verdict, with the feasibility projection and margin
    /// that produced it. `estimate.queue_seconds` is the backlog-ahead
    /// input: the queueing delay the projection charged the job for.
    AdmissionVerdict {
        /// Submission index.
        job: usize,
        /// Admit, downgrade, or reject.
        decision: AdmissionDecision,
        /// The completion projection the deadline was judged against.
        estimate: FeasibilityEstimate,
        /// Safety margin (seconds) the deadline was judged under — the
        /// learned per-tier margin in calibrated mode (`None` for
        /// deadline-free jobs, which are never judged).
        margin: Option<f64>,
        /// The deadline the job carries forward (`None` for best-effort
        /// and downgraded jobs).
        deadline: Option<f64>,
        /// The resolved deadline the verdict assessed (`None` for
        /// deadline-free jobs).
        assessed_deadline: Option<f64>,
    },
    /// Fair-share usage credit granted for the job's priority, scoped to
    /// its lifetime.
    PriorityCredit {
        /// Submission index.
        job: usize,
        /// Device-seconds of credit.
        credit: f64,
    },
    /// A batch request entered the fair-share queue for a device.
    QueuePush {
        /// Reservation id (unique per run).
        reservation: usize,
        /// Submission index.
        job: usize,
        /// Shard the batch serves.
        shard: usize,
        /// Target fleet device.
        device: usize,
        /// Estimated batch seconds.
        seconds: f64,
        /// Whether this is an evicted batch re-entering the queue.
        requeued: bool,
    },
    /// A provisional fine-tuning hold entered the queue for a restart.
    HoldPush {
        /// Reservation id.
        reservation: usize,
        /// Submission index.
        job: usize,
        /// Restart the hold reserves capacity for.
        restart: usize,
        /// Target fleet device.
        device: usize,
        /// Held device-seconds.
        seconds: f64,
    },
    /// Triage resolved a provisional hold: released outright when its
    /// restart was pruned, superseded by real batch requests otherwise.
    HoldRelease {
        /// Reservation id.
        reservation: usize,
        /// Submission index.
        job: usize,
        /// The restart whose hold this was.
        restart: usize,
        /// The device whose capacity is freed.
        device: usize,
        /// Held device-seconds returned.
        seconds: f64,
        /// Whether the restart was pruned (a released reservation in the
        /// job's telemetry) or survived into real batches.
        pruned: bool,
    },
    /// Dispatch converted a queued batch request into a device lease.
    LeaseGrant {
        /// Lease id.
        lease: u64,
        /// The granted reservation.
        reservation: usize,
        /// Submission index.
        job: usize,
        /// Shard the lease serves.
        shard: usize,
        /// Leased fleet device.
        device: usize,
        /// Leased device-seconds.
        seconds: f64,
        /// Virtual time the batch completes if not evicted.
        expires_at: f64,
    },
    /// A lease expired with its batch intact: the deferred compute ran and
    /// the device-seconds were charged.
    LeaseComplete {
        /// Lease id.
        lease: u64,
        /// Submission index.
        job: usize,
        /// Shard the lease served.
        shard: usize,
        /// Fleet device.
        device: usize,
        /// Virtual time the lease was granted.
        granted_at: f64,
        /// Realized batch duration (device-seconds charged).
        seconds: f64,
        /// Circuit executions the batch consumed.
        executions: u64,
        /// Whether this batch finished the whole job.
        finished: bool,
    },
    /// The expiry event of an already-evicted lease fired; the device had
    /// moved on, so the expiry was a no-op.
    StaleExpiry {
        /// The evicted lease whose expiry fired.
        lease: u64,
        /// The device it used to occupy.
        device: usize,
    },
    /// Preemption recalled a running lease; the victim's batch re-enters
    /// the queue (as the `requeued` [`TraceEvent::QueuePush`] that follows)
    /// with fair-share credit for the burned occupancy.
    Eviction {
        /// The recalled lease.
        lease: u64,
        /// The victim job.
        job: usize,
        /// The victim shard.
        shard: usize,
        /// The freed device.
        device: usize,
        /// Device-seconds of occupancy the eviction wasted.
        burned_seconds: f64,
        /// Fair-share usage credit granted to the victim for the burn.
        credit: f64,
    },
    /// The margin model ingested an outcome: a completion's
    /// realized-vs-projected error sample, or a denial (no sample). The
    /// snapshot is exactly the entry appended to the report's calibration
    /// history.
    CalibrationUpdate {
        /// The job whose outcome fed the model.
        job: usize,
        /// The history entry the outcome produced.
        snapshot: MarginSnapshot,
    },
    /// The virtual clock crossed one or more usage-decay epochs and every
    /// fair-share balance (and outstanding job credit) was multiplied by
    /// `factor`.
    DecayEpoch {
        /// Epochs crossed since the last application.
        crossed: u64,
        /// The applied multiplier (per-epoch factor raised to `crossed`).
        factor: f64,
    },
    /// The job's last batch completed and its credits were charged back.
    JobComplete {
        /// Submission index.
        job: usize,
    },
}

impl TraceEvent {
    /// Stable machine-readable name of the event kind (the `"ev"` field of
    /// the JSONL serialization).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::DeviceDefined { .. } => "device_defined",
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::ShardPlan { .. } => "shard_plan",
            TraceEvent::FilterRejected { .. } => "filter_rejected",
            TraceEvent::AdmissionVerdict { .. } => "admission_verdict",
            TraceEvent::PriorityCredit { .. } => "priority_credit",
            TraceEvent::QueuePush { .. } => "queue_push",
            TraceEvent::HoldPush { .. } => "hold_push",
            TraceEvent::HoldRelease { .. } => "hold_release",
            TraceEvent::LeaseGrant { .. } => "lease_grant",
            TraceEvent::LeaseComplete { .. } => "lease_complete",
            TraceEvent::StaleExpiry { .. } => "stale_expiry",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::CalibrationUpdate { .. } => "calibration_update",
            TraceEvent::DecayEpoch { .. } => "decay_epoch",
            TraceEvent::JobComplete { .. } => "job_complete",
        }
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// A consumer of the engine's event stream.
///
/// The engine calls [`record`](TraceSink::record) once per decision, in
/// decision order, with strictly increasing `seq`. Implementations must
/// not panic on any well-formed record.
pub trait TraceSink {
    /// Ingests one record.
    fn record(&mut self, record: &TraceRecord);
}

/// The default sink: discards every record.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _record: &TraceRecord) {}
}

/// Unbounded in-memory capture, for post-run export and replay.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The captured records, in decision order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the sink into its records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
    }
}

/// Bounded in-memory capture: keeps the most recent `capacity` records,
/// dropping oldest-first once full — the black-box flight recorder for
/// long runs where only the tail matters.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buffer: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink {
            buffer: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buffer.iter().cloned().collect()
    }

    /// Records evicted to make room (total over the sink's lifetime).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, record: &TraceRecord) {
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
            self.dropped += 1;
        }
        self.buffer.push_back(record.clone());
    }
}

/// Serializes each record as one JSON object per line.
///
/// The serialization is **byte-deterministic**: field order is fixed, and
/// floats are written with Rust's shortest round-trip formatting, so the
/// same run produces the same bytes and every value parses back exactly.
/// Optional fields are written as `null` rather than omitted, keeping each
/// event kind's schema fixed.
#[derive(Debug, Clone, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// The serialized lines so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink into its serialized lines.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, record: &TraceRecord) {
        write_record_json(record, &mut self.out);
        self.out.push('\n');
    }
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a finite `f64` as a JSON number (shortest round-trip decimal).
fn push_json_f64(v: f64, out: &mut String) {
    debug_assert!(v.is_finite(), "trace events never carry non-finite values");
    let _ = write!(out, "{v}");
}

fn push_json_opt_f64(v: Option<f64>, out: &mut String) {
    match v {
        Some(v) => push_json_f64(v, out),
        None => out.push_str("null"),
    }
}

/// One record as a single-line JSON object (no trailing newline).
fn write_record_json(record: &TraceRecord, out: &mut String) {
    out.push_str("{\"t\":");
    push_json_f64(record.time, out);
    let _ = write!(
        out,
        ",\"seq\":{},\"ev\":\"{}\"",
        record.seq,
        record.event.kind()
    );
    match &record.event {
        TraceEvent::DeviceDefined {
            device,
            name,
            tier,
            speed,
            cost_per_second,
        } => {
            let _ = write!(out, ",\"device\":{device},\"name\":");
            push_json_string(name, out);
            let _ = write!(out, ",\"tier\":{tier},\"speed\":");
            push_json_f64(*speed, out);
            out.push_str(",\"cost_per_second\":");
            push_json_f64(*cost_per_second, out);
        }
        TraceEvent::Arrival {
            job,
            id,
            tenant,
            priority,
        } => {
            let _ = write!(out, ",\"job\":{job},\"id\":{id},\"tenant\":");
            push_json_string(tenant, out);
            let _ = write!(out, ",\"priority\":{priority}");
        }
        TraceEvent::ShardPlan {
            job,
            shards,
            devices,
        } => {
            let _ = write!(out, ",\"job\":{job},\"shards\":{shards},\"devices\":[");
            for (i, d) in devices.iter().enumerate() {
                let _ = write!(out, "{}{d}", if i > 0 { "," } else { "" });
            }
            out.push(']');
        }
        TraceEvent::FilterRejected { job, devices } => {
            let _ = write!(out, ",\"job\":{job},\"devices\":{devices}");
        }
        TraceEvent::AdmissionVerdict {
            job,
            decision,
            estimate,
            margin,
            deadline,
            assessed_deadline,
        } => {
            let _ = write!(
                out,
                ",\"job\":{job},\"decision\":\"{}\",\"queue_seconds\":",
                decision.as_str()
            );
            push_json_f64(estimate.queue_seconds, out);
            out.push_str(",\"service_seconds\":");
            push_json_f64(estimate.service_seconds, out);
            out.push_str(",\"projected_completion\":");
            push_json_f64(estimate.completion, out);
            out.push_str(",\"margin\":");
            push_json_opt_f64(*margin, out);
            out.push_str(",\"deadline\":");
            push_json_opt_f64(*deadline, out);
            out.push_str(",\"assessed_deadline\":");
            push_json_opt_f64(*assessed_deadline, out);
        }
        TraceEvent::PriorityCredit { job, credit } => {
            let _ = write!(out, ",\"job\":{job},\"credit\":");
            push_json_f64(*credit, out);
        }
        TraceEvent::QueuePush {
            reservation,
            job,
            shard,
            device,
            seconds,
            requeued,
        } => {
            let _ = write!(
                out,
                ",\"reservation\":{reservation},\"job\":{job},\"shard\":{shard},\"device\":{device},\"seconds\":"
            );
            push_json_f64(*seconds, out);
            let _ = write!(out, ",\"requeued\":{requeued}");
        }
        TraceEvent::HoldPush {
            reservation,
            job,
            restart,
            device,
            seconds,
        } => {
            let _ = write!(
                out,
                ",\"reservation\":{reservation},\"job\":{job},\"restart\":{restart},\"device\":{device},\"seconds\":"
            );
            push_json_f64(*seconds, out);
        }
        TraceEvent::HoldRelease {
            reservation,
            job,
            restart,
            device,
            seconds,
            pruned,
        } => {
            let _ = write!(
                out,
                ",\"reservation\":{reservation},\"job\":{job},\"restart\":{restart},\"device\":{device},\"seconds\":"
            );
            push_json_f64(*seconds, out);
            let _ = write!(out, ",\"pruned\":{pruned}");
        }
        TraceEvent::LeaseGrant {
            lease,
            reservation,
            job,
            shard,
            device,
            seconds,
            expires_at,
        } => {
            let _ = write!(
                out,
                ",\"lease\":{lease},\"reservation\":{reservation},\"job\":{job},\"shard\":{shard},\"device\":{device},\"seconds\":"
            );
            push_json_f64(*seconds, out);
            out.push_str(",\"expires_at\":");
            push_json_f64(*expires_at, out);
        }
        TraceEvent::LeaseComplete {
            lease,
            job,
            shard,
            device,
            granted_at,
            seconds,
            executions,
            finished,
        } => {
            let _ = write!(
                out,
                ",\"lease\":{lease},\"job\":{job},\"shard\":{shard},\"device\":{device},\"granted_at\":"
            );
            push_json_f64(*granted_at, out);
            out.push_str(",\"seconds\":");
            push_json_f64(*seconds, out);
            let _ = write!(out, ",\"executions\":{executions},\"finished\":{finished}");
        }
        TraceEvent::StaleExpiry { lease, device } => {
            let _ = write!(out, ",\"lease\":{lease},\"device\":{device}");
        }
        TraceEvent::Eviction {
            lease,
            job,
            shard,
            device,
            burned_seconds,
            credit,
        } => {
            let _ = write!(
                out,
                ",\"lease\":{lease},\"job\":{job},\"shard\":{shard},\"device\":{device},\"burned_seconds\":"
            );
            push_json_f64(*burned_seconds, out);
            out.push_str(",\"credit\":");
            push_json_f64(*credit, out);
        }
        TraceEvent::CalibrationUpdate { job, snapshot } => {
            let _ = write!(
                out,
                ",\"job\":{job},\"tier\":{},\"class\":\"{}\",\"error\":",
                snapshot.key.tier,
                snapshot.key.class.as_str()
            );
            push_json_opt_f64(snapshot.error, out);
            out.push_str(",\"margin\":");
            push_json_f64(snapshot.margin, out);
            let _ = write!(out, ",\"samples\":{}", snapshot.samples);
        }
        TraceEvent::DecayEpoch { crossed, factor } => {
            let _ = write!(out, ",\"crossed\":{crossed},\"factor\":");
            push_json_f64(*factor, out);
        }
        TraceEvent::JobComplete { job } => {
            let _ = write!(out, ",\"job\":{job}");
        }
    }
    out.push('}');
}

// ---------------------------------------------------------------------------
// Handle (what the engine config threads through)
// ---------------------------------------------------------------------------

/// A shareable, optional handle to a [`TraceSink`], threaded through
/// [`OrchestratorConfig::trace`](crate::engine::OrchestratorConfig).
///
/// Cloning the handle shares the sink: keep one clone outside the config
/// to read the capture back after the run. The default handle is detached
/// (events go only to the engine's internal metrics aggregation).
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl TraceHandle {
    /// A detached handle (no sink; the engine still aggregates metrics).
    pub fn none() -> Self {
        TraceHandle::default()
    }

    /// A handle feeding `sink`. The `Rc<RefCell<…>>` coerces from any
    /// concrete sink, so callers keep a typed clone for after the run.
    pub fn to(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        TraceHandle { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    pub fn is_attached(&self) -> bool {
        self.sink.is_some()
    }

    fn emit(&self, record: &TraceRecord) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(record);
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHandle")
            .field("attached", &self.is_attached())
            .finish()
    }
}

impl PartialEq for TraceHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.sink, &other.sink) {
            (None, None) => true,
            (Some(a), Some(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// The engine's internal emitter: stamps records with the decision
/// sequence, feeds the always-on [`MetricsSink`], and forwards to the
/// attached handle.
pub(crate) struct Tracer {
    handle: TraceHandle,
    metrics: MetricsSink,
    seq: u64,
}

impl Tracer {
    pub(crate) fn new(handle: TraceHandle) -> Self {
        Tracer {
            handle,
            metrics: MetricsSink::new(),
            seq: 0,
        }
    }

    pub(crate) fn emit(&mut self, time: f64, event: TraceEvent) {
        let record = TraceRecord {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.metrics.record(&record);
        self.handle.emit(&record);
    }

    pub(crate) fn into_summary(self) -> TraceSummary {
        self.metrics.into_summary()
    }
}

// ---------------------------------------------------------------------------
// Histograms and the metrics sink
// ---------------------------------------------------------------------------

/// Number of log-scale buckets in a [`LogHistogram`].
const HISTOGRAM_BUCKETS: usize = 64;
/// Exponent of the lowest bucket bound: bucket `i` covers
/// `[2^(i-30), 2^(i-29))` seconds.
const HISTOGRAM_MIN_EXP: i32 = -30;

/// A fixed-bucket base-2 log-scale histogram of non-negative samples.
///
/// Bucket `i` covers `[2^(i-30), 2^(i-29))`; values below `2^-30`
/// (including exact zeros — a priority arrival's zero wait) land in a
/// dedicated underflow bucket, values at or above the top bound clamp into
/// the last bucket. Exact count, sum, min, and max are kept alongside, so
/// [`mean`](LogHistogram::mean) is exact and only
/// [`quantile`](LogHistogram::quantile) is bucket-resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    underflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: vec![0; HISTOGRAM_BUCKETS],
            underflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample. Non-finite or negative samples are clamped to
    /// the underflow bucket (the engine never produces them; a sink must
    /// not panic).
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < (HISTOGRAM_MIN_EXP as f64).exp2() {
            self.underflow += 1;
        } else {
            let idx = (v.log2().floor() as i32 - HISTOGRAM_MIN_EXP)
                .clamp(0, HISTOGRAM_BUCKETS as i32 - 1) as usize;
            self.counts[idx] += 1;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0.0 when empty — never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile at bucket resolution: the upper bound of the
    /// bucket holding the rank-`q` sample (0.0 for underflow), `None` when
    /// empty or `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(0.0);
        }
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                // The top bucket also holds clamped outliers, so its
                // effective upper bound is the recorded max.
                let upper = if i == HISTOGRAM_BUCKETS - 1 {
                    f64::INFINITY
                } else {
                    ((i as i32 + HISTOGRAM_MIN_EXP + 1) as f64).exp2()
                };
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Folds every sample of `other` into `self`, bucket by bucket.
    ///
    /// Counts use saturating arithmetic so pooling many long-running
    /// histograms can never wrap; the sum accumulates in `f64` (which
    /// saturates to infinity by construction). Min/max take the pooled
    /// extremes, and merging an empty histogram is a no-op. Used by the
    /// `kernel_profile` bench to pool per-repetition span timings into
    /// one distribution per sweep point.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.underflow = self.underflow.saturating_add(other.underflow);
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// The non-empty buckets as `(lower bound, upper bound, count)`; the
    /// underflow bucket reports as `(0.0, 2^-30, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        let mut out = Vec::new();
        if self.underflow > 0 {
            out.push((0.0, (HISTOGRAM_MIN_EXP as f64).exp2(), self.underflow));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                out.push((
                    ((i as i32 + HISTOGRAM_MIN_EXP) as f64).exp2(),
                    ((i as i32 + HISTOGRAM_MIN_EXP + 1) as f64).exp2(),
                    c,
                ));
            }
        }
        out
    }
}

/// Event-stream volume by kind, one counter per [`TraceEvent`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCounts {
    /// [`TraceEvent::DeviceDefined`] records.
    pub devices_defined: u64,
    /// [`TraceEvent::Arrival`] records.
    pub arrivals: u64,
    /// [`TraceEvent::ShardPlan`] records.
    pub shard_plans: u64,
    /// [`TraceEvent::FilterRejected`] records.
    pub filter_rejections: u64,
    /// [`TraceEvent::AdmissionVerdict`] records.
    pub admission_verdicts: u64,
    /// [`TraceEvent::PriorityCredit`] records.
    pub priority_credits: u64,
    /// [`TraceEvent::QueuePush`] records.
    pub queue_pushes: u64,
    /// [`TraceEvent::HoldPush`] records.
    pub hold_pushes: u64,
    /// [`TraceEvent::HoldRelease`] records.
    pub hold_releases: u64,
    /// [`TraceEvent::LeaseGrant`] records.
    pub lease_grants: u64,
    /// [`TraceEvent::LeaseComplete`] records.
    pub lease_completions: u64,
    /// [`TraceEvent::StaleExpiry`] records.
    pub stale_expiries: u64,
    /// [`TraceEvent::Eviction`] records.
    pub evictions: u64,
    /// [`TraceEvent::CalibrationUpdate`] records.
    pub calibration_updates: u64,
    /// [`TraceEvent::DecayEpoch`] records (one may cover several crossed
    /// epochs).
    pub decay_epochs: u64,
    /// [`TraceEvent::JobComplete`] records.
    pub job_completions: u64,
}

impl EventCounts {
    /// Total records counted.
    pub fn total(&self) -> u64 {
        self.devices_defined
            + self.arrivals
            + self.shard_plans
            + self.filter_rejections
            + self.admission_verdicts
            + self.priority_credits
            + self.queue_pushes
            + self.hold_pushes
            + self.hold_releases
            + self.lease_grants
            + self.lease_completions
            + self.stale_expiries
            + self.evictions
            + self.calibration_updates
            + self.decay_epochs
            + self.job_completions
    }

    fn count(&mut self, event: &TraceEvent) {
        let slot = match event {
            TraceEvent::DeviceDefined { .. } => &mut self.devices_defined,
            TraceEvent::Arrival { .. } => &mut self.arrivals,
            TraceEvent::ShardPlan { .. } => &mut self.shard_plans,
            TraceEvent::FilterRejected { .. } => &mut self.filter_rejections,
            TraceEvent::AdmissionVerdict { .. } => &mut self.admission_verdicts,
            TraceEvent::PriorityCredit { .. } => &mut self.priority_credits,
            TraceEvent::QueuePush { .. } => &mut self.queue_pushes,
            TraceEvent::HoldPush { .. } => &mut self.hold_pushes,
            TraceEvent::HoldRelease { .. } => &mut self.hold_releases,
            TraceEvent::LeaseGrant { .. } => &mut self.lease_grants,
            TraceEvent::LeaseComplete { .. } => &mut self.lease_completions,
            TraceEvent::StaleExpiry { .. } => &mut self.stale_expiries,
            TraceEvent::Eviction { .. } => &mut self.evictions,
            TraceEvent::CalibrationUpdate { .. } => &mut self.calibration_updates,
            TraceEvent::DecayEpoch { .. } => &mut self.decay_epochs,
            TraceEvent::JobComplete { .. } => &mut self.job_completions,
        };
        *slot += 1;
    }
}

/// One contiguous occupancy of a device by a lease.
#[derive(Debug, Clone, PartialEq)]
pub struct BusySpan {
    /// Grant time.
    pub start: f64,
    /// Completion or eviction time.
    pub end: f64,
    /// The occupying job.
    pub job: usize,
    /// The occupying shard.
    pub shard: usize,
    /// The lease id.
    pub lease: u64,
    /// Whether the span ended in eviction (burned occupancy) rather than a
    /// completed batch.
    pub wasted: bool,
}

/// One device's busy/idle timeline: its occupancy spans in chronological
/// order (spans never overlap — a device holds one lease at a time; the
/// gaps are idle time).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTimeline {
    /// Fleet index.
    pub device: usize,
    /// Device name.
    pub name: String,
    /// Occupancy spans, chronological.
    pub spans: Vec<BusySpan>,
}

impl DeviceTimeline {
    /// Seconds of completed-batch occupancy.
    pub fn busy_seconds(&self) -> f64 {
        // Fold from +0.0: an empty `Sum<f64>` is IEEE -0.0, which prints
        // as "-0.000" in reports.
        self.spans
            .iter()
            .filter(|s| !s.wasted)
            .fold(0.0, |acc, s| acc + (s.end - s.start))
    }

    /// Seconds of evicted (burned) occupancy.
    pub fn wasted_seconds(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.wasted)
            .fold(0.0, |acc, s| acc + (s.end - s.start))
    }

    /// Seconds the device sat idle over `[0, horizon]` (0.0 when the
    /// occupancy already covers the horizon — never negative).
    pub fn idle_seconds(&self, horizon: f64) -> f64 {
        let occupied: f64 = self.spans.iter().map(|s| s.end - s.start).sum();
        (horizon - occupied).max(0.0)
    }
}

/// The aggregates the engine's always-on metrics pass distills from the
/// event stream, surfaced as
/// [`OrchestratorReport::trace`](crate::telemetry::OrchestratorReport).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// Event-stream volume by kind.
    pub events: EventCounts,
    /// Wait times (submission → first delivered grant), one sample per job
    /// that ran.
    pub wait: LogHistogram,
    /// Turnaround times (submission → completion), one sample per
    /// completed job.
    pub turnaround: LogHistogram,
    /// Queue depth (outstanding batch requests + holds), sampled after
    /// every queue-mutating decision.
    pub queue_depth: LogHistogram,
    /// The affected device's queued backlog seconds (batch requests +
    /// holds), sampled after every queue-mutating decision.
    pub device_backlog: LogHistogram,
    /// Per-device busy/idle timelines, fleet order.
    pub timelines: Vec<DeviceTimeline>,
}

/// Streaming aggregation sink: histograms of wait / turnaround / queue
/// depth / per-device backlog, event counts, and per-device timelines.
///
/// The engine always runs one internally; attach your own (via
/// [`TraceHandle::to`]) only to aggregate a filtered or replayed stream.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    events: EventCounts,
    wait: LogHistogram,
    turnaround: LogHistogram,
    queue_depth: LogHistogram,
    device_backlog: LogHistogram,
    timelines: Vec<DeviceTimeline>,
    depth: u64,
    backlog: Vec<f64>,
    queued_seconds: HashMap<usize, (usize, f64)>,
    arrivals: HashMap<usize, f64>,
    started: HashSet<usize>,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Consumes the sink into its aggregates.
    pub fn into_summary(self) -> TraceSummary {
        TraceSummary {
            events: self.events,
            wait: self.wait,
            turnaround: self.turnaround,
            queue_depth: self.queue_depth,
            device_backlog: self.device_backlog,
            timelines: self.timelines,
        }
    }

    /// The aggregates so far (cloned; the sink keeps accumulating).
    pub fn summary(&self) -> TraceSummary {
        self.clone().into_summary()
    }

    fn device_slot(&mut self, device: usize) {
        if self.backlog.len() <= device {
            self.backlog.resize(device + 1, 0.0);
        }
        while self.timelines.len() <= device {
            let index = self.timelines.len();
            self.timelines.push(DeviceTimeline {
                device: index,
                name: format!("device-{index}"),
                spans: Vec::new(),
            });
        }
    }

    fn sample_queue(&mut self, device: usize) {
        self.queue_depth.record(self.depth as f64);
        self.device_backlog.record(self.backlog[device]);
    }

    fn enqueue(&mut self, reservation: usize, device: usize, seconds: f64) {
        self.device_slot(device);
        self.depth += 1;
        self.backlog[device] += seconds;
        self.queued_seconds.insert(reservation, (device, seconds));
        self.sample_queue(device);
    }

    fn dequeue(&mut self, reservation: usize) {
        if let Some((device, seconds)) = self.queued_seconds.remove(&reservation) {
            self.depth = self.depth.saturating_sub(1);
            self.backlog[device] = (self.backlog[device] - seconds).max(0.0);
            self.sample_queue(device);
        }
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, record: &TraceRecord) {
        self.events.count(&record.event);
        match &record.event {
            TraceEvent::DeviceDefined { device, name, .. } => {
                self.device_slot(*device);
                self.timelines[*device].name = name.clone();
            }
            TraceEvent::Arrival { job, .. } => {
                self.arrivals.insert(*job, record.time);
            }
            TraceEvent::QueuePush {
                reservation,
                device,
                seconds,
                ..
            }
            | TraceEvent::HoldPush {
                reservation,
                device,
                seconds,
                ..
            } => {
                self.enqueue(*reservation, *device, *seconds);
            }
            TraceEvent::HoldRelease { reservation, .. } => {
                self.dequeue(*reservation);
            }
            TraceEvent::LeaseGrant { reservation, .. } => {
                self.dequeue(*reservation);
            }
            TraceEvent::LeaseComplete {
                lease,
                job,
                shard,
                device,
                granted_at,
                ..
            } => {
                self.device_slot(*device);
                self.timelines[*device].spans.push(BusySpan {
                    start: *granted_at,
                    end: record.time,
                    job: *job,
                    shard: *shard,
                    lease: *lease,
                    wasted: false,
                });
                if self.started.insert(*job) {
                    let arrival = self.arrivals.get(job).copied().unwrap_or(*granted_at);
                    self.wait.record(granted_at - arrival);
                }
            }
            TraceEvent::Eviction {
                lease,
                job,
                shard,
                device,
                burned_seconds,
                ..
            } => {
                self.device_slot(*device);
                self.timelines[*device].spans.push(BusySpan {
                    start: record.time - burned_seconds,
                    end: record.time,
                    job: *job,
                    shard: *shard,
                    lease: *lease,
                    wasted: true,
                });
            }
            TraceEvent::JobComplete { job } => {
                if let Some(arrival) = self.arrivals.get(job) {
                    self.turnaround.record(record.time - arrival);
                }
            }
            TraceEvent::ShardPlan { .. }
            | TraceEvent::FilterRejected { .. }
            | TraceEvent::AdmissionVerdict { .. }
            | TraceEvent::PriorityCredit { .. }
            | TraceEvent::StaleExpiry { .. }
            | TraceEvent::CalibrationUpdate { .. }
            | TraceEvent::DecayEpoch { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Consumer 1: Chrome / Perfetto trace-event export
// ---------------------------------------------------------------------------

/// Process id of the fleet-devices track group in the exported trace.
pub const CHROME_FLEET_PID: u64 = 1;
/// Process id of the jobs-by-tenant track group.
pub const CHROME_JOBS_PID: u64 = 2;
/// Process id of the wall-clock profiler track group emitted by
/// [`chrome_export_with_profile`]. Unlike the virtual-time tracks above,
/// its timestamps are real microseconds since the profiler was created.
pub const CHROME_PROF_PID: u64 = 3;

/// Renders a captured run as Chrome trace-event JSON, openable directly in
/// `ui.perfetto.dev` (or `chrome://tracing`).
///
/// Two track groups:
///
/// - **fleet devices** (pid 1): one track per device (named from
///   [`TraceEvent::DeviceDefined`]) carrying a duration slice per lease —
///   completed batches and, in a separate category, evicted (burned)
///   occupancy — plus a fleet-wide queue-depth counter track.
/// - **jobs by tenant** (pid 2): one track per job (named
///   `tenant · job N`) spanning submission to completion, with instant
///   markers for the admission verdict and each eviction the job suffered.
///
/// Timestamps are microseconds of virtual time.
pub fn chrome_export(records: &[TraceRecord]) -> String {
    chrome_export_impl(records, None)
}

/// Like [`chrome_export`], plus a third **wall-clock profiler** track
/// group ([`CHROME_PROF_PID`]) carrying one duration slice per retained
/// [`ProfileSpan`](qoncord_prof::ProfileSpan) of `perf` — typically the
/// [`OrchestratorReport::perf`](crate::telemetry::OrchestratorReport::perf)
/// snapshot of the same run whose `records` are being exported.
///
/// Slices are named by their leaf span label and carry the full folded
/// path in `args.path`, so hovering a `sim::sv::apply_2q` slice shows the
/// `engine::run;engine::lease_done;…` chain it was reached through. The
/// profiler track's timestamps are real microseconds since the profiler
/// epoch, while the fleet and jobs tracks remain virtual time; Perfetto
/// renders the groups side by side, which is exactly the point — virtual
/// schedule above, real CPU cost below.
pub fn chrome_export_with_profile(
    records: &[TraceRecord],
    perf: &qoncord_prof::ProfileReport,
) -> String {
    chrome_export_impl(records, Some(perf))
}

fn chrome_export_impl(
    records: &[TraceRecord],
    profile: Option<&qoncord_prof::ProfileReport>,
) -> String {
    let us = |t: f64| t * 1e6;
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, body: &str| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(body);
    };
    let mut line = String::new();
    let mut meta =
        |out: &mut String, line: &mut String, pid: u64, tid: u64, which: &str, name: &str| {
            line.clear();
            let _ = write!(
            line,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{which}\",\"args\":{{\"name\":"
        );
            push_json_string(name, line);
            line.push_str("}}");
            push(out, line);
        };
    meta(
        &mut out,
        &mut line,
        CHROME_FLEET_PID,
        0,
        "process_name",
        "fleet devices",
    );
    meta(
        &mut out,
        &mut line,
        CHROME_JOBS_PID,
        0,
        "process_name",
        "jobs by tenant",
    );
    if profile.is_some() {
        meta(
            &mut out,
            &mut line,
            CHROME_PROF_PID,
            0,
            "process_name",
            "wall-clock profiler",
        );
        meta(
            &mut out,
            &mut line,
            CHROME_PROF_PID,
            0,
            "thread_name",
            "profiled thread",
        );
    }

    // Job identity (tenant, submitted id) from the arrival events, and
    // queue depth recomputed from the reservation lifecycle.
    let mut job_label: HashMap<usize, String> = HashMap::new();
    let mut depth: i64 = 0;
    for record in records {
        line.clear();
        match &record.event {
            TraceEvent::DeviceDefined { device, name, .. } => {
                meta(
                    &mut out,
                    &mut line,
                    CHROME_FLEET_PID,
                    *device as u64,
                    "thread_name",
                    name,
                );
            }
            TraceEvent::Arrival {
                job, id, tenant, ..
            } => {
                let label = format!("{tenant} · job {id}");
                meta(
                    &mut out,
                    &mut line,
                    CHROME_JOBS_PID,
                    *job as u64,
                    "thread_name",
                    &label,
                );
                job_label.insert(*job, label);
            }
            _ => {}
        }
    }

    let mut job_span_start: HashMap<usize, f64> = HashMap::new();
    for record in records {
        line.clear();
        match &record.event {
            TraceEvent::Arrival { job, .. } => {
                job_span_start.insert(*job, record.time);
            }
            TraceEvent::AdmissionVerdict { job, decision, .. } => {
                let _ = write!(
                    line,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{CHROME_JOBS_PID},\"tid\":{job},\"ts\":{},\"name\":\"admission: {}\"}}",
                    us(record.time),
                    decision.as_str()
                );
                push(&mut out, &line);
            }
            TraceEvent::QueuePush { device, .. } | TraceEvent::HoldPush { device, .. } => {
                depth += 1;
                let _ = write!(
                    line,
                    "{{\"ph\":\"C\",\"pid\":{CHROME_FLEET_PID},\"ts\":{},\"name\":\"queue depth\",\"args\":{{\"requests\":{depth}}}}}",
                    us(record.time)
                );
                push(&mut out, &line);
                let _ = device;
            }
            TraceEvent::LeaseGrant { .. } | TraceEvent::HoldRelease { .. } => {
                depth -= 1;
                let _ = write!(
                    line,
                    "{{\"ph\":\"C\",\"pid\":{CHROME_FLEET_PID},\"ts\":{},\"name\":\"queue depth\",\"args\":{{\"requests\":{depth}}}}}",
                    us(record.time)
                );
                push(&mut out, &line);
            }
            TraceEvent::LeaseComplete {
                lease,
                job,
                shard,
                device,
                granted_at,
                executions,
                ..
            } => {
                let label = job_label
                    .get(job)
                    .cloned()
                    .unwrap_or_else(|| format!("job {job}"));
                let _ = write!(
                    line,
                    "{{\"ph\":\"X\",\"pid\":{CHROME_FLEET_PID},\"tid\":{device},\"ts\":{},\"dur\":{},\"cat\":\"lease\",\"name\":",
                    us(*granted_at),
                    us(record.time - granted_at)
                );
                push_json_string(&label, &mut line);
                let _ = write!(
                    line,
                    ",\"args\":{{\"lease\":{lease},\"shard\":{shard},\"executions\":{executions}}}}}"
                );
                push(&mut out, &line);
            }
            TraceEvent::Eviction {
                lease,
                job,
                shard,
                device,
                burned_seconds,
                ..
            } => {
                let label = job_label
                    .get(job)
                    .cloned()
                    .unwrap_or_else(|| format!("job {job}"));
                let _ = write!(
                    line,
                    "{{\"ph\":\"X\",\"pid\":{CHROME_FLEET_PID},\"tid\":{device},\"ts\":{},\"dur\":{},\"cat\":\"evicted\",\"name\":",
                    us(record.time - burned_seconds),
                    us(*burned_seconds)
                );
                push_json_string(&format!("evicted: {label}"), &mut line);
                let _ = write!(line, ",\"args\":{{\"lease\":{lease},\"shard\":{shard}}}}}");
                push(&mut out, &line);
                line.clear();
                let _ = write!(
                    line,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{CHROME_JOBS_PID},\"tid\":{job},\"ts\":{},\"name\":\"evicted from device {device}\"}}",
                    us(record.time)
                );
                push(&mut out, &line);
            }
            TraceEvent::JobComplete { job } => {
                if let Some(start) = job_span_start.remove(job) {
                    let label = job_label
                        .get(job)
                        .cloned()
                        .unwrap_or_else(|| format!("job {job}"));
                    let _ = write!(
                        line,
                        "{{\"ph\":\"X\",\"pid\":{CHROME_JOBS_PID},\"tid\":{job},\"ts\":{},\"dur\":{},\"cat\":\"job\",\"name\":",
                        us(start),
                        us(record.time - start)
                    );
                    push_json_string(&label, &mut line);
                    line.push('}');
                    push(&mut out, &line);
                }
            }
            TraceEvent::FilterRejected { job, .. } => {
                let _ = write!(
                    line,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{CHROME_JOBS_PID},\"tid\":{job},\"ts\":{},\"name\":\"rejected by fidelity filter\"}}",
                    us(record.time)
                );
                push(&mut out, &line);
            }
            _ => {}
        }
    }
    if let Some(perf) = profile {
        for span in &perf.spans {
            let entry = &perf.entries[span.entry];
            line.clear();
            let _ = write!(
                line,
                "{{\"ph\":\"X\",\"pid\":{CHROME_PROF_PID},\"tid\":0,\"ts\":{},\"dur\":{},\"cat\":\"prof\",\"name\":",
                span.start_ns as f64 / 1e3,
                span.dur_ns as f64 / 1e3
            );
            push_json_string(entry.label(), &mut line);
            line.push_str(",\"args\":{\"path\":");
            push_json_string(&entry.folded_path(), &mut line);
            line.push_str("}}");
            push(&mut out, &line);
        }
        if perf.dropped_spans > 0 {
            line.clear();
            let _ = write!(
                line,
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{CHROME_PROF_PID},\"tid\":0,\"ts\":0,\"name\":\"{} spans dropped past the retention cap\"}}",
                perf.dropped_spans
            );
            push(&mut out, &line);
        }
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------------
// Chrome trace validation (hand-rolled JSON, no serde in this workspace)
// ---------------------------------------------------------------------------

/// One `(pid, tid)` track of a parsed Chrome trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrack {
    /// Process id.
    pub pid: u64,
    /// Thread id.
    pub tid: u64,
    /// The `thread_name` metadata, if any.
    pub name: Option<String>,
    /// Complete (`"ph":"X"`) duration slices on the track.
    pub duration_events: usize,
    /// Instant (`"ph":"i"`) markers on the track.
    pub instant_events: usize,
}

/// Summary of a parsed Chrome trace: proof the export is well-formed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTraceSummary {
    /// Entries in `traceEvents`.
    pub total_events: usize,
    /// Every `(pid, tid)` track seen, ordered by `(pid, tid)`.
    pub tracks: Vec<ChromeTrack>,
}

impl ChromeTraceSummary {
    /// The named duration tracks of one process group (e.g. the fleet
    /// group's device tracks), ordered by tid.
    pub fn tracks_of(&self, pid: u64) -> Vec<&ChromeTrack> {
        self.tracks.iter().filter(|t| t.pid == pid).collect()
    }
}

/// Parses `json` as Chrome trace-event JSON and summarizes its tracks.
///
/// # Errors
///
/// Returns a description of the first syntax or structural problem: the
/// trace must be a JSON object with a `traceEvents` array of objects.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    let value = json::parse(json)?;
    let top = value.as_object().ok_or("top level is not an object")?;
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut tracks: HashMap<(u64, u64), ChromeTrack> = HashMap::new();
    for (i, event) in events.iter().enumerate() {
        let obj = event
            .as_object()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let ph = field("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("traceEvents[{i}] has no ph"))?
            .to_owned();
        let pid = field("pid").and_then(|v| v.as_u64()).unwrap_or(0);
        let tid = field("tid").and_then(|v| v.as_u64()).unwrap_or(0);
        let track = tracks.entry((pid, tid)).or_insert_with(|| ChromeTrack {
            pid,
            tid,
            name: None,
            duration_events: 0,
            instant_events: 0,
        });
        match ph.as_str() {
            "X" => {
                if field("dur").and_then(|v| v.as_f64()).is_none() {
                    return Err(format!("traceEvents[{i}]: X event without dur"));
                }
                track.duration_events += 1;
            }
            "i" => track.instant_events += 1,
            "M" => {
                let is_thread_name = field("name").and_then(|v| v.as_str()) == Some("thread_name");
                if is_thread_name {
                    let name = field("args")
                        .and_then(|v| v.as_object())
                        .and_then(|args| {
                            args.iter()
                                .find(|(k, _)| k == "name")
                                .map(|(_, v)| v.clone())
                        })
                        .and_then(|v| v.as_str().map(str::to_owned));
                    track.name = name;
                }
            }
            _ => {}
        }
    }
    let mut tracks: Vec<ChromeTrack> = tracks.into_values().collect();
    tracks.sort_by_key(|t| (t.pid, t.tid));
    Ok(ChromeTraceSummary {
        total_events: events.len(),
        tracks,
    })
}

/// A minimal recursive-descent JSON reader, enough to validate the JSON
/// this workspace emits (which deliberately has no serde): Chrome traces
/// here, and the `BENCH_*.json` artifacts via
/// `qoncord_bench::require_keys`. It is a *reader*, not a general JSON
/// library — object keys stay in document order and numbers are `f64`.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` or `false`.
        Bool(bool),
        /// Any number; JSON does not distinguish integers from floats.
        Number(f64),
        /// A string, with escapes decoded.
        String(String),
        /// An array of values.
        Array(Vec<Value>),
        /// An object as `(key, value)` pairs in document order
        /// (duplicate keys are kept, callers take the first match).
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The object's fields, or `None` for non-objects.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        /// The array's items, or `None` for non-arrays.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string's contents, or `None` for non-strings.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The number, or `None` for non-numbers.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The number as an unsigned integer, `None` unless it is a
        /// non-negative whole number (or for non-numbers).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }
    }

    /// Parses one complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte-offset description of the first syntax error, or of
    /// trailing non-whitespace after the document.
    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".to_owned()),
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        literal: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    // Decode from a 4-byte window (the longest scalar) —
                    // validating the whole remainder here would make
                    // string parsing quadratic in the document size.
                    let window = &bytes[*pos..(*pos + 4).min(bytes.len())];
                    let prefix = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        // The window may cut a *later* character short;
                        // any valid prefix still holds the first one.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(_) => return Err("invalid utf-8".to_owned()),
                    };
                    let c = prefix.chars().next().expect("non-empty remainder");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Consumer 2: report reconstruction (the losslessness proof)
// ---------------------------------------------------------------------------

/// How a replayed job ended (the trace does not carry training numerics or
/// per-device rejection reasons, so the payloads of
/// [`JobStatus`](crate::telemetry::JobStatus) reduce to these).
#[derive(Debug, Clone, PartialEq)]
pub enum ReconstructedOutcome {
    /// Ran to completion.
    Completed,
    /// The fidelity filter rejected every placement.
    FilterRejected {
        /// Devices the filter rejected.
        devices: usize,
    },
    /// Admission control denied the job.
    Denied {
        /// The projection that condemned it.
        estimate: FeasibilityEstimate,
        /// The deadline it could not meet.
        deadline: f64,
    },
}

/// One job rebuilt from the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconstructedJob {
    /// The id the submitter gave the job.
    pub id: usize,
    /// Submitting tenant.
    pub tenant: String,
    /// Requested priority.
    pub priority: u32,
    /// How it ended.
    pub outcome: ReconstructedOutcome,
    /// The rebuilt timing/resource record — field-for-field the engine's.
    pub telemetry: JobTelemetry,
}

/// A run's telemetry rebuilt from its event stream alone.
///
/// [`diff`](ReconstructedReport::diff) against the engine's own report is
/// the instrumentation-losslessness check: an empty diff proves every
/// number on the report is derivable from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconstructedReport {
    /// Per-job records, submission order.
    pub jobs: Vec<ReconstructedJob>,
    /// Fleet accounting, rebuilt from lease completions and evictions.
    pub fleet: FleetTelemetry,
    /// The calibration history, rebuilt from
    /// [`TraceEvent::CalibrationUpdate`] snapshots.
    pub calibration: Vec<MarginSnapshot>,
}

impl ReconstructedReport {
    /// Field-by-field comparison against an engine report. Every
    /// discrepancy is one human-readable line; an empty result means the
    /// rebuild matches bit-for-bit (telemetry, fleet accounting, status
    /// kinds and denial payloads, calibration history).
    pub fn diff(&self, report: &OrchestratorReport) -> Vec<String> {
        use crate::telemetry::JobStatus;
        let mut diffs = Vec::new();
        if self.jobs.len() != report.jobs.len() {
            diffs.push(format!(
                "job count: rebuilt {} vs engine {}",
                self.jobs.len(),
                report.jobs.len()
            ));
            return diffs;
        }
        for (i, (mine, theirs)) in self.jobs.iter().zip(&report.jobs).enumerate() {
            if mine.id != theirs.id {
                diffs.push(format!("job {i} id: {} vs {}", mine.id, theirs.id));
            }
            if mine.tenant != theirs.tenant {
                diffs.push(format!(
                    "job {i} tenant: {} vs {}",
                    mine.tenant, theirs.tenant
                ));
            }
            if mine.priority != theirs.priority {
                diffs.push(format!(
                    "job {i} priority: {} vs {}",
                    mine.priority, theirs.priority
                ));
            }
            let status_matches = match (&mine.outcome, &theirs.status) {
                (ReconstructedOutcome::Completed, JobStatus::Completed { .. }) => true,
                (
                    ReconstructedOutcome::FilterRejected { devices },
                    JobStatus::Rejected { rejected },
                ) => *devices == rejected.len(),
                (
                    ReconstructedOutcome::Denied { estimate, deadline },
                    JobStatus::Denied {
                        estimate: their_estimate,
                        deadline: their_deadline,
                    },
                ) => estimate == their_estimate && deadline == their_deadline,
                _ => false,
            };
            if !status_matches {
                diffs.push(format!(
                    "job {i} status: rebuilt {:?} vs engine {:?}",
                    mine.outcome, theirs.status
                ));
            }
            if mine.telemetry != theirs.telemetry {
                diffs.push(format!(
                    "job {i} telemetry:\n  rebuilt {:?}\n  engine  {:?}",
                    mine.telemetry, theirs.telemetry
                ));
            }
        }
        if self.fleet != report.fleet {
            diffs.push(format!(
                "fleet:\n  rebuilt {:?}\n  engine  {:?}",
                self.fleet, report.fleet
            ));
        }
        if self.calibration != report.calibration {
            diffs.push(format!(
                "calibration history: rebuilt {} entries vs engine {}",
                self.calibration.len(),
                report.calibration.len()
            ));
        }
        diffs
    }
}

/// Rebuilds per-job and fleet telemetry from a captured event stream
/// alone, replaying the engine's accounting in event order — the same
/// additions in the same order, so every rebuilt float is bit-identical to
/// the engine's.
pub fn reconstruct_report(records: &[TraceRecord]) -> ReconstructedReport {
    struct JobSlot {
        id: usize,
        tenant: String,
        priority: u32,
        outcome: Option<ReconstructedOutcome>,
        telemetry: JobTelemetry,
    }
    let n_devices = records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::DeviceDefined { device, .. } => Some(device + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut device_names = vec![String::new(); n_devices];
    let mut device_cost = vec![0.0f64; n_devices];
    let mut devices: Vec<DeviceTelemetry> = Vec::new();
    let mut makespan = 0.0f64;
    let mut jobs: Vec<JobSlot> = Vec::new();
    let mut calibration = Vec::new();

    fn slot(jobs: &mut [JobSlot], job: usize) -> &mut JobSlot {
        &mut jobs[job]
    }

    for record in records {
        match &record.event {
            TraceEvent::DeviceDefined {
                device,
                name,
                cost_per_second,
                ..
            } => {
                device_names[*device] = name.clone();
                device_cost[*device] = *cost_per_second;
            }
            TraceEvent::Arrival {
                job,
                id,
                tenant,
                priority,
            } => {
                while jobs.len() <= *job {
                    jobs.push(JobSlot {
                        id: 0,
                        tenant: String::new(),
                        priority: 0,
                        outcome: None,
                        telemetry: JobTelemetry::new(record.time, n_devices),
                    });
                }
                let s = slot(&mut jobs, *job);
                s.id = *id;
                s.tenant = tenant.clone();
                s.priority = *priority;
                s.telemetry = JobTelemetry::new(record.time, n_devices);
            }
            TraceEvent::ShardPlan { job, shards, .. } => {
                slot(&mut jobs, *job).telemetry.shards = *shards;
            }
            TraceEvent::FilterRejected { job, devices } => {
                slot(&mut jobs, *job).outcome =
                    Some(ReconstructedOutcome::FilterRejected { devices: *devices });
            }
            TraceEvent::AdmissionVerdict {
                job,
                decision,
                estimate,
                margin,
                deadline,
                assessed_deadline,
            } => {
                let s = slot(&mut jobs, *job);
                s.telemetry.admission_estimate = Some(*estimate);
                s.telemetry.admission_margin = *margin;
                match decision {
                    AdmissionDecision::Reject => {
                        s.outcome = Some(ReconstructedOutcome::Denied {
                            estimate: *estimate,
                            deadline: assessed_deadline.expect("only deadline jobs are denied"),
                        });
                    }
                    AdmissionDecision::Downgrade => {
                        s.telemetry.downgraded = true;
                        s.telemetry.deadline = *deadline;
                    }
                    AdmissionDecision::Admit => {
                        s.telemetry.deadline = *deadline;
                    }
                }
            }
            TraceEvent::HoldRelease {
                job,
                seconds,
                pruned,
                ..
            } => {
                if *pruned {
                    let s = slot(&mut jobs, *job);
                    s.telemetry.released_reservations += 1;
                    s.telemetry.released_seconds += seconds;
                }
            }
            TraceEvent::LeaseComplete {
                job,
                shard: _,
                device,
                granted_at,
                seconds,
                executions,
                ..
            } => {
                while devices.len() < n_devices {
                    let index = devices.len();
                    devices.push(DeviceTelemetry {
                        name: device_names[index].clone(),
                        busy_seconds: 0.0,
                        wasted_seconds: 0.0,
                        evictions: 0,
                        executions: 0,
                    });
                }
                makespan = makespan.max(record.time);
                devices[*device].busy_seconds += seconds;
                devices[*device].executions += executions;
                let s = slot(&mut jobs, *job);
                if s.telemetry.first_start.is_none() {
                    s.telemetry.first_start = Some(*granted_at);
                }
                s.telemetry.device_seconds[*device] += seconds;
                s.telemetry.executions += executions;
                s.telemetry.cost += seconds * device_cost[*device];
            }
            TraceEvent::Eviction {
                job,
                shard,
                device,
                burned_seconds,
                ..
            } => {
                while devices.len() < n_devices {
                    let index = devices.len();
                    devices.push(DeviceTelemetry {
                        name: device_names[index].clone(),
                        busy_seconds: 0.0,
                        wasted_seconds: 0.0,
                        evictions: 0,
                        executions: 0,
                    });
                }
                devices[*device].wasted_seconds += burned_seconds;
                devices[*device].evictions += 1;
                let s = slot(&mut jobs, *job);
                s.telemetry.evictions += 1;
                s.telemetry.wasted_seconds += burned_seconds;
                s.telemetry.record_shard_waste(*shard, *burned_seconds);
            }
            TraceEvent::CalibrationUpdate { snapshot, .. } => {
                calibration.push(*snapshot);
            }
            TraceEvent::JobComplete { job } => {
                let s = slot(&mut jobs, *job);
                s.telemetry.completion = Some(record.time);
                if let Some(estimate) = s.telemetry.admission_estimate {
                    s.telemetry.estimate_error = Some(record.time - estimate.completion);
                }
                s.outcome = Some(ReconstructedOutcome::Completed);
            }
            TraceEvent::DecayEpoch { .. }
            | TraceEvent::PriorityCredit { .. }
            | TraceEvent::QueuePush { .. }
            | TraceEvent::HoldPush { .. }
            | TraceEvent::LeaseGrant { .. }
            | TraceEvent::StaleExpiry { .. } => {}
        }
    }
    // A fleet that never completed a lease still reports its devices.
    while devices.len() < n_devices {
        let index = devices.len();
        devices.push(DeviceTelemetry {
            name: device_names[index].clone(),
            busy_seconds: 0.0,
            wasted_seconds: 0.0,
            evictions: 0,
            executions: 0,
        });
    }
    ReconstructedReport {
        jobs: jobs
            .into_iter()
            .map(|s| ReconstructedJob {
                id: s.id,
                tenant: s.tenant,
                priority: s.priority,
                outcome: s.outcome.unwrap_or(ReconstructedOutcome::Completed),
                telemetry: s.telemetry,
            })
            .collect(),
        fleet: FleetTelemetry { devices, makespan },
        calibration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, time: f64, event: TraceEvent) -> TraceRecord {
        TraceRecord { time, seq, event }
    }

    #[test]
    fn histogram_buckets_mean_and_quantiles() {
        let mut h = LogHistogram::new();
        assert_eq!(h.mean(), 0.0, "empty histogram mean is defined");
        assert_eq!(h.quantile(0.5), None);
        for v in [0.0, 0.5, 1.0, 2.0, 4.0, 1e12] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(1e12));
        assert!((h.mean() - (7.5 + 1e12) / 6.0).abs() < 1e-3);
        // Rank 1 of 6 at q≈0.16 is the underflow (zero) bucket.
        assert_eq!(h.quantile(0.16), Some(0.0));
        // The median sample (1.0) lives in the [1,2) bucket → upper bound 2.
        assert_eq!(h.quantile(0.5), Some(2.0));
        // The top quantile clamps to the recorded max, not the bucket edge.
        assert_eq!(h.quantile(1.0), Some(1e12));
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|b| b.2).sum::<u64>(), 6);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn histogram_never_panics_on_hostile_samples() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(-5.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert!(h.mean().is_finite());
    }

    #[test]
    fn histogram_merge_equals_recording_the_union() {
        let samples_a = [0.0, 0.5, 2.0, 1e12];
        let samples_b = [0.25, 3.0, 7.0];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut union = LogHistogram::new();
        for v in samples_a {
            a.record(v);
            union.record(v);
        }
        for v in samples_b {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union, "merge is indistinguishable from pooled records");
        // Merging an empty histogram changes nothing, in either direction.
        let before = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, before);
        let mut empty = LogHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_merge_saturates_instead_of_wrapping() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(1.0);
        b.record(1.0);
        // Forge near-overflow counters the way a pathological pooled run
        // would accumulate them; the merge must clamp, not wrap.
        a.count = u64::MAX - 1;
        a.underflow = u64::MAX - 1;
        a.counts[31] = u64::MAX - 1;
        b.count = 5;
        b.underflow = 5;
        b.counts[31] = 5;
        a.merge(&b);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.underflow, u64::MAX);
        assert_eq!(a.counts[31], u64::MAX);
        assert!(a.mean().is_finite());
    }

    #[test]
    fn ring_buffer_drops_oldest_first_and_keeps_the_tail_intact() {
        let mut sink = RingBufferSink::with_capacity(3);
        for seq in 0..10u64 {
            sink.record(&record(seq, seq as f64, TraceEvent::JobComplete { job: 0 }));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
        let seqs: Vec<u64> = sink.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9], "tail survives in order");
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let mut sink = JsonlSink::new();
        sink.record(&record(
            0,
            0.0,
            TraceEvent::DeviceDefined {
                device: 0,
                name: "lf \"east\"\n".into(),
                tier: 0,
                speed: 1.5,
                cost_per_second: 1.0,
            },
        ));
        sink.record(&record(
            1,
            0.25,
            TraceEvent::AdmissionVerdict {
                job: 0,
                decision: AdmissionDecision::Admit,
                estimate: FeasibilityEstimate {
                    queue_seconds: 0.0,
                    service_seconds: 2.5,
                    completion: 2.75,
                },
                margin: Some(1.0),
                deadline: None,
                assessed_deadline: Some(10.0),
            },
        ));
        for line in sink.as_str().lines() {
            let parsed = json::parse(line).expect("every line parses");
            let obj = parsed.as_object().expect("every line is an object");
            assert!(obj.iter().any(|(k, _)| k == "ev"));
        }
    }

    #[test]
    fn metrics_sink_tracks_depth_backlog_and_timelines() {
        let mut sink = MetricsSink::new();
        let events = vec![
            record(
                0,
                0.0,
                TraceEvent::DeviceDefined {
                    device: 0,
                    name: "dev".into(),
                    tier: 0,
                    speed: 1.0,
                    cost_per_second: 1.0,
                },
            ),
            record(
                1,
                0.0,
                TraceEvent::Arrival {
                    job: 0,
                    id: 0,
                    tenant: "t".into(),
                    priority: 0,
                },
            ),
            record(
                2,
                0.0,
                TraceEvent::QueuePush {
                    reservation: 0,
                    job: 0,
                    shard: 0,
                    device: 0,
                    seconds: 4.0,
                    requeued: false,
                },
            ),
            record(
                3,
                1.0,
                TraceEvent::LeaseGrant {
                    lease: 0,
                    reservation: 0,
                    job: 0,
                    shard: 0,
                    device: 0,
                    seconds: 4.0,
                    expires_at: 5.0,
                },
            ),
            record(
                4,
                5.0,
                TraceEvent::LeaseComplete {
                    lease: 0,
                    job: 0,
                    shard: 0,
                    device: 0,
                    granted_at: 1.0,
                    seconds: 4.0,
                    executions: 10,
                    finished: true,
                },
            ),
            record(5, 5.0, TraceEvent::JobComplete { job: 0 }),
        ];
        for e in &events {
            sink.record(e);
        }
        let summary = sink.into_summary();
        assert_eq!(summary.events.queue_pushes, 1);
        assert_eq!(summary.events.total(), 6);
        assert_eq!(summary.wait.count(), 1);
        assert_eq!(summary.wait.max(), Some(1.0));
        assert_eq!(summary.turnaround.max(), Some(5.0));
        // Depth sampled at 1 after the push, 0 after the grant.
        assert_eq!(summary.queue_depth.count(), 2);
        assert_eq!(summary.queue_depth.max(), Some(1.0));
        assert_eq!(summary.timelines.len(), 1);
        assert_eq!(summary.timelines[0].spans.len(), 1);
        assert_eq!(summary.timelines[0].busy_seconds(), 4.0);
        assert_eq!(summary.timelines[0].wasted_seconds(), 0.0);
        assert_eq!(summary.timelines[0].idle_seconds(5.0), 1.0);
    }

    #[test]
    fn chrome_export_round_trips_through_the_validator() {
        let records = vec![
            record(
                0,
                0.0,
                TraceEvent::DeviceDefined {
                    device: 0,
                    name: "lf_east".into(),
                    tier: 0,
                    speed: 1.0,
                    cost_per_second: 1.0,
                },
            ),
            record(
                1,
                0.0,
                TraceEvent::Arrival {
                    job: 0,
                    id: 7,
                    tenant: "alice".into(),
                    priority: 2,
                },
            ),
            record(
                2,
                3.0,
                TraceEvent::LeaseComplete {
                    lease: 0,
                    job: 0,
                    shard: 0,
                    device: 0,
                    granted_at: 0.5,
                    seconds: 2.5,
                    executions: 5,
                    finished: true,
                },
            ),
            record(3, 3.0, TraceEvent::JobComplete { job: 0 }),
        ];
        let chrome = chrome_export(&records);
        let summary = validate_chrome_trace(&chrome).expect("export parses");
        let fleet = summary.tracks_of(CHROME_FLEET_PID);
        assert!(!fleet.is_empty());
        let device = fleet
            .iter()
            .find(|t| t.name.as_deref() == Some("lf_east"))
            .expect("device track is named");
        assert_eq!(device.duration_events, 1);
        let jobs = summary.tracks_of(CHROME_JOBS_PID);
        assert!(jobs
            .iter()
            .any(|t| t.name.as_deref() == Some("alice · job 7") && t.duration_events == 1));
    }

    #[test]
    fn chrome_export_with_profile_adds_a_validated_wall_clock_track() {
        let records = vec![
            record(
                0,
                0.0,
                TraceEvent::Arrival {
                    job: 0,
                    id: 1,
                    tenant: "alice".into(),
                    priority: 0,
                },
            ),
            record(1, 2.0, TraceEvent::JobComplete { job: 0 }),
        ];
        let profiler = qoncord_prof::Profiler::new();
        {
            let _installed = profiler.install();
            let _outer = qoncord_prof::span("outer");
            let _inner = qoncord_prof::span("inner");
        }
        let perf = profiler.report();
        assert_eq!(perf.spans.len(), 2);
        let chrome = chrome_export_with_profile(&records, &perf);
        let summary = validate_chrome_trace(&chrome).expect("merged export parses");
        let prof_tracks = summary.tracks_of(CHROME_PROF_PID);
        assert_eq!(prof_tracks.len(), 1);
        assert_eq!(prof_tracks[0].duration_events, 2);
        assert!(
            chrome.contains("\"path\":\"outer;inner\""),
            "slices carry their folded path"
        );
        assert!(
            chrome.contains("wall-clock profiler"),
            "the track group is named"
        );
        // The virtual-time tracks are untouched by the merge.
        assert!(summary
            .tracks_of(CHROME_JOBS_PID)
            .iter()
            .any(|t| t.duration_events == 1));
        // Without a profile the track group must not exist at all.
        let plain = validate_chrome_trace(&chrome_export(&records)).expect("plain export parses");
        assert!(plain.tracks_of(CHROME_PROF_PID).is_empty());
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\", \"pid\": 1}]}").is_err(),
            "an X event without dur is structurally invalid"
        );
    }
}
