//! # qoncord-prof
//!
//! Low-overhead wall-clock span profiling for every layer of the Qoncord
//! workspace: scoped span timers ([`span`]/[`SpanGuard`]) feeding a
//! thread-safe registry keyed by static labels ([`Profiler`]), nested spans
//! producing folded-stack paths, and a [`ProfileReport`] aggregation with
//! per-path count / total / min / max / self-vs-child wall time.
//!
//! The crate sits below `qoncord-sim`, `qoncord-circuit`, `qoncord-vqa`,
//! `qoncord-cloud`, and the orchestrator so hot kernels in all of them can
//! carry spans; `qoncord_core::prof` re-exports it as the canonical path.
//!
//! ## Install model
//!
//! Nothing is recorded until a [`Profiler`] is *installed* on the current
//! thread. Instrumented code calls [`span`] unconditionally; with no
//! profiler installed (or an installed one disabled) the call returns an
//! inert guard without reading the clock, touching the registry, or
//! allocating — the near-zero disabled path the engine's determinism and
//! overhead guards assert.
//!
//! ```
//! use qoncord_prof::{folded_export, span, Profiler};
//!
//! let profiler = Profiler::new();
//! let _session = profiler.install();
//! {
//!     let _outer = span("train");
//!     let _inner = span("kernel");
//! }
//! let report = profiler.report();
//! assert_eq!(report.entries.len(), 2);
//! assert_eq!(report.entries[0].path, vec!["train"]);
//! assert_eq!(report.entries[1].path, vec!["train", "kernel"]);
//! // Folded-stack lines are ready for inferno / flamegraph.pl.
//! assert!(folded_export(&report).starts_with("train "));
//! ```
//!
//! ## Contracts
//!
//! - Span guards must drop in LIFO order (scoped `let _guard = span(..)`
//!   usage guarantees this); the install guard must outlive every span it
//!   observes.
//! - Labels are `&'static str` and must not contain `';'` — that is the
//!   folded-stack path separator.
//! - Recording a span never branches on recorded data, so enabling the
//!   profiler cannot change the control flow of instrumented code.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Sentinel parent id for top-of-stack spans.
const ROOT: u32 = u32::MAX;

/// Raw spans retained for timeline export; beyond this the registry keeps
/// aggregates only and counts the overflow in
/// [`ProfileReport::dropped_spans`].
const SPAN_RETAIN_CAP: usize = 65_536;

/// One interned path node: a static label under a parent path.
struct PathNode {
    label: &'static str,
    parent: u32,
}

/// Aggregate statistics of one path.
#[derive(Clone, Copy)]
struct PathStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    child_ns: u64,
}

impl PathStats {
    const EMPTY: PathStats = PathStats {
        count: 0,
        total_ns: 0,
        min_ns: u64::MAX,
        max_ns: 0,
        child_ns: 0,
    };
}

/// A raw retained span (offsets are nanoseconds since the profiler epoch).
struct RawSpan {
    path: u32,
    start_ns: u64,
    dur_ns: u64,
}

#[derive(Default)]
struct Registry {
    nodes: Vec<PathNode>,
    stats: Vec<PathStats>,
    index: HashMap<(u32, &'static str), u32>,
    spans: Vec<RawSpan>,
    dropped: u64,
}

struct Inner {
    enabled: AtomicBool,
    started: AtomicU64,
    epoch: Instant,
    registry: Mutex<Registry>,
}

/// A shareable wall-clock span profiler: a thread-safe registry of folded
/// span paths plus an enable switch and a cheap span counter.
///
/// Cloning is shallow (an [`Arc`] bump); clones observe the same registry.
/// Spans are only recorded on threads where the profiler is
/// [`install`](Profiler::install)ed, so concurrently running tests each
/// profiling their own work never cross-pollute.
#[derive(Clone)]
pub struct Profiler {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .field("spans_started", &self.spans_started())
            .finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Profiler>> = const { RefCell::new(None) };
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// One open span on the thread-local stack.
struct Frame {
    path: u32,
    child_ns: u64,
}

impl Profiler {
    /// Creates an enabled profiler; its epoch (the zero point of span start
    /// offsets) is the moment of creation.
    pub fn new() -> Self {
        Profiler::with_enabled(true)
    }

    /// Creates a profiler whose enable switch starts off: it can be
    /// installed without recording anything, and flipped on later with
    /// [`set_enabled`](Profiler::set_enabled).
    pub fn disabled() -> Self {
        Profiler::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        Profiler {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                started: AtomicU64::new(0),
                epoch: Instant::now(),
                registry: Mutex::new(Registry::default()),
            }),
        }
    }

    /// Flips the enable switch; affects spans opened after the call.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans opened now would be recorded (on installed threads).
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Installs this profiler as the current thread's span recipient,
    /// returning a guard that restores the previous recipient (if any) on
    /// drop. The guard must outlive every span opened under it.
    pub fn install(&self) -> InstalledProfiler {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        InstalledProfiler {
            prev,
            _not_send: PhantomData,
        }
    }

    /// Total spans ever started against this profiler — the cheap counter
    /// the disabled-path guard asserts stays at zero.
    pub fn spans_started(&self) -> u64 {
        self.inner.started.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, Registry> {
        // A panic mid-span must not cascade into a poisoned-mutex panic in
        // a drop handler; the aggregates are plain counters, always valid.
        self.inner
            .registry
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn intern(&self, parent: u32, label: &'static str) -> u32 {
        let mut reg = self.lock();
        if let Some(&id) = reg.index.get(&(parent, label)) {
            return id;
        }
        let id = reg.nodes.len() as u32;
        reg.nodes.push(PathNode { label, parent });
        reg.stats.push(PathStats::EMPTY);
        reg.index.insert((parent, label), id);
        id
    }

    fn record(&self, path: u32, start_ns: u64, dur_ns: u64, child_ns: u64) {
        let mut reg = self.lock();
        let stats = &mut reg.stats[path as usize];
        stats.count += 1;
        stats.total_ns += dur_ns;
        stats.min_ns = stats.min_ns.min(dur_ns);
        stats.max_ns = stats.max_ns.max(dur_ns);
        stats.child_ns += child_ns;
        if reg.spans.len() < SPAN_RETAIN_CAP {
            reg.spans.push(RawSpan {
                path,
                start_ns,
                dur_ns,
            });
        } else {
            reg.dropped += 1;
        }
    }

    /// Snapshots everything recorded so far as a [`ProfileReport`]:
    /// entries sorted by folded path (parents before their children), raw
    /// retained spans rebased onto entry indices.
    pub fn report(&self) -> ProfileReport {
        let reg = self.lock();
        let full_path = |mut id: u32| -> Vec<&'static str> {
            let mut path = Vec::new();
            while id != ROOT {
                path.push(reg.nodes[id as usize].label);
                id = reg.nodes[id as usize].parent;
            }
            path.reverse();
            path
        };
        // Interned-but-never-closed paths (a span still open at snapshot
        // time) carry no samples and are omitted.
        let mut closed: Vec<(Vec<&'static str>, u32)> = (0..reg.nodes.len() as u32)
            .filter(|&id| reg.stats[id as usize].count > 0)
            .map(|id| (full_path(id), id))
            .collect();
        closed.sort();
        let mut entry_of: HashMap<u32, usize> = HashMap::new();
        let entries: Vec<ProfileEntry> = closed
            .into_iter()
            .enumerate()
            .map(|(i, (path, id))| {
                entry_of.insert(id, i);
                let s = reg.stats[id as usize];
                ProfileEntry {
                    path,
                    count: s.count,
                    total_ns: s.total_ns,
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                    child_ns: s.child_ns,
                }
            })
            .collect();
        let spans: Vec<ProfileSpan> = reg
            .spans
            .iter()
            .filter_map(|s| {
                entry_of.get(&s.path).map(|&entry| ProfileSpan {
                    entry,
                    start_ns: s.start_ns,
                    dur_ns: s.dur_ns,
                })
            })
            .collect();
        ProfileReport {
            entries,
            spans,
            dropped_spans: reg.dropped,
        }
    }
}

/// Guard returned by [`Profiler::install`]; restores the thread's previous
/// profiler (if any) on drop. Not `Send`: an installation is a property of
/// the installing thread.
pub struct InstalledProfiler {
    prev: Option<Profiler>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstalledProfiler {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// The profiler currently installed on this thread, if any.
pub fn current() -> Option<Profiler> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Snapshot of the currently installed profiler's report; empty when no
/// profiler is installed. This is how the orchestrator surfaces
/// `OrchestratorReport::perf` without threading a handle through every
/// layer.
pub fn current_report() -> ProfileReport {
    current().map(|p| p.report()).unwrap_or_default()
}

/// Opens a scoped wall-clock span named `label` against the thread's
/// installed profiler; timing stops when the returned guard drops.
///
/// With no profiler installed — or the installed one disabled — this
/// returns an inert guard without reading the clock or touching any
/// registry: instrumented hot loops pay only a thread-local load.
///
/// `label` must not contain `';'` (the folded-stack separator).
pub fn span(label: &'static str) -> SpanGuard {
    debug_assert!(
        !label.contains(';'),
        "span label {label:?} contains the folded-path separator ';'"
    );
    let Some(profiler) = current() else {
        return SpanGuard { active: None };
    };
    if !profiler.is_enabled() {
        return SpanGuard { active: None };
    }
    profiler.inner.started.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| s.borrow().last().map(|f| f.path).unwrap_or(ROOT));
    let path = profiler.intern(parent, label);
    STACK.with(|s| s.borrow_mut().push(Frame { path, child_ns: 0 }));
    SpanGuard {
        active: Some(ActiveSpan {
            profiler,
            start: Instant::now(),
        }),
    }
}

struct ActiveSpan {
    profiler: Profiler,
    start: Instant,
}

/// A scoped span timer from [`span`]; records its duration (and credits it
/// to the parent span's child time) when dropped. Guards must drop in LIFO
/// order — the natural consequence of scoped `let` bindings.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Whether this guard is actually timing (a profiler was installed and
    /// enabled when it was opened).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        let frame = STACK.with(|s| s.borrow_mut().pop());
        let Some(frame) = frame else {
            return; // Out-of-order drop; lose the sample rather than panic.
        };
        STACK.with(|s| {
            if let Some(parent) = s.borrow_mut().last_mut() {
                parent.child_ns += dur_ns;
            }
        });
        let start_ns = active
            .start
            .saturating_duration_since(active.profiler.inner.epoch)
            .as_nanos() as u64;
        active
            .profiler
            .record(frame.path, start_ns, dur_ns, frame.child_ns);
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Aggregated wall-clock statistics of one folded span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The folded path, root-first (e.g. `["engine::run", "sim::sv::apply_1q"]`).
    pub path: Vec<&'static str>,
    /// Closed spans on this exact path.
    pub count: u64,
    /// Total inclusive wall time, nanoseconds.
    pub total_ns: u64,
    /// Shortest single span, nanoseconds.
    pub min_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Wall time attributed to child spans, nanoseconds.
    pub child_ns: u64,
}

impl ProfileEntry {
    /// The leaf label of the path.
    pub fn label(&self) -> &'static str {
        self.path.last().expect("paths are non-empty")
    }

    /// Wall time spent in this path itself, excluding child spans
    /// (saturating against clock jitter between parent and child reads).
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// The path as a `';'`-joined folded-stack string.
    pub fn folded_path(&self) -> String {
        self.path.join(";")
    }

    /// Mean inclusive span duration, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One retained raw span, for timeline export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Index into [`ProfileReport::entries`] identifying the span's path.
    pub entry: usize,
    /// Start offset from the profiler epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Snapshot of everything a [`Profiler`] recorded: per-path aggregates plus
/// the retained raw spans. `Default` is the empty report — what an
/// unprofiled orchestrator run carries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// Per-path aggregates, sorted by folded path (parents first).
    pub entries: Vec<ProfileEntry>,
    /// Raw retained spans (capped; see
    /// [`dropped_spans`](ProfileReport::dropped_spans)).
    pub spans: Vec<ProfileSpan>,
    /// Spans recorded beyond the retention cap — aggregated above but
    /// absent from [`spans`](ProfileReport::spans).
    pub dropped_spans: u64,
}

impl ProfileReport {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total closed spans across all paths.
    pub fn total_spans(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// The entry with exactly this folded path, if recorded.
    pub fn entry(&self, path: &[&str]) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// All entries whose leaf label matches `label`, across every parent
    /// path (e.g. a kernel reached from several call stacks).
    pub fn entries_labeled(&self, label: &str) -> Vec<&ProfileEntry> {
        self.entries.iter().filter(|e| e.label() == label).collect()
    }
}

/// Renders a report as flamegraph-compatible folded-stack text: one
/// `path;to;span <self-nanoseconds>` line per entry, ready for
/// `inferno-flamegraph` / `flamegraph.pl`.
pub fn folded_export(report: &ProfileReport) -> String {
    let mut out = String::new();
    for entry in &report.entries {
        let _ = writeln!(out, "{} {}", entry.folded_path(), entry.self_ns());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn nested_spans_fold_and_attribute_self_time() {
        let profiler = Profiler::new();
        let _session = profiler.install();
        {
            let _outer = span("outer");
            spin(200_000);
            {
                let _inner = span("inner");
                spin(200_000);
            }
            {
                let _inner = span("inner");
                spin(200_000);
            }
        }
        let report = profiler.report();
        assert_eq!(report.entries.len(), 2);
        let outer = report.entry(&["outer"]).unwrap();
        let inner = report.entry(&["outer", "inner"]).unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(inner.min_ns <= inner.max_ns);
        assert_eq!(outer.child_ns, inner.total_ns);
        assert!(outer.self_ns() >= 200_000, "self = {}", outer.self_ns());
        assert!(outer.total_ns >= outer.self_ns() + inner.total_ns);
        assert_eq!(report.total_spans(), 3);
        assert_eq!(profiler.spans_started(), 3);
        assert_eq!(report.spans.len(), 3);
        assert_eq!(report.dropped_spans, 0);
    }

    #[test]
    fn no_install_means_inert_guards() {
        assert!(current().is_none());
        let guard = span("unrecorded");
        assert!(!guard.is_recording());
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let profiler = Profiler::disabled();
        let _session = profiler.install();
        {
            let guard = span("off");
            assert!(!guard.is_recording());
        }
        assert_eq!(profiler.spans_started(), 0);
        assert!(profiler.report().is_empty());
        profiler.set_enabled(true);
        {
            let _guard = span("on");
        }
        assert_eq!(profiler.spans_started(), 1);
        assert_eq!(profiler.report().entries[0].path, vec!["on"]);
    }

    #[test]
    fn install_guard_restores_previous_profiler() {
        let a = Profiler::new();
        let b = Profiler::new();
        let _outer = a.install();
        {
            let _inner = b.install();
            let _s = span("inner-work");
        }
        {
            let _s = span("outer-work");
        }
        assert_eq!(a.report().entries[0].path, vec!["outer-work"]);
        assert_eq!(b.report().entries[0].path, vec!["inner-work"]);
        assert_eq!(a.spans_started(), 1);
        assert_eq!(b.spans_started(), 1);
    }

    #[test]
    fn same_label_under_different_parents_is_two_paths() {
        let profiler = Profiler::new();
        let _session = profiler.install();
        {
            let _a = span("a");
            let _k = span("kernel");
        }
        {
            let _b = span("b");
            let _k = span("kernel");
        }
        let report = profiler.report();
        assert_eq!(report.entries.len(), 4);
        assert_eq!(report.entries_labeled("kernel").len(), 2);
        assert!(report.entry(&["a", "kernel"]).is_some());
        assert!(report.entry(&["b", "kernel"]).is_some());
    }

    #[test]
    fn folded_export_lines_are_path_space_nanos() {
        let profiler = Profiler::new();
        let _session = profiler.install();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let folded = folded_export(&profiler.report());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("outer "));
        assert!(lines[1].starts_with("outer;inner "));
        for line in lines {
            let (_, count) = line.rsplit_once(' ').unwrap();
            count.parse::<u64>().expect("integer self time");
        }
    }

    #[test]
    fn reports_are_deterministically_ordered() {
        let profiler = Profiler::new();
        let _session = profiler.install();
        for _ in 0..3 {
            let _z = span("z");
        }
        {
            let _a = span("a");
        }
        let report = profiler.report();
        assert_eq!(report.entries[0].path, vec!["a"]);
        assert_eq!(report.entries[1].path, vec!["z"]);
        assert_eq!(report.entries[1].count, 3);
    }

    #[test]
    fn span_retention_cap_counts_drops() {
        let profiler = Profiler::new();
        let _session = profiler.install();
        for _ in 0..(SPAN_RETAIN_CAP + 10) {
            let _s = span("hot");
        }
        let report = profiler.report();
        assert_eq!(report.spans.len(), SPAN_RETAIN_CAP);
        assert_eq!(report.dropped_spans, 10);
        assert_eq!(report.entries[0].count, (SPAN_RETAIN_CAP + 10) as u64);
    }
}
